//! Partitioned physical layout for split-by-rlist CVDs (Section 4).
//!
//! After `optimize`, a CVD's records live in per-partition table pairs
//! `{cvd}__g{G}p{K}_data` / `..._rlist` (G is a migration generation
//! counter so reused tables can be renamed rather than copied). Checkout
//! touches exactly one partition — the whole point of partitioning: the
//! number of irrelevant records scanned drops from |R| to |Rk|.
//!
//! Commits are placed by the online-maintenance rule of Section 4.3, and
//! when the online checkout cost drifts µ× past LyreSplit's best, the
//! migration engine rebuilds partitions with the intelligent plan of
//! [`orpheus_partition::migration`].

use std::collections::{HashMap, HashSet};

use orpheus_engine::{Database, Value};
use orpheus_partition::lyresplit::{lyresplit_for_budget, EdgePick};
use orpheus_partition::migration::{plan_migration, plan_naive, MigrationPlan, MigrationStep};
use orpheus_partition::Partitioning;

use crate::cvd::Cvd;
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::{self, ModelKind};

/// Persistent partitioning state carried by a CVD.
#[derive(Debug, Clone)]
pub struct PartitionState {
    /// Partition id per version index.
    pub assignment: Vec<usize>,
    pub num_partitions: usize,
    /// Migration generation (names the physical tables).
    pub generation: usize,
    /// δ* of the last LyreSplit run (drives online placement).
    pub delta_star: f64,
    /// Best checkout cost LyreSplit found at the last check.
    pub cavg_star: f64,
    /// Storage threshold as a multiple of |R|.
    pub gamma_factor: f64,
    /// Migration tolerance µ.
    pub mu: f64,
    /// Number of migrations performed so far.
    pub migrations: usize,
}

impl PartitionState {
    pub fn partitioning(&self) -> Partitioning {
        Partitioning::from_assignment(self.assignment.clone())
    }
}

/// Report returned by [`optimize`] and commit-time maintenance.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    pub num_partitions: usize,
    /// Tree-estimated storage cost (records across partitions).
    pub storage_records: u64,
    /// Tree-estimated average checkout cost.
    pub cavg: f64,
    pub delta: f64,
}

/// Outcome of partition maintenance for one commit.
#[derive(Debug, Clone)]
pub struct CommitPlacement {
    pub partition: usize,
    pub opened_partition: bool,
    /// Set when this commit triggered a migration.
    pub migration: Option<MigrationReport>,
}

/// Cost accounting of one migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    pub records_modified: u64,
    pub partitions_reused: usize,
    pub partitions_built: usize,
    /// The same migration executed naively would have moved this many
    /// records (Figures 14b/15b compare the two).
    pub naive_records: u64,
}

fn require_rlist(cvd: &Cvd) -> Result<()> {
    if cvd.model != ModelKind::SplitByRlist {
        return Err(CoreError::Invalid(format!(
            "partitioning requires the split-by-rlist model (CVD {} uses {})",
            cvd.name,
            cvd.model.name()
        )));
    }
    Ok(())
}

fn data_table_name(cvd: &Cvd, generation: usize, k: usize) -> String {
    format!("{}__g{}p{}_data", cvd.name, generation, k)
}

fn rlist_table_name(cvd: &Cvd, generation: usize, k: usize) -> String {
    format!("{}__g{}p{}_rlist", cvd.name, generation, k)
}

/// Fetch the attribute values of the given rids from the CVD's global data
/// table (the record manager's authoritative store).
fn fetch_records(
    db: &Database,
    cvd: &Cvd,
    rids: &HashSet<i64>,
) -> Result<HashMap<i64, Vec<Value>>> {
    let t = db.table(&cvd.data_table())?;
    let mut out = HashMap::with_capacity(rids.len());
    for row in t.rows() {
        if let Value::Int(rid) = row[0] {
            if rids.contains(&rid) {
                out.insert(rid, row[1..].to_vec());
            }
        }
    }
    Ok(out)
}

fn create_partition_tables(
    db: &mut Database,
    cvd: &Cvd,
    generation: usize,
    k: usize,
) -> Result<()> {
    db.create_table(
        &data_table_name(cvd, generation, k),
        cvd.physical_data_schema(),
    )?;
    db.execute(&format!(
        "CREATE TABLE {} (vid INT PRIMARY KEY, rlist INT[])",
        rlist_table_name(cvd, generation, k)
    ))?;
    Ok(())
}

fn insert_partition_records(
    db: &mut Database,
    table: &str,
    records: &HashMap<i64, Vec<Value>>,
    rids: impl IntoIterator<Item = i64>,
) -> Result<usize> {
    let mut rows = Vec::new();
    for rid in rids {
        let values = records.get(&rid).ok_or_else(|| {
            CoreError::Invalid(format!("record {rid} missing from the data table"))
        })?;
        let mut row = Vec::with_capacity(values.len() + 1);
        row.push(Value::Int(rid));
        row.extend(values.iter().cloned());
        rows.push(row);
    }
    let n = rows.len();
    model::insert_rows_bulk(db, table, rows)?;
    Ok(n)
}

fn fill_rlist_table(db: &mut Database, cvd: &Cvd, table: &str, versions: &[usize]) -> Result<()> {
    let t = db.table_mut(table)?;
    for &v in versions {
        t.insert(vec![
            Value::Int(v as i64 + 1),
            Value::IntArray((*cvd.version_rids[v]).clone()),
        ])?;
    }
    Ok(())
}

/// Run the partition optimizer: LyreSplit under the budget
/// `γ = gamma_factor · |R|`, then build (or migrate to) the partitioned
/// layout.
pub fn optimize(
    db: &mut Database,
    cvd: &mut Cvd,
    gamma_factor: f64,
    mu: f64,
) -> Result<OptimizeReport> {
    require_rlist(cvd)?;
    let tree = cvd.version_tree();
    let gamma = (gamma_factor * tree.total_records() as f64) as u64;
    let (best, _search) = lyresplit_for_budget(&tree, gamma, EdgePick::BalancedVersions);
    let report = OptimizeReport {
        num_partitions: best.partitioning.num_partitions,
        storage_records: best.partitioning.storage_cost_tree(&tree),
        cavg: best.partitioning.checkout_cost_tree(&tree),
        delta: best.delta,
    };
    apply_partitioning(db, cvd, &best, &report, gamma_factor, mu)?;
    Ok(report)
}

/// The weighted variant (Appendix C.2): versions carry checkout
/// frequencies (`freqs[i]` for version index `i`; zero means "never
/// checked out" and is treated as one). The reported `cavg` is the
/// *weighted* checkout cost `Cw`, computed exactly on the bipartite graph.
pub fn optimize_weighted(
    db: &mut Database,
    cvd: &mut Cvd,
    freqs: &[u64],
    gamma_factor: f64,
    mu: f64,
) -> Result<OptimizeReport> {
    require_rlist(cvd)?;
    if freqs.len() != cvd.num_versions() {
        return Err(CoreError::Invalid(format!(
            "need one frequency per version: got {}, CVD {} has {}",
            freqs.len(),
            cvd.name,
            cvd.num_versions()
        )));
    }
    let tree = cvd.version_tree();
    let gamma = (gamma_factor * tree.total_records() as f64) as u64;
    let best = orpheus_partition::weighted::lyresplit_weighted_for_budget(
        &tree,
        freqs,
        gamma,
        EdgePick::BalancedVersions,
    );
    let bip = cvd.bipartite();
    let report = OptimizeReport {
        num_partitions: best.partitioning.num_partitions,
        storage_records: best.partitioning.storage_cost_tree(&tree),
        cavg: orpheus_partition::weighted::weighted_checkout_cost(&best.partitioning, &bip, freqs),
        delta: best.delta,
    };
    apply_partitioning(db, cvd, &best, &report, gamma_factor, mu)?;
    Ok(report)
}

/// Materialize a freshly-computed partitioning: build the physical layout
/// from scratch on first optimization, migrate from the previous layout
/// otherwise, and record the new [`PartitionState`].
fn apply_partitioning(
    db: &mut Database,
    cvd: &mut Cvd,
    best: &orpheus_partition::LyreSplitResult,
    report: &OptimizeReport,
    gamma_factor: f64,
    mu: f64,
) -> Result<()> {
    match cvd.partition.take() {
        None => {
            build_partitions_from_scratch(db, cvd, &best.partitioning, 0)?;
            cvd.partition = Some(PartitionState {
                assignment: best.partitioning.assignment.clone(),
                num_partitions: best.partitioning.num_partitions,
                generation: 0,
                delta_star: best.delta,
                cavg_star: report.cavg,
                gamma_factor,
                mu,
                migrations: 0,
            });
        }
        Some(mut state) => {
            let old = state.partitioning();
            // The CVD is mutated in place (no scratch clone since the
            // clone-free refactor): a failed migration must put the
            // untouched state back rather than leave the CVD silently
            // unpartitioned.
            if let Err(e) = migrate(db, cvd, &state, &old, &best.partitioning) {
                cvd.partition = Some(state);
                return Err(e);
            }
            state.assignment = best.partitioning.assignment.clone();
            state.num_partitions = best.partitioning.num_partitions;
            state.generation += 1;
            state.delta_star = best.delta;
            state.cavg_star = report.cavg;
            state.gamma_factor = gamma_factor;
            state.mu = mu;
            state.migrations += 1;
            cvd.partition = Some(state);
        }
    }
    Ok(())
}

fn build_partitions_from_scratch(
    db: &mut Database,
    cvd: &Cvd,
    partitioning: &Partitioning,
    generation: usize,
) -> Result<()> {
    let parts = partitioning.partitions();
    for (k, versions) in parts.iter().enumerate() {
        create_partition_tables(db, cvd, generation, k)?;
        let mut rids: HashSet<i64> = HashSet::new();
        for &v in versions {
            rids.extend(cvd.version_rids[v].iter().copied());
        }
        let records = fetch_records(db, cvd, &rids)?;
        let mut sorted: Vec<i64> = rids.into_iter().collect();
        sorted.sort_unstable();
        insert_partition_records(db, &data_table_name(cvd, generation, k), &records, sorted)?;
        fill_rlist_table(db, cvd, &rlist_table_name(cvd, generation, k), versions)?;
    }
    Ok(())
}

/// Execute a migration from the current generation's tables to the next,
/// using the intelligent plan. Returns (records modified, reused, built,
/// naive cost).
fn migrate(
    db: &mut Database,
    cvd: &Cvd,
    state: &PartitionState,
    old: &Partitioning,
    new: &Partitioning,
) -> Result<(u64, usize, usize, u64)> {
    let bip = cvd.bipartite();
    let tree = cvd.version_tree();
    let plan = plan_migration(&bip, Some(&tree), old, new);
    let naive = plan_naive(&bip, old, new);
    apply_migration_plan(db, cvd, state, new, &plan)?;
    Ok((
        plan.total_modifications(),
        plan.partitions_reused,
        plan.partitions_built,
        naive.total_modifications(),
    ))
}

fn apply_migration_plan(
    db: &mut Database,
    cvd: &Cvd,
    state: &PartitionState,
    new: &Partitioning,
    plan: &MigrationPlan,
) -> Result<()> {
    let old_gen = state.generation;
    let new_gen = state.generation + 1;
    let new_parts = new.partitions();
    let mut handled_old: Vec<usize> = Vec::new();

    for step in &plan.steps {
        match step {
            MigrationStep::Reuse {
                old,
                new: new_k,
                inserts,
                deletes,
            } => {
                // Rename the old data table into the new generation, then
                // apply the (small) record modifications in place.
                let old_name = data_table_name(cvd, old_gen, *old);
                let new_name = data_table_name(cvd, new_gen, *new_k);
                db.rename_table(&old_name, &new_name)?;
                if !deletes.is_empty() {
                    let t = db.table_mut(&new_name)?;
                    let mut slots = Vec::with_capacity(deletes.len());
                    for rid in deletes {
                        if let Some(s) = t.index_lookup(&[0], &vec![Value::Int(*rid as i64)]) {
                            slots.extend_from_slice(s);
                        }
                    }
                    t.delete_slots(slots);
                }
                if !inserts.is_empty() {
                    let rids: HashSet<i64> = inserts.iter().map(|&r| r as i64).collect();
                    let records = fetch_records(db, cvd, &rids)?;
                    insert_partition_records(db, &new_name, &records, rids)?;
                }
                // rlist tables are tiny; rebuild for the new member set.
                let _ = db.drop_table(&rlist_table_name(cvd, old_gen, *old));
                db.execute(&format!(
                    "CREATE TABLE {} (vid INT PRIMARY KEY, rlist INT[])",
                    rlist_table_name(cvd, new_gen, *new_k)
                ))?;
                fill_rlist_table(
                    db,
                    cvd,
                    &rlist_table_name(cvd, new_gen, *new_k),
                    &new_parts[*new_k],
                )?;
                handled_old.push(*old);
            }
            MigrationStep::Build {
                new: new_k,
                records,
            } => {
                create_partition_tables(db, cvd, new_gen, *new_k)?;
                let rids: HashSet<i64> = records.iter().map(|&r| r as i64).collect();
                let fetched = fetch_records(db, cvd, &rids)?;
                let mut sorted: Vec<i64> = rids.into_iter().collect();
                sorted.sort_unstable();
                insert_partition_records(
                    db,
                    &data_table_name(cvd, new_gen, *new_k),
                    &fetched,
                    sorted,
                )?;
                fill_rlist_table(
                    db,
                    cvd,
                    &rlist_table_name(cvd, new_gen, *new_k),
                    &new_parts[*new_k],
                )?;
            }
            MigrationStep::Drop { old } => {
                let _ = db.drop_table(&data_table_name(cvd, old_gen, *old));
                let _ = db.drop_table(&rlist_table_name(cvd, old_gen, *old));
                handled_old.push(*old);
            }
        }
    }
    Ok(())
}

/// Place a freshly committed version into the partitioned layout
/// (Section 4.3 online maintenance). Must be called after the version's
/// records are in the global data table and metadata is updated.
///
/// Operates on the live catalog entry: on failure the pre-call
/// [`PartitionState`] is restored (the state snapshot is one `Vec<usize>`
/// of assignments plus scalars — cheap next to the rows being placed), so
/// an aborted placement never leaves the CVD unpartitioned or pointing at
/// a half-updated assignment.
pub fn on_commit(db: &mut Database, cvd: &mut Cvd, vid: Vid) -> Result<CommitPlacement> {
    require_rlist(cvd)?;
    let mut state = cvd
        .partition
        .take()
        .ok_or_else(|| CoreError::Invalid("CVD is not partitioned".into()))?;
    let snapshot = state.clone();
    match place_commit(db, cvd, vid, &mut state) {
        Ok(placement) => {
            cvd.partition = Some(state);
            Ok(placement)
        }
        Err(e) => {
            cvd.partition = Some(snapshot);
            Err(e)
        }
    }
}

/// The fallible body of [`on_commit`]: placement, physical record moves,
/// and the drift check, all against a detached `state`.
fn place_commit(
    db: &mut Database,
    cvd: &Cvd,
    vid: Vid,
    state: &mut PartitionState,
) -> Result<CommitPlacement> {
    let tree = cvd.version_tree();
    let v = vid.index();
    let total_r = tree.total_records();
    let gamma = (state.gamma_factor * total_r as f64) as u64;

    // Placement: weak edge + storage slack ⇒ new partition.
    let (parent, weight) = match tree.parent[v] {
        Some(p) => (Some(p), tree.weight_to_parent[v]),
        None => (None, 0),
    };
    let weak_edge = (weight as f64) <= state.delta_star * total_r as f64;
    // Provisional storage with v in the parent's partition.
    let provisional_storage = {
        let mut assignment = state.assignment.clone();
        assignment.push(parent.map(|p| state.assignment[p]).unwrap_or(0));
        Partitioning::from_assignment(assignment).storage_cost_tree(&tree)
    };

    let (partition, opened) = match parent {
        Some(p) if !(weak_edge && provisional_storage < gamma) => (state.assignment[p], false),
        _ => {
            let k = state.num_partitions;
            create_partition_tables(db, cvd, state.generation, k)?;
            state.num_partitions += 1;
            (k, true)
        }
    };
    state.assignment.push(partition);

    // Physically place the version's records.
    let data_name = data_table_name(cvd, state.generation, partition);
    let rlist_name = rlist_table_name(cvd, state.generation, partition);
    let version_rids = cvd.version_rids[v].clone();
    let missing: HashSet<i64> = {
        let t = db.table(&data_name)?;
        version_rids
            .iter()
            .copied()
            .filter(|&rid| {
                t.index_lookup(&[0], &vec![Value::Int(rid)])
                    .map(|s| s.is_empty())
                    .unwrap_or(true)
            })
            .collect()
    };
    if !missing.is_empty() {
        let records = fetch_records(db, cvd, &missing)?;
        insert_partition_records(db, &data_name, &records, missing)?;
    }
    db.table_mut(&rlist_name)?.insert(vec![
        Value::Int(vid.0 as i64),
        Value::IntArray((*version_rids).clone()),
    ])?;

    // Drift check: recompute C*avg and migrate when Cavg > µ·C*avg.
    let current = Partitioning::from_assignment(state.assignment.clone());
    let cavg = current.checkout_cost_tree(&tree);
    let (best, _) = lyresplit_for_budget(&tree, gamma, EdgePick::BalancedVersions);
    state.cavg_star = best.partitioning.checkout_cost_tree(&tree);
    state.delta_star = best.delta;

    let migration = if cavg > state.mu * state.cavg_star {
        let (modified, reused, built, naive) =
            migrate(db, cvd, state, &current, &best.partitioning)?;
        state.assignment = best.partitioning.assignment.clone();
        state.num_partitions = best.partitioning.num_partitions;
        state.generation += 1;
        state.migrations += 1;
        Some(MigrationReport {
            records_modified: modified,
            partitions_reused: reused,
            partitions_built: built,
            naive_records: naive,
        })
    } else {
        None
    };

    Ok(CommitPlacement {
        partition,
        opened_partition: opened,
        migration,
    })
}

/// Best-effort undo of a failed [`on_commit`] placement's physical
/// writes, run after the state snapshot has been restored: removes the
/// vid's tuple from every partition rlist table (a retried commit reuses
/// the vid and would otherwise collide) and drops the tables of a
/// partition the aborted placement may have opened (the next index past
/// the restored count). Orphaned records in partition data tables are
/// harmless — nothing references them — and are left behind.
pub fn rollback_placement(db: &mut Database, cvd: &Cvd, vid: Vid) {
    let Some(state) = &cvd.partition else { return };
    for k in 0..state.num_partitions {
        let _ = db.execute(&format!(
            "DELETE FROM {} WHERE vid = {}",
            rlist_table_name(cvd, state.generation, k),
            vid.0
        ));
    }
    let _ = db.drop_table(&data_table_name(
        cvd,
        state.generation,
        state.num_partitions,
    ));
    let _ = db.drop_table(&rlist_table_name(
        cvd,
        state.generation,
        state.num_partitions,
    ));
}

/// Checkout against the partitioned layout: only the version's partition is
/// touched. The version's sorted rlist resolves to heap slots through the
/// partition data table's rid index (the same record-access fast path as
/// the unpartitioned models); the Table 1 statement against the
/// partition-local tables remains the fallback spec path.
pub fn checkout_partitioned(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    let state = cvd
        .partition
        .as_ref()
        .ok_or_else(|| CoreError::Invalid("CVD is not partitioned".into()))?;
    cvd.check_version(vid)?;
    let k = state.assignment[vid.index()];
    let data_table = data_table_name(cvd, state.generation, k);
    if model::checkout_resolved(db, &data_table, cvd, Some(cvd.rids_of(vid)?), 0, target)? {
        return Ok(());
    }
    db.execute(&format!(
        "SELECT d.* INTO {target} FROM {} AS d, \
         (SELECT unnest(rlist) AS rid_tmp FROM {} WHERE vid = {}) AS tmp \
         WHERE rid = rid_tmp",
        data_table,
        rlist_table_name(cvd, state.generation, k),
        vid.0
    ))?;
    Ok(())
}

/// Total bytes of the partitioned layout (data + rlist tables across
/// partitions) — what Figures 12b/13b report as "storage size".
pub fn partition_storage_bytes(db: &Database, cvd: &Cvd) -> u64 {
    match &cvd.partition {
        None => 0,
        Some(state) => (0..state.num_partitions)
            .flat_map(|k| {
                [
                    data_table_name(cvd, state.generation, k),
                    rlist_table_name(cvd, state.generation, k),
                ]
            })
            .filter_map(|t| db.table(&t).ok())
            .map(|t| t.storage_bytes() as u64)
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};

    fn build_history() -> (Database, Cvd) {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByRlist);
        // v1: two records; v2 extends v1; v3 is disjoint-ish from v1.
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2), record("c", 3)],
            &[Vid(1)],
        );
        commit(
            &mut db,
            &mut cvd,
            &[record("x", 10), record("y", 11)],
            &[Vid(1)],
        );
        (db, cvd)
    }

    #[test]
    fn optimize_builds_partition_tables() {
        let (mut db, mut cvd) = build_history();
        let report = optimize(&mut db, &mut cvd, 2.0, 1.5).unwrap();
        assert!(report.num_partitions >= 1);
        let state = cvd.partition.as_ref().unwrap();
        for k in 0..state.num_partitions {
            assert!(db.has_table(&data_table_name(&cvd, 0, k)));
            assert!(db.has_table(&rlist_table_name(&cvd, 0, k)));
        }
        assert!(partition_storage_bytes(&db, &cvd) > 0);
    }

    #[test]
    fn partitioned_checkout_matches_unpartitioned() {
        let (mut db, mut cvd) = build_history();
        optimize(&mut db, &mut cvd, 2.0, 1.5).unwrap();
        for v in 1..=3u64 {
            let plain = format!("plain{v}");
            let parted = format!("parted{v}");
            model::checkout_into(&mut db, &cvd, Vid(v), &plain).unwrap();
            checkout_partitioned(&mut db, &cvd, Vid(v), &parted).unwrap();
            let a = db
                .query(&format!("SELECT * FROM {plain} ORDER BY rid"))
                .unwrap();
            let b = db
                .query(&format!("SELECT * FROM {parted} ORDER BY rid"))
                .unwrap();
            assert_eq!(a.rows, b.rows, "version {v} differs");
        }
    }

    #[test]
    fn online_commit_places_and_maintains() {
        let (mut db, mut cvd) = build_history();
        optimize(&mut db, &mut cvd, 3.0, 10.0).unwrap();
        // Strongly-overlapping child of v2 joins v2's partition.
        commit(
            &mut db,
            &mut cvd,
            &[
                record("a", 1),
                record("b", 2),
                record("c", 3),
                record("d", 4),
            ],
            &[Vid(2)],
        );
        let placement = on_commit(&mut db, &mut cvd, Vid(4)).unwrap();
        let state = cvd.partition.as_ref().unwrap();
        assert_eq!(state.assignment.len(), 4);
        // Checkout of the new version works against its partition.
        checkout_partitioned(&mut db, &cvd, Vid(4), "co4").unwrap();
        let r = db.query("SELECT count(*) FROM co4").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(4)));
        let _ = placement;
    }

    #[test]
    fn rejects_non_rlist_models() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        let err = optimize(&mut db, &mut cvd, 2.0, 1.5).unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)));
    }

    #[test]
    fn weighted_optimize_builds_correct_layout() {
        let (mut db, mut cvd) = build_history();
        // v3 is hot (checked out 50× as often as the others).
        let freqs = vec![1u64, 1, 50];
        let report = optimize_weighted(&mut db, &mut cvd, &freqs, 2.0, 1.5).unwrap();
        assert!(report.num_partitions >= 1);
        // The reported cavg is the weighted cost, bounded by the weighted
        // floor guarantee Cw ≤ ζ/δ (Appendix C.2).
        let bip = cvd.bipartite();
        let floor = orpheus_partition::weighted::weighted_cost_floor(&bip, &freqs);
        assert!(report.cavg + 1e-9 >= floor);
        assert!(report.cavg <= floor / report.delta + 1e-6);
        // Checkouts from the weighted layout match the plain model.
        for v in 1..=3u64 {
            let plain = format!("wplain{v}");
            let parted = format!("wparted{v}");
            model::checkout_into(&mut db, &cvd, Vid(v), &plain).unwrap();
            checkout_partitioned(&mut db, &cvd, Vid(v), &parted).unwrap();
            let a = db
                .query(&format!("SELECT * FROM {plain} ORDER BY rid"))
                .unwrap();
            let b = db
                .query(&format!("SELECT * FROM {parted} ORDER BY rid"))
                .unwrap();
            assert_eq!(a.rows, b.rows, "version {v} differs");
        }
    }

    #[test]
    fn weighted_optimize_validates_frequency_arity() {
        let (mut db, mut cvd) = build_history();
        let err = optimize_weighted(&mut db, &mut cvd, &[1, 2], 2.0, 1.5).unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)), "{err}");
    }

    #[test]
    fn weighted_reoptimize_migrates_from_unweighted_layout() {
        let (mut db, mut cvd) = build_history();
        optimize(&mut db, &mut cvd, 1.0, 1.5).unwrap();
        optimize_weighted(&mut db, &mut cvd, &[1, 1, 40], 3.0, 1.5).unwrap();
        let state = cvd.partition.as_ref().unwrap();
        assert_eq!(state.migrations, 1);
        checkout_partitioned(&mut db, &cvd, Vid(3), "w_after").unwrap();
        let r = db.query("SELECT count(*) FROM w_after").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn reoptimize_migrates_generation() {
        let (mut db, mut cvd) = build_history();
        optimize(&mut db, &mut cvd, 1.0, 1.5).unwrap();
        let gen0 = cvd.partition.as_ref().unwrap().generation;
        optimize(&mut db, &mut cvd, 3.0, 1.5).unwrap();
        let state = cvd.partition.as_ref().unwrap();
        assert_eq!(state.generation, gen0 + 1);
        assert_eq!(state.migrations, 1);
        // Checkout still works after migration.
        checkout_partitioned(&mut db, &cvd, Vid(2), "after_mig").unwrap();
        let r = db.query("SELECT count(*) FROM after_mig").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }
}
