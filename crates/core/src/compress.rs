//! Range encoding for version/record lists (Section 3.2's storage
//! optimization, after Buneman et al. \[14\]).
//!
//! Both array attributes of the split models are sorted integer lists with
//! long consecutive runs: an rlist contains runs of adjacent `rid`s because
//! commits allocate fresh rids contiguously, and a vlist contains runs of
//! adjacent `vid`s because a record typically survives a stretch of
//! consecutive versions. Storing each maximal run as an inclusive `[lo,
//! hi]` pair turns `n` 8-byte elements into `2·(number of runs)` 8-byte
//! bounds — a large win whenever runs are long.
//!
//! [`RangeSet`] is the codec plus the set operations the versioning table
//! needs (membership for `<@`-style containment, append for commit, union
//! for merges). The `compression` experiment binary measures the realized
//! ratio on the SCI/CUR benchmark datasets.

use std::fmt;

/// A set of i64s stored as sorted, disjoint, non-adjacent inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    /// Invariant: sorted by `lo`; for consecutive ranges `a`, `b`:
    /// `a.hi + 1 < b.lo` (disjoint and non-adjacent, so the encoding of a
    /// given set is canonical).
    runs: Vec<(i64, i64)>,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// Build from any iterator of values (need not be sorted or unique).
    pub fn from_values<I: IntoIterator<Item = i64>>(values: I) -> RangeSet {
        let mut vs: Vec<i64> = values.into_iter().collect();
        vs.sort_unstable();
        vs.dedup();
        Self::from_sorted_unique(&vs)
    }

    /// Build from a sorted, duplicate-free slice (the form version/record
    /// lists are already kept in). O(n).
    pub fn from_sorted_unique(values: &[i64]) -> RangeSet {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        let mut runs: Vec<(i64, i64)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((_, hi)) if *hi + 1 == v => *hi = v,
                _ => runs.push((v, v)),
            }
        }
        RangeSet { runs }
    }

    /// The encoded runs.
    pub fn runs(&self) -> &[(i64, i64)] {
        &self.runs
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.runs
            .iter()
            .map(|&(lo, hi)| (hi - lo) as usize + 1)
            .sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Membership test. O(log runs) — the operation behind the `<@`
    /// containment checks of the combined-table/split-by-vlist models.
    pub fn contains(&self, v: i64) -> bool {
        self.runs
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Insert one value, merging adjacent runs. O(runs) worst case but O(1)
    /// amortized for the commit pattern (monotonically growing ids).
    pub fn insert(&mut self, v: i64) {
        // Find the first run with lo > v.
        let i = self.runs.partition_point(|&(lo, _)| lo <= v);
        // Check the run before (may contain or touch v from the left).
        if i > 0 {
            let (_, hi) = self.runs[i - 1];
            if v <= hi {
                return; // already present
            }
            if hi + 1 == v {
                self.runs[i - 1].1 = v;
                // May now touch the next run.
                if i < self.runs.len() && self.runs[i].0 == v + 1 {
                    self.runs[i - 1].1 = self.runs[i].1;
                    self.runs.remove(i);
                }
                return;
            }
        }
        // Check the run after (may touch v from the right).
        if i < self.runs.len() && self.runs[i].0 == v + 1 {
            self.runs[i].0 = v;
            return;
        }
        self.runs.insert(i, (v, v));
    }

    /// Set union (merge commits combine parents' lists). O(runs).
    pub fn union(&self, other: &RangeSet) -> RangeSet {
        let (mut a, mut b) = (self.runs.iter().peekable(), other.runs.iter().peekable());
        let mut out: Vec<(i64, i64)> = Vec::new();
        let push = |run: (i64, i64), out: &mut Vec<(i64, i64)>| match out.last_mut() {
            Some((_, hi)) if run.0 <= hi.saturating_add(1) => *hi = (*hi).max(run.1),
            _ => out.push(run),
        };
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&&ra), Some(&&rb)) => {
                    if ra.0 <= rb.0 {
                        a.next();
                        ra
                    } else {
                        b.next();
                        rb
                    }
                }
                (Some(&&ra), None) => {
                    a.next();
                    ra
                }
                (None, Some(&&rb)) => {
                    b.next();
                    rb
                }
                (None, None) => break,
            };
            push(next, &mut out);
        }
        RangeSet { runs: out }
    }

    /// Set intersection. O(runs).
    pub fn intersect(&self, other: &RangeSet) -> RangeSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (alo, ahi) = self.runs[i];
            let (blo, bhi) = other.runs[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        RangeSet { runs: out }
    }

    /// Elements in `self` but not `other` (version diffs). O(runs).
    pub fn difference(&self, other: &RangeSet) -> RangeSet {
        let mut out: Vec<(i64, i64)> = Vec::new();
        let mut j = 0;
        for &(lo, hi) in &self.runs {
            let mut cur = lo;
            while j < other.runs.len() && other.runs[j].1 < cur {
                j += 1;
            }
            let mut k = j;
            while cur <= hi {
                if k >= other.runs.len() || other.runs[k].0 > hi {
                    out.push((cur, hi));
                    break;
                }
                let (blo, bhi) = other.runs[k];
                if blo > cur {
                    out.push((cur, blo - 1));
                }
                if bhi >= hi {
                    break;
                }
                cur = cur.max(bhi + 1);
                k += 1;
            }
        }
        RangeSet { runs: out }
    }

    /// Decode back to a sorted value list.
    pub fn to_values(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len());
        for &(lo, hi) in &self.runs {
            out.extend(lo..=hi);
        }
        out
    }

    /// Iterate elements in ascending order without materializing.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| lo..=hi)
    }

    /// Encoded size in bytes: two 8-byte bounds per run (plus a length).
    pub fn encoded_bytes(&self) -> usize {
        8 + 16 * self.runs.len()
    }

    /// Raw array size in bytes for the same set (8 bytes per element, plus
    /// a length), i.e. the cost the uncompressed versioning table pays.
    pub fn raw_bytes(&self) -> usize {
        8 + 8 * self.len()
    }

    /// `raw_bytes / encoded_bytes` — > 1 means the encoding wins.
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes() as f64 / self.encoded_bytes() as f64
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (lo, hi)) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if lo == hi {
                write!(f, "{lo}")?;
            } else {
                write!(f, "{lo}-{hi}")?;
            }
        }
        write!(f, "}}")
    }
}

impl FromIterator<i64> for RangeSet {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> RangeSet {
        RangeSet::from_values(iter)
    }
}

/// Range-encoded size of one raw array, without building the set: the
/// accounting primitive used by the compression experiment. The input must
/// be sorted and duplicate-free (as vlist/rlist arrays are).
pub fn encoded_array_bytes(values: &[i64]) -> usize {
    let mut runs = 0usize;
    let mut prev: Option<i64> = None;
    for &v in values {
        match prev {
            Some(p) if p + 1 == v => {}
            _ => runs += 1,
        }
        prev = Some(v);
    }
    8 + 16 * runs
}

/// Storage effect of range-encoding the array column of a CVD's
/// versioning table (Section 3.2's compression remark, measured).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Which table and column were measured.
    pub table: String,
    /// Number of arrays (versioning-table rows).
    pub arrays: usize,
    /// Total elements across all arrays.
    pub elements: usize,
    /// Bytes of the raw `INT[]` representation.
    pub raw_bytes: usize,
    /// Bytes after range-encoding every array.
    pub encoded_bytes: usize,
    /// Bytes under adaptive encoding: each array keeps whichever of the raw
    /// and range-encoded forms is smaller (one tag byte per array), the way
    /// production bitmap formats choose containers per block.
    pub adaptive_bytes: usize,
}

impl CompressionReport {
    /// `raw / encoded`; greater than 1 means range encoding shrinks the
    /// versioning table.
    pub fn ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }

    /// `raw / adaptive`; never below ~1 since adaptive encoding falls back
    /// to the raw form per array.
    pub fn adaptive_ratio(&self) -> f64 {
        if self.adaptive_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.adaptive_bytes as f64
        }
    }
}

/// Measure range-encoding on the versioning information of a CVD.
///
/// The array column depends on the data model: `vlist` for combined-table
/// and split-by-vlist, `rlist` for split-by-rlist. Models without array
/// columns (a-table-per-version, delta-based) report `None`.
pub fn compression_report(
    engine: &orpheus_engine::Database,
    cvd: &crate::cvd::Cvd,
) -> crate::error::Result<Option<CompressionReport>> {
    use crate::model::ModelKind;
    let (table, column) = match cvd.model {
        ModelKind::CombinedTable => (cvd.combined_table(), "vlist"),
        ModelKind::SplitByVlist => (cvd.vlist_table(), "vlist"),
        ModelKind::SplitByRlist => (cvd.rlist_table(), "rlist"),
        ModelKind::TablePerVersion | ModelKind::DeltaBased => return Ok(None),
    };
    let t = engine.table(&table)?;
    let col = t.schema.column_index(column)?;
    let mut report = CompressionReport {
        table: format!("{table}.{column}"),
        arrays: 0,
        elements: 0,
        raw_bytes: 0,
        encoded_bytes: 0,
        adaptive_bytes: 0,
    };
    for row in t.rows() {
        let values = row[col].as_int_array()?;
        let set = RangeSet::from_values(values.iter().copied());
        let raw = 8 + 8 * values.len();
        let encoded = set.encoded_bytes();
        report.arrays += 1;
        report.elements += values.len();
        report.raw_bytes += raw;
        report.encoded_bytes += encoded;
        report.adaptive_bytes += 1 + raw.min(encoded);
    }
    Ok(Some(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn builds_canonical_runs() {
        let s = RangeSet::from_values(vec![5, 1, 2, 3, 2, 9, 10]);
        assert_eq!(s.runs(), &[(1, 3), (5, 5), (9, 10)]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.to_string(), "{1-3,5,9-10}");
    }

    #[test]
    fn contains_hits_and_misses() {
        let s = RangeSet::from_values(vec![1, 2, 3, 7, 9, 10]);
        for hit in [1, 2, 3, 7, 9, 10] {
            assert!(s.contains(hit), "{hit}");
        }
        for miss in [0, 4, 6, 8, 11, -5] {
            assert!(!s.contains(miss), "{miss}");
        }
        assert!(!RangeSet::new().contains(0));
    }

    #[test]
    fn insert_merges_runs_in_both_directions() {
        let mut s = RangeSet::from_values(vec![1, 2, 5, 6]);
        s.insert(4); // touches (5,6) from the left
        assert_eq!(s.runs(), &[(1, 2), (4, 6)]);
        s.insert(3); // bridges (1,2) and (4,6)
        assert_eq!(s.runs(), &[(1, 6)]);
        s.insert(3); // idempotent
        assert_eq!(s.runs(), &[(1, 6)]);
        s.insert(10);
        assert_eq!(s.runs(), &[(1, 6), (10, 10)]);
    }

    #[test]
    fn set_operations_match_btreeset() {
        let a = RangeSet::from_values(vec![1, 2, 3, 10, 11, 20]);
        let b = RangeSet::from_values(vec![3, 4, 11, 12, 13, 30]);
        let sa: BTreeSet<i64> = a.iter().collect();
        let sb: BTreeSet<i64> = b.iter().collect();
        assert_eq!(
            a.union(&b).to_values(),
            sa.union(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.intersect(&b).to_values(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
        assert_eq!(
            a.difference(&b).to_values(),
            sa.difference(&sb).copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn encoding_wins_on_runs_loses_on_scatter() {
        // One long run: 1000 elements → 1 run.
        let long = RangeSet::from_sorted_unique(&(0..1000).collect::<Vec<_>>());
        assert!(long.compression_ratio() > 300.0);
        // All-odd values: no runs → every element costs two bounds.
        let scattered = RangeSet::from_values((0..100).map(|i| i * 2));
        assert!(scattered.compression_ratio() < 1.0);
    }

    #[test]
    fn encoded_array_bytes_agrees_with_rangeset() {
        for values in [
            vec![],
            vec![1],
            vec![1, 2, 3],
            vec![1, 3, 5],
            vec![1, 2, 3, 7, 8, 20],
        ] {
            let s = RangeSet::from_sorted_unique(&values);
            assert_eq!(
                encoded_array_bytes(&values),
                s.encoded_bytes(),
                "{values:?}"
            );
        }
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(RangeSet::new().to_string(), "{}");
        assert!(RangeSet::new().is_empty());
        assert_eq!(RangeSet::new().union(&RangeSet::new()).len(), 0);
    }

    #[test]
    fn union_handles_adjacent_runs_across_sets() {
        // (1,3) and (4,6) are adjacent across the two sets and must fuse.
        let a = RangeSet::from_values(vec![1, 2, 3]);
        let b = RangeSet::from_values(vec![4, 5, 6]);
        assert_eq!(a.union(&b).runs(), &[(1, 6)]);
    }

    #[test]
    fn extremes_do_not_overflow() {
        let mut s = RangeSet::from_values(vec![i64::MAX - 1, i64::MAX]);
        assert_eq!(s.runs(), &[(i64::MAX - 1, i64::MAX)]);
        s.insert(i64::MIN);
        assert!(s.contains(i64::MIN));
        let u = s.union(&RangeSet::from_values(vec![i64::MAX]));
        assert_eq!(u.len(), 3);
    }
}
