//! Crash recovery: open a WAL directory back into a live instance, and
//! checkpoint live instances into fresh generations.
//!
//! # Opening
//!
//! [`open`] reads the `CURRENT` pointer, loads that generation's
//! snapshot with [`crate::persist::load`], scans its log segment with
//! [`crate::wal::read_segment`], and re-applies every record on top of
//! the snapshot. A torn tail (the unfinished last append of a crashed
//! process) is truncated away; its operation was never acknowledged, so
//! dropping it is correct. Replay pins the logical clock to each
//! record's `clock_before` and runs the op under the recorded identity,
//! so the recovered instance is bit-for-bit the acknowledged pre-crash
//! state — version graphs, rlists, and logical timestamps included.
//!
//! A fresh (empty) directory is initialized as generation 1: an empty
//! snapshot, an empty segment, then `CURRENT` — in that order, so a
//! crash mid-initialization is indistinguishable from no directory.
//!
//! # Checkpoints
//!
//! [`checkpoint`] writes generation `g+1`: snapshot (atomic rename via
//! the engine's `write_atomically`), new empty segment, then the
//! `CURRENT` flip — which is the commit point. Only after `CURRENT` is
//! durable does the sink switch segments and delete generation `g`. A
//! crash at *any* interior point leaves `CURRENT` naming a complete
//! generation; stale files from an abandoned checkpoint are swept on the
//! next [`open`]. Checkpointing requires exclusive access (`&mut` /
//! [`SharedOrpheusDB::write`]'s full quiesce), which is what makes the
//! snapshot/segment boundary an exact cut of the operation stream.
//!
//! # What is durable
//!
//! Everything that flows through the command bus is WAL-durable:
//! init/drop, commits (with their staged rows materialized into the
//! record), discard, optimize, create_user/login. Staged *edits* — raw
//! SQL against checkout tables — live in engine heaps and become durable
//! when the commit happens (the record carries the final rows) or at the
//! next checkpoint (snapshots include staged tables); a crash between
//! checkout and commit can therefore lose uncommitted edits, exactly
//! like losing a working copy. Direct mutation of a shared instance via
//! [`SharedOrpheusDB::write`] closures bypasses the bus and is
//! checkpoint-durable only.

use std::path::Path;

use crate::concurrent::SharedOrpheusDB;
use crate::db::OrpheusDB;
use crate::error::{CoreError, Result};
use crate::persist;
use crate::request::{Executor, Request};
use crate::wal::{self, WalOp, WalRecord, WalSink};

/// Open (or create) a WAL-backed instance from `dir`.
pub fn open(dir: &Path) -> Result<OrpheusDB> {
    std::fs::create_dir_all(dir).map_err(|e| {
        CoreError::Storage(format!(
            "cannot create WAL directory {}: {e}",
            dir.display()
        ))
    })?;
    let gen = match wal::read_current(dir)? {
        Some(gen) => gen,
        None => {
            // Fresh directory: persist an empty generation 1 before
            // CURRENT names it.
            let fresh = OrpheusDB::new();
            persist::save(&fresh, &wal::snapshot_path(dir, 1))?;
            wal::create_segment(dir, 1, 0)?;
            wal::write_current(dir, 1)?;
            1
        }
    };
    let mut odb = persist::load(&wal::snapshot_path(dir, gen))?;
    let scan = wal::read_segment(&wal::segment_path(dir, gen), gen)?;
    let next_seq = scan.base_seq + scan.records.len() as u64 + 1;
    let valid_len = scan.valid_len;
    for record in scan.records {
        apply(&mut odb, record)?;
    }
    // Belt and braces: never let the logical clock run behind a
    // timestamp that is already persisted.
    odb.clock = odb.clock.max(max_timestamp(&odb));
    odb.wal = Some(WalSink::attach(dir, gen, valid_len, next_seq)?);
    sweep_stale(dir, gen);
    Ok(odb)
}

/// Open a WAL directory straight into a shared (concurrent) instance.
/// The sink travels into every shard, so appends happen inside shard
/// locks and catalog mutations log under the catalog lock.
pub fn open_shared(dir: &Path) -> Result<SharedOrpheusDB> {
    Ok(SharedOrpheusDB::new(open(dir)?))
}

/// Write a checkpoint: snapshot the instance as generation `g+1`,
/// rotate the log, and delete generation `g`. Returns the new
/// generation. The `&mut` receiver is the quiesce guarantee — no
/// operation can apply or append while the cut is taken.
pub fn checkpoint(odb: &mut OrpheusDB) -> Result<u64> {
    let sink = odb
        .wal
        .clone()
        .ok_or_else(|| CoreError::Storage("no write-ahead log attached".into()))?;
    let dir = sink.dir().to_path_buf();
    let old_gen = sink.generation();
    let new_gen = old_gen + 1;
    if sink.fault_fires("rotate") {
        // A rotate fault fails the checkpoint before it writes anything:
        // the old generation keeps serving (and a degraded sink stays
        // degraded — recovery needs a disk that works again).
        return Err(CoreError::Storage(format!(
            "checkpoint of {} failed: injected I/O fault (rotate)",
            dir.display()
        )));
    }
    wal::kill_here("pre-snapshot");
    persist::save(odb, &wal::snapshot_path(&dir, new_gen))?;
    wal::create_segment(&dir, new_gen, sink.next_seq() - 1)?;
    wal::kill_here("pre-current");
    wal::write_current(&dir, new_gen)?;
    wal::kill_here("post-current");
    sink.switch_to(new_gen)?;
    // The old generation is now unreachable; removal is best-effort
    // (open() sweeps leftovers).
    let _ = std::fs::remove_file(wal::snapshot_path(&dir, old_gen));
    let _ = std::fs::remove_file(wal::segment_path(&dir, old_gen));
    Ok(new_gen)
}

/// Checkpoint a shared instance under its full write quiesce.
pub fn checkpoint_shared(shared: &SharedOrpheusDB) -> Result<u64> {
    shared.write(checkpoint)
}

/// Checkpoint if the live segment has outgrown the threshold
/// ([`wal::WalSink::should_checkpoint`]). Returns the new generation if
/// one was cut. A degraded sink is skipped: leaving degraded mode is an
/// *operator* decision (an explicit [`checkpoint`]), not something a
/// background ticker should do silently the moment the disk answers
/// again.
pub fn maybe_checkpoint(odb: &mut OrpheusDB) -> Result<Option<u64>> {
    match &odb.wal {
        Some(sink) if !sink.is_degraded() && sink.should_checkpoint() => checkpoint(odb).map(Some),
        _ => Ok(None),
    }
}

/// [`maybe_checkpoint`] for a shared instance: peeks at the sink without
/// quiescing, and only takes the write lock when a checkpoint is due.
pub fn maybe_checkpoint_shared(shared: &SharedOrpheusDB) -> Result<Option<u64>> {
    match shared.wal_sink() {
        Some(sink) if !sink.is_degraded() && sink.should_checkpoint() => {
            shared.write(checkpoint).map(Some)
        }
        _ => Ok(None),
    }
}

/// Re-apply one log record. The clock is pinned to the recorded value
/// and the op runs under the recorded identity, mirroring the live
/// apply exactly.
fn apply(odb: &mut OrpheusDB, record: WalRecord) -> Result<()> {
    odb.clock = record.clock_before;
    // A logged Login *is* an identity change — applying it under the
    // recorded identity and then restoring would undo it.
    if let WalOp::Request(Request::Login(_)) = &record.op {
        return apply_op(odb, record.op);
    }
    let prior = odb.access.whoami().to_string();
    odb.access.ensure_user(&record.user)?;
    odb.access.login(&record.user)?;
    let outcome = apply_op(odb, record.op);
    let _ = odb.access.login(&prior);
    outcome
}

fn apply_op(odb: &mut OrpheusDB, op: WalOp) -> Result<()> {
    match op {
        WalOp::Commit(commit) => match odb.replay_commit(commit) {
            // The CVD was dropped concurrently after the commit applied
            // live (the drop's record follows in the log, or the drop
            // won the race to the log). Either way the commit's effects
            // were discarded live too.
            Err(CoreError::CvdNotFound(_)) => Ok(()),
            other => other.map(|_| ()),
        },
        WalOp::Request(request) => {
            let shard_scoped = matches!(request, Request::Optimize(_) | Request::Discard(_));
            match odb.execute(request) {
                // Same drop race as above: shard-scoped ops tolerate
                // their target having vanished.
                Err(CoreError::CvdNotFound(_) | CoreError::NotStaged(_)) if shard_scoped => Ok(()),
                other => other.map(|_| ()),
            }
        }
    }
}

/// Largest logical timestamp persisted anywhere in the instance.
fn max_timestamp(odb: &OrpheusDB) -> u64 {
    let mut max = 0;
    for cvd in odb.cvds.values() {
        for v in &cvd.versions {
            max = max.max(v.commit_t).max(v.checkout_t.unwrap_or(0));
        }
    }
    for entry in odb.staging.list() {
        max = max.max(entry.created_at);
    }
    max
}

/// Remove snapshot/segment files from other generations (leftovers of a
/// checkpoint that crashed before or after its `CURRENT` flip).
fn sweep_stale(dir: &Path, live_gen: u64) {
    let keep = [
        wal::segment_path(dir, live_gen),
        wal::snapshot_path(dir, live_gen),
    ];
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let stale = (name.starts_with("wal-") && name.ends_with(".log"))
            || (name.starts_with("snapshot-") && name.ends_with(".orpheus"));
        if stale && !keep.contains(&path) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Init, Request};
    use orpheus_engine::{Column, DataType, Schema, Value};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("orpheus-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grape", DataType::Text),
        ])
    }

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (1..=n)
            .map(|i| vec![Value::Int(i), Value::Text(format!("g{i}"))])
            .collect()
    }

    #[test]
    fn fresh_open_reopen_empty() {
        let dir = temp_dir("fresh");
        let odb = open(&dir).unwrap();
        assert!(odb.wal.is_some());
        drop(odb);
        let again = open(&dir).unwrap();
        assert_eq!(again.ls().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn init_and_commit_survive_reopen() {
        let dir = temp_dir("basic");
        {
            let mut odb = open(&dir).unwrap();
            odb.execute(Request::Init(Init {
                cvd: "wines".into(),
                schema: schema(),
                rows: rows(3),
                model: None,
            }))
            .unwrap();
            odb.checkout("wines", &[crate::ids::Vid(1)], "work")
                .unwrap();
            odb.engine
                .execute("INSERT INTO work (id, grape) VALUES (4, 'syrah')")
                .unwrap();
            odb.commit("work", "add syrah").unwrap();
        }
        let reopened = open(&dir).unwrap();
        let cvd = reopened.cvd("wines").unwrap();
        assert_eq!(cvd.num_versions(), 2);
        assert_eq!(cvd.rids_of(crate::ids::Vid(2)).unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_matches_live_instance_exactly() {
        let dir = temp_dir("exact");
        let live = {
            let mut odb = open(&dir).unwrap();
            odb.execute(Request::Init(Init {
                cvd: "wines".into(),
                schema: schema(),
                rows: rows(5),
                model: None,
            }))
            .unwrap();
            odb.checkout("wines", &[crate::ids::Vid(1)], "w1").unwrap();
            odb.engine.execute("DELETE FROM w1 WHERE id > 3").unwrap();
            odb.commit("w1", "trim").unwrap();
            odb.checkout("wines", &[crate::ids::Vid(1), crate::ids::Vid(2)], "w2")
                .unwrap();
            odb.commit("w2", "merge").unwrap();
            odb
        };
        let replayed = open(&dir).unwrap();
        let a = live.cvd("wines").unwrap();
        let b = replayed.cvd("wines").unwrap();
        assert_eq!(a.versions, b.versions);
        assert_eq!(a.version_rids, b.version_rids);
        assert_eq!(live.clock, replayed.clock);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_and_reopens() {
        let dir = temp_dir("ckpt");
        {
            let mut odb = open(&dir).unwrap();
            odb.execute(Request::Init(Init {
                cvd: "wines".into(),
                schema: schema(),
                rows: rows(2),
                model: None,
            }))
            .unwrap();
            let gen = checkpoint(&mut odb).unwrap();
            assert_eq!(gen, 2);
            // Old generation files are gone; new ones exist.
            assert!(!wal::segment_path(&dir, 1).exists());
            assert!(wal::segment_path(&dir, 2).exists());
            assert!(wal::snapshot_path(&dir, 2).exists());
            // Post-checkpoint mutations land in the new segment.
            odb.checkout("wines", &[crate::ids::Vid(1)], "work")
                .unwrap();
            odb.commit("work", "post-checkpoint").unwrap();
        }
        let reopened = open(&dir).unwrap();
        assert_eq!(reopened.cvd("wines").unwrap().num_versions(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_commit_leaves_no_record() {
        let dir = temp_dir("failed-commit");
        {
            let mut odb = open(&dir).unwrap();
            odb.execute(Request::Init(Init {
                cvd: "wines".into(),
                schema: schema(),
                rows: rows(2),
                model: None,
            }))
            .unwrap();
            // Committing a table that was never checked out fails live
            // and therefore must not be logged.
            assert!(odb.commit("nope", "bad").is_err());
            let seq_after = odb.wal.as_ref().unwrap().next_seq();
            // Only the init record landed (seq 1); next is 2.
            assert_eq!(seq_after, 2);
        }
        let reopened = open(&dir).unwrap();
        assert_eq!(reopened.cvd("wines").unwrap().num_versions(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
