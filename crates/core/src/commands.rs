//! The string front-end of the command bus (Section 2.2): parses git-style
//! command lines (`checkout`, `commit`, `diff`, `init`, `ls`, `log`,
//! `drop`, `optimize`, `discard`, user management, and `run` for versioned
//! SQL) into typed [`Request`]s.
//!
//! This module is deliberately thin: all semantics live in the
//! [`Executor`] implementations. The only work done here besides parsing
//! is file access for the `-f` / `-s` flags — file *contents* are inlined
//! into the request and checkout-CSV responses are written back out, so
//! the bus itself never touches the filesystem. [`FileAccess`] abstracts
//! that I/O to keep the front-end testable.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::ModelKind;
use crate::request::CommandKind as Cmd;
use crate::request::{
    Checkout, Commit, CommitCsv, CreateUser, Diff, Discard, DropCvd, Executor, InitFromCsv, Log,
    Login, Optimize, Request, Run,
};
use crate::response::Response;

/// Abstraction over file reads/writes for `-f` / `-s` flags.
pub trait FileAccess {
    fn read(&self, path: &str) -> Result<String>;
    fn write(&mut self, path: &str, content: &str) -> Result<()>;
}

/// Filesystem-backed [`FileAccess`].
#[derive(Debug, Default)]
pub struct RealFiles;

impl FileAccess for RealFiles {
    fn read(&self, path: &str) -> Result<String> {
        std::fs::read_to_string(path).map_err(|e| CoreError::Io(format!("cannot read {path}: {e}")))
    }

    fn write(&mut self, path: &str, content: &str) -> Result<()> {
        std::fs::write(path, content)
            .map_err(|e| CoreError::Io(format!("cannot write {path}: {e}")))
    }
}

/// In-memory [`FileAccess`] for tests and examples.
#[derive(Debug, Default)]
pub struct MemFiles {
    pub files: HashMap<String, String>,
}

impl FileAccess for MemFiles {
    fn read(&self, path: &str) -> Result<String> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| CoreError::Io(format!("no such file {path}")))
    }

    fn write(&mut self, path: &str, content: &str) -> Result<()> {
        self.files.insert(path.to_string(), content.to_string());
        Ok(())
    }
}

/// Parse one command line into a typed [`Request`].
///
/// `files` resolves `-f` / `-s` flags: referenced file contents are read
/// here and inlined, so the resulting request is self-contained.
pub fn parse_command(files: &dyn FileAccess, line: &str) -> Result<Request> {
    let line = line.trim();
    if line.is_empty() {
        return Err(CoreError::parse_line("empty command"));
    }
    // `run` takes the rest of the line verbatim as SQL.
    if let Some(sql) = line
        .strip_prefix("run ")
        .or_else(|| line.strip_prefix("RUN "))
    {
        return Ok(Run::sql(sql.trim()).into());
    }
    let words = shell_split(line)?;
    let cmd = words[0].to_ascii_lowercase();
    let args = Args::parse(&words[1..]);
    match cmd.as_str() {
        "init" => {
            let cvd = args.positional_cvd(Cmd::Init)?;
            let csv = files.read(args.one(Cmd::Init, "f")?)?;
            let schema_text = files.read(args.one(Cmd::Init, "s")?)?;
            let mut request = InitFromCsv::cvd(cvd).csv(csv).schema_text(schema_text);
            if let Some(m) = args.opt("model") {
                let model = ModelKind::parse(m).ok_or_else(|| {
                    CoreError::parse(Cmd::Init, format!("unknown data model {m}"))
                })?;
                request = request.model(model);
            }
            Ok(request.into())
        }
        "checkout" => {
            let cvd = args.positional_cvd(Cmd::Checkout)?;
            let builder = Checkout::of(cvd).versions(args.vids(Cmd::Checkout, "v")?);
            if let Some(table) = args.opt("t") {
                Ok(builder.into_table(table).into())
            } else if let Some(path) = args.opt("f") {
                Ok(builder.into_csv(path).into())
            } else {
                Err(CoreError::parse(Cmd::Checkout, "checkout needs -t or -f"))
            }
        }
        "commit" => {
            let message = args.opt("m").unwrap_or("");
            if let Some(table) = args.opt("t") {
                Ok(Commit::table(table).message(message).into())
            } else if let Some(path) = args.opt("f") {
                let mut request = CommitCsv::path(path)
                    .csv(files.read(path)?)
                    .message(message);
                if let Some(schema_path) = args.opt("s") {
                    request = request.schema_text(files.read(schema_path)?);
                }
                Ok(request.into())
            } else {
                Err(CoreError::parse(Cmd::Commit, "commit needs -t or -f"))
            }
        }
        "diff" => {
            let cvd = args.positional_cvd(Cmd::Diff)?;
            let vids = args.vids(Cmd::Diff, "v")?;
            match vids.as_slice() {
                [a, b] => Ok(Diff::of(cvd).between(*a, *b).into()),
                _ => Err(CoreError::parse(
                    Cmd::Diff,
                    "diff needs exactly two versions",
                )),
            }
        }
        "ls" => Ok(Request::Ls),
        "log" => Ok(Log::of(args.positional_cvd(Cmd::Log)?).into()),
        "drop" => Ok(DropCvd::named(args.positional_cvd(Cmd::Drop)?).into()),
        "optimize" => {
            let mut request = Optimize::cvd(args.positional_cvd(Cmd::Optimize)?);
            if let Some(g) = args.opt("gamma") {
                request = request.gamma(
                    g.parse::<f64>()
                        .map_err(|_| CoreError::parse(Cmd::Optimize, format!("bad gamma {g}")))?,
                );
            }
            if let Some(m) = args.opt("mu") {
                request = request.mu(m
                    .parse::<f64>()
                    .map_err(|_| CoreError::parse(Cmd::Optimize, format!("bad mu {m}")))?);
            }
            // `-weights v:freq,v:freq` switches to the Appendix C.2
            // workload-aware optimizer; unlisted versions default to 1.
            if let Some(spec) = args.opt("weights") {
                request = request.weights(parse_weights(spec)?);
            }
            Ok(request.into())
        }
        "discard" => {
            let table = args
                .positional
                .first()
                .ok_or_else(|| CoreError::parse(Cmd::Discard, "discard needs a table name"))?;
            Ok(Discard::table(table).into())
        }
        "create_user" => {
            let user = args
                .positional
                .first()
                .ok_or_else(|| CoreError::parse(Cmd::CreateUser, "create_user needs a name"))?;
            Ok(CreateUser::named(user).into())
        }
        "config" => {
            let user = args
                .positional
                .first()
                .ok_or_else(|| CoreError::parse(Cmd::Login, "config needs a user name"))?;
            Ok(Login::as_user(user).into())
        }
        "whoami" => Ok(Request::Whoami),
        other => Err(CoreError::UnknownCommand(other.to_string())),
    }
}

/// Parse one command line and execute it on any [`Executor`].
///
/// The single filesystem side effect of the bus front-end happens here:
/// a `checkout -f` response's CSV text is written to its path.
pub fn run_command<E: Executor>(
    executor: &mut E,
    files: &mut dyn FileAccess,
    line: &str,
) -> Result<Response> {
    let request = parse_command(files, line)?;
    let response = executor.execute(request)?;
    if let Response::CheckedOutCsv { path, csv, .. } = &response {
        files.write(path, csv)?;
    }
    Ok(response)
}

/// Split a command line into words, honoring single/double quotes.
/// Adjacent quoted/unquoted segments join into one word (`a"b c"` is
/// `ab c`); an unterminated quote is an error.
fn shell_split(line: &str) -> Result<Vec<String>> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut had_any = false;
    for c in line.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    had_any = true;
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() || had_any {
                        words.push(std::mem::take(&mut cur));
                        had_any = false;
                    }
                }
                other => cur.push(other),
            },
        }
    }
    if quote.is_some() {
        return Err(CoreError::parse_line("unterminated quote"));
    }
    if !cur.is_empty() || had_any {
        words.push(cur);
    }
    Ok(words)
}

/// Flag parser: collects `-x value [value...]` groups and positionals.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, Vec<String>>,
}

impl Args {
    fn parse(words: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags: HashMap<String, Vec<String>> = HashMap::new();
        let mut current: Option<String> = None;
        for w in words {
            if let Some(flag) = w.strip_prefix('-') {
                if !flag.is_empty() && !flag.chars().next().unwrap().is_ascii_digit() {
                    let key = flag.trim_start_matches('-').to_string();
                    flags.entry(key.clone()).or_default();
                    current = Some(key);
                    continue;
                }
            }
            match &current {
                Some(key) => flags.get_mut(key).expect("flag exists").push(w.clone()),
                None => positional.push(w.clone()),
            }
        }
        Args { positional, flags }
    }

    fn positional_cvd(&self, cmd: Cmd) -> Result<&str> {
        self.positional
            .first()
            .map(|s| s.as_str())
            .ok_or_else(|| CoreError::parse(cmd, format!("{cmd} needs a CVD name")))
    }

    fn one(&self, cmd: Cmd, flag: &str) -> Result<&str> {
        match self.flags.get(flag).map(|v| v.as_slice()) {
            Some([x]) => Ok(x),
            Some(_) => Err(CoreError::parse(cmd, format!("-{flag} takes one value"))),
            None => Err(CoreError::parse(cmd, format!("missing -{flag}"))),
        }
    }

    fn opt(&self, flag: &str) -> Option<&str> {
        match self.flags.get(flag).map(|v| v.as_slice()) {
            Some([x]) => Some(x),
            _ => None,
        }
    }

    fn many(&self, cmd: Cmd, flag: &str) -> Result<&[String]> {
        self.flags
            .get(flag)
            .map(|v| v.as_slice())
            .filter(|v| !v.is_empty())
            .ok_or_else(|| CoreError::parse(cmd, format!("missing -{flag}")))
    }

    fn vids(&self, cmd: Cmd, flag: &str) -> Result<Vec<Vid>> {
        self.many(cmd, flag)?
            .iter()
            .map(|s| {
                s.trim_start_matches('v')
                    .parse::<u64>()
                    .map(Vid)
                    .map_err(|_| CoreError::parse(cmd, format!("bad version id {s}")))
            })
            .collect()
    }
}

/// Parse a `-weights` spec: comma-separated `version:frequency` pairs,
/// e.g. `3:50,7:10` (the `v` prefix on version ids is optional).
fn parse_weights(spec: &str) -> Result<Vec<(Vid, u64)>> {
    let mut out = Vec::new();
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let (v, f) = pair.split_once(':').ok_or_else(|| {
            CoreError::parse(Cmd::Optimize, format!("bad weight {pair}: want v:freq"))
        })?;
        let vid = v
            .trim()
            .trim_start_matches('v')
            .parse::<u64>()
            .map_err(|_| {
                CoreError::parse(Cmd::Optimize, format!("bad version id in weight {pair}"))
            })?;
        let freq = f.trim().parse::<u64>().map_err(|_| {
            CoreError::parse(Cmd::Optimize, format!("bad frequency in weight {pair}"))
        })?;
        out.push((Vid(vid), freq));
    }
    if out.is_empty() {
        return Err(CoreError::parse(
            Cmd::Optimize,
            "-weights needs at least one v:freq",
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::OrpheusDB;
    use crate::request::CheckoutCsv;

    fn setup() -> (OrpheusDB, MemFiles) {
        let mut files = MemFiles::default();
        files.files.insert(
            "data.csv".into(),
            "protein1,protein2,score\na,b,10\na,c,95\n".into(),
        );
        files.files.insert(
            "schema.txt".into(),
            "protein1:text!pk\nprotein2:text!pk\nscore:int\n".into(),
        );
        (OrpheusDB::new(), files)
    }

    fn ok(odb: &mut OrpheusDB, files: &mut MemFiles, line: &str) -> Response {
        run_command(odb, files, line).unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    #[test]
    fn lines_parse_into_typed_requests() {
        let (_, files) = setup();
        assert_eq!(
            parse_command(&files, "checkout protein -v 1 2 -t work").unwrap(),
            Checkout::of("protein")
                .versions([1u64, 2])
                .into_table("work")
                .into()
        );
        assert_eq!(
            parse_command(&files, "checkout protein -v v3 -f out.csv").unwrap(),
            Request::CheckoutCsv(CheckoutCsv {
                cvd: "protein".into(),
                versions: vec![Vid(3)],
                path: "out.csv".into(),
            })
        );
        assert_eq!(
            parse_command(&files, "commit -t work -m 'two words'").unwrap(),
            Commit::table("work").message("two words").into()
        );
        assert_eq!(
            parse_command(&files, "diff protein -v 1 2").unwrap(),
            Diff::of("protein").between(1u64, 2u64).into()
        );
        assert_eq!(parse_command(&files, "ls").unwrap(), Request::Ls);
        assert_eq!(parse_command(&files, "whoami").unwrap(), Request::Whoami);
        assert_eq!(
            parse_command(&files, "optimize p -gamma 2.0 -mu 1.5 -weights 2:50").unwrap(),
            Optimize::cvd("p")
                .gamma(2.0)
                .mu(1.5)
                .weight(2u64, 50)
                .into()
        );
        assert_eq!(
            parse_command(&files, "discard work").unwrap(),
            Discard::table("work").into()
        );
        // The init request inlines file contents.
        match parse_command(&files, "init protein -f data.csv -s schema.txt").unwrap() {
            Request::InitFromCsv(r) => {
                assert!(r.csv.starts_with("protein1,protein2,score"));
                assert!(r.schema_text.contains("!pk"));
                assert_eq!(r.model, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_identify_the_command() {
        let (_, files) = setup();
        let err = parse_command(&files, "diff protein -v 1").unwrap_err();
        assert_eq!(err.command(), Some(Cmd::Diff));
        let err = parse_command(&files, "checkout protein -v 1").unwrap_err();
        assert_eq!(err.command(), Some(Cmd::Checkout));
        assert!(matches!(
            parse_command(&files, "bogus"),
            Err(CoreError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse_command(&files, ""),
            Err(CoreError::Parse { command: None, .. })
        ));
        // Missing file for -f is an I/O error, not a parse error.
        assert!(matches!(
            parse_command(&files, "init x -f nope.csv -s schema.txt"),
            Err(CoreError::Io(_))
        ));
    }

    #[test]
    fn full_session() {
        let (mut odb, mut files) = setup();
        ok(
            &mut odb,
            &mut files,
            "init protein -f data.csv -s schema.txt",
        );
        let out = ok(&mut odb, &mut files, "ls");
        assert_eq!(out.summary(), "protein");

        ok(&mut odb, &mut files, "checkout protein -v 1 -t work");
        odb.engine
            .execute("INSERT INTO work VALUES (NULL, 'x', 'y', 50)")
            .unwrap();
        let out = ok(&mut odb, &mut files, "commit -t work -m 'add xy'");
        assert_eq!(out.version(), Some(Vid(2)));

        let out = ok(&mut odb, &mut files, "diff protein -v 1 2");
        assert!(out.summary().contains("1 record(s) only in v2"));

        let out = ok(
            &mut odb,
            &mut files,
            "run SELECT count(*) FROM VERSION 2 OF CVD protein",
        );
        let r = out.into_rows().unwrap();
        assert_eq!(r.scalar(), Some(&orpheus_engine::Value::Int(3)));

        let out = ok(&mut odb, &mut files, "log protein");
        assert!(out.summary().contains("add xy"));

        ok(&mut odb, &mut files, "optimize protein -gamma 2.0 -mu 1.5");
        ok(&mut odb, &mut files, "drop protein");
        assert_eq!(ok(&mut odb, &mut files, "ls").summary(), "");
    }

    #[test]
    fn csv_checkout_commit_via_commands() {
        let (mut odb, mut files) = setup();
        ok(
            &mut odb,
            &mut files,
            "init protein -f data.csv -s schema.txt",
        );
        ok(&mut odb, &mut files, "checkout protein -v 1 -f out.csv");
        let text = files.files.get("out.csv").unwrap().clone();
        files
            .files
            .insert("out.csv".into(), format!("{text},n1,n2,7\n"));
        let out = ok(&mut odb, &mut files, "commit -f out.csv -m 'from csv'");
        assert_eq!(out.version(), Some(Vid(2)));
    }

    #[test]
    fn discard_via_command() {
        let (mut odb, mut files) = setup();
        ok(
            &mut odb,
            &mut files,
            "init protein -f data.csv -s schema.txt",
        );
        ok(&mut odb, &mut files, "checkout protein -v 1 -t work");
        assert!(odb.engine.has_table("work"));
        ok(&mut odb, &mut files, "discard work");
        assert!(!odb.engine.has_table("work"));
        assert!(odb.staged().is_empty());
    }

    #[test]
    fn user_management() {
        let (mut odb, mut files) = setup();
        assert_eq!(ok(&mut odb, &mut files, "whoami").summary(), "default");
        ok(&mut odb, &mut files, "create_user alice");
        ok(&mut odb, &mut files, "config alice");
        assert_eq!(ok(&mut odb, &mut files, "whoami").summary(), "alice");
        assert!(run_command(&mut odb, &mut files, "config bob").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let (mut odb, mut files) = setup();
        assert!(run_command(&mut odb, &mut files, "checkout protein -v 1 -t t").is_err());
        assert!(run_command(&mut odb, &mut files, "bogus").is_err());
        assert!(run_command(&mut odb, &mut files, "init x -f nope.csv -s schema.txt").is_err());
        assert!(run_command(&mut odb, &mut files, "commit -m 'no target'").is_err());
        assert!(run_command(&mut odb, &mut files, "diff protein -v 1").is_err());
    }

    #[test]
    fn quoting_in_messages() {
        let (mut odb, mut files) = setup();
        ok(
            &mut odb,
            &mut files,
            "init protein -f data.csv -s schema.txt",
        );
        ok(&mut odb, &mut files, "checkout protein -v 1 -t w");
        let out = ok(
            &mut odb,
            &mut files,
            "commit -t w -m \"message with spaces and 'quotes'\"",
        );
        assert_eq!(out.version(), Some(Vid(2)));
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(
            cvd.meta(crate::ids::Vid(2)).unwrap().message,
            "message with spaces and 'quotes'"
        );
    }

    #[test]
    fn weighted_optimize_command() {
        let (mut odb, mut files) = setup();
        ok(
            &mut odb,
            &mut files,
            "init protein -f data.csv -s schema.txt",
        );
        ok(&mut odb, &mut files, "checkout protein -v 1 -t w");
        ok(&mut odb, &mut files, "commit -t w -m v2");
        let out = ok(
            &mut odb,
            &mut files,
            "optimize protein -gamma 2.0 -mu 1.5 -weights 2:50",
        );
        assert!(out.summary().contains("partition"), "{}", out.summary());
        // Bad specs are rejected with a parse error naming optimize.
        let err =
            run_command(&mut odb, &mut files, "optimize protein -weights nonsense").unwrap_err();
        assert_eq!(err.command(), Some(Cmd::Optimize));
        assert!(run_command(&mut odb, &mut files, "optimize protein -weights 9:5").is_err());
    }

    #[test]
    fn weight_spec_parsing() {
        assert_eq!(
            parse_weights("1:50,v2:3").unwrap(),
            vec![(Vid(1), 50), (Vid(2), 3)]
        );
        assert_eq!(parse_weights("7:1").unwrap(), vec![(Vid(7), 1)]);
        assert!(parse_weights("").is_err());
        assert!(parse_weights("1=50").is_err());
        assert!(parse_weights("x:5").is_err());
        assert!(parse_weights("1:y").is_err());
    }

    #[test]
    fn multi_version_checkout_command() {
        let (mut odb, mut files) = setup();
        ok(
            &mut odb,
            &mut files,
            "init protein -f data.csv -s schema.txt",
        );
        ok(&mut odb, &mut files, "checkout protein -v 1 -t a");
        odb.engine
            .execute("UPDATE a SET score = 1 WHERE protein2 = 'b'")
            .unwrap();
        ok(&mut odb, &mut files, "commit -t a -m v2");
        ok(&mut odb, &mut files, "checkout protein -v 2 1 -t merged");
        let r = odb.engine.query("SELECT count(*) FROM merged").unwrap();
        assert_eq!(r.scalar(), Some(&orpheus_engine::Value::Int(2)));
    }

    #[test]
    fn shell_split_words_and_quotes() {
        let split = |s: &str| shell_split(s).unwrap();
        assert_eq!(split("a b  c"), vec!["a", "b", "c"]);
        assert_eq!(split(""), Vec::<String>::new());
        assert_eq!(split("   "), Vec::<String>::new());
        // Quotes group words and preserve inner whitespace.
        assert_eq!(
            split("commit -m 'two words'"),
            vec!["commit", "-m", "two words"]
        );
        assert_eq!(split("x \"a  b\""), vec!["x", "a  b"]);
        // Quote styles nest each other literally.
        assert_eq!(split("\"it's\""), vec!["it's"]);
        assert_eq!(split("'say \"hi\"'"), vec!["say \"hi\""]);
    }

    #[test]
    fn shell_split_joins_adjacent_segments() {
        let split = |s: &str| shell_split(s).unwrap();
        // Adjacent quoted/unquoted segments are one word, like a shell.
        assert_eq!(split("a\"b\"c"), vec!["abc"]);
        assert_eq!(split("a'b c'd"), vec!["ab cd"]);
        assert_eq!(split("\"a\"'b'"), vec!["ab"]);
        // Empty quotes still produce a (possibly empty) word.
        assert_eq!(split("''"), vec![""]);
        assert_eq!(split("a '' b"), vec!["a", "", "b"]);
        assert_eq!(split("\"\"\"\""), vec![""]);
    }

    #[test]
    fn shell_split_rejects_unterminated_quotes() {
        for bad in ["'open", "\"open", "a 'b c", "x \"y' z"] {
            let err = shell_split(bad).unwrap_err();
            assert!(
                err.to_string().contains("unterminated quote"),
                "{bad}: {err}"
            );
        }
    }
}
