//! Git-style command-line front-end (Section 2.2): `checkout`, `commit`,
//! `diff`, `init`, `ls`, `drop`, `optimize`, user management, and `run` for
//! (versioned) SQL.
//!
//! Commands operate on an [`OrpheusDB`] instance and return a
//! [`CommandOutput`] with a human-readable message and, for queries, the
//! result rows. File I/O (csv/schema files) is delegated to the caller via
//! [`FileAccess`] so the command layer stays testable without a filesystem.

use std::collections::HashMap;

use orpheus_engine::QueryResult;

use crate::db::OrpheusDB;
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::ModelKind;

/// Abstraction over file reads/writes for `-f` / `-s` flags.
pub trait FileAccess {
    fn read(&self, path: &str) -> Result<String>;
    fn write(&mut self, path: &str, content: &str) -> Result<()>;
}

/// Filesystem-backed [`FileAccess`].
#[derive(Debug, Default)]
pub struct RealFiles;

impl FileAccess for RealFiles {
    fn read(&self, path: &str) -> Result<String> {
        std::fs::read_to_string(path)
            .map_err(|e| CoreError::Command(format!("cannot read {path}: {e}")))
    }

    fn write(&mut self, path: &str, content: &str) -> Result<()> {
        std::fs::write(path, content)
            .map_err(|e| CoreError::Command(format!("cannot write {path}: {e}")))
    }
}

/// In-memory [`FileAccess`] for tests and examples.
#[derive(Debug, Default)]
pub struct MemFiles {
    pub files: HashMap<String, String>,
}

impl FileAccess for MemFiles {
    fn read(&self, path: &str) -> Result<String> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| CoreError::Command(format!("no such file {path}")))
    }

    fn write(&mut self, path: &str, content: &str) -> Result<()> {
        self.files.insert(path.to_string(), content.to_string());
        Ok(())
    }
}

/// Output of one command.
#[derive(Debug, Clone)]
pub struct CommandOutput {
    pub message: String,
    pub result: Option<QueryResult>,
}

impl CommandOutput {
    fn msg(m: impl Into<String>) -> CommandOutput {
        CommandOutput {
            message: m.into(),
            result: None,
        }
    }
}

/// Split a command line into words, honoring single/double quotes.
fn shell_split(line: &str) -> Result<Vec<String>> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut had_any = false;
    for c in line.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    had_any = true;
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() || had_any {
                        words.push(std::mem::take(&mut cur));
                        had_any = false;
                    }
                }
                other => cur.push(other),
            },
        }
    }
    if quote.is_some() {
        return Err(CoreError::Command("unterminated quote".into()));
    }
    if !cur.is_empty() || had_any {
        words.push(cur);
    }
    Ok(words)
}

/// Flag parser: collects `-x value [value...]` groups and positionals.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, Vec<String>>,
}

impl Args {
    fn parse(words: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags: HashMap<String, Vec<String>> = HashMap::new();
        let mut current: Option<String> = None;
        for w in words {
            if let Some(flag) = w.strip_prefix('-') {
                if !flag.is_empty() && !flag.chars().next().unwrap().is_ascii_digit() {
                    let key = flag.trim_start_matches('-').to_string();
                    flags.entry(key.clone()).or_default();
                    current = Some(key);
                    continue;
                }
            }
            match &current {
                Some(key) => flags.get_mut(key).expect("flag exists").push(w.clone()),
                None => positional.push(w.clone()),
            }
        }
        Args { positional, flags }
    }

    fn one(&self, flag: &str) -> Result<&str> {
        match self.flags.get(flag).map(|v| v.as_slice()) {
            Some([x]) => Ok(x),
            Some(_) => Err(CoreError::Command(format!("-{flag} takes one value"))),
            None => Err(CoreError::Command(format!("missing -{flag}"))),
        }
    }

    fn opt(&self, flag: &str) -> Option<&str> {
        match self.flags.get(flag).map(|v| v.as_slice()) {
            Some([x]) => Some(x),
            _ => None,
        }
    }

    fn many(&self, flag: &str) -> Result<&[String]> {
        self.flags
            .get(flag)
            .map(|v| v.as_slice())
            .filter(|v| !v.is_empty())
            .ok_or_else(|| CoreError::Command(format!("missing -{flag}")))
    }

    fn vids(&self, flag: &str) -> Result<Vec<Vid>> {
        self.many(flag)?
            .iter()
            .map(|s| {
                s.trim_start_matches('v')
                    .parse::<u64>()
                    .map(Vid)
                    .map_err(|_| CoreError::Command(format!("bad version id {s}")))
            })
            .collect()
    }
}

/// Execute one command line against the database.
pub fn run_command(
    odb: &mut OrpheusDB,
    files: &mut dyn FileAccess,
    line: &str,
) -> Result<CommandOutput> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(CommandOutput::msg(""));
    }
    // `run` takes the rest of the line verbatim as SQL.
    if let Some(sql) = line
        .strip_prefix("run ")
        .or_else(|| line.strip_prefix("RUN "))
    {
        let result = odb.run(sql.trim())?;
        return Ok(CommandOutput {
            message: format!("{} row(s)", result.rows.len()),
            result: Some(result),
        });
    }
    let words = shell_split(line)?;
    let cmd = words[0].to_ascii_lowercase();
    let args = Args::parse(&words[1..]);
    match cmd.as_str() {
        "init" => {
            let cvd = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("init needs a CVD name".into()))?;
            let csv_path = args.one("f")?;
            let schema_path = args.one("s")?;
            let model = match args.opt("model") {
                Some(m) => Some(ModelKind::parse(m).ok_or_else(|| {
                    CoreError::Command(format!("unknown data model {m}"))
                })?),
                None => None,
            };
            let csv_text = files.read(csv_path)?;
            let schema = crate::csv::parse_schema_file(&files.read(schema_path)?)?;
            let vid = odb.init_cvd_from_csv(cvd, &csv_text, schema, model)?;
            Ok(CommandOutput::msg(format!(
                "initialized CVD {cvd} at version {vid}"
            )))
        }
        "checkout" => {
            let cvd = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("checkout needs a CVD name".into()))?;
            let vids = args.vids("v")?;
            if let Some(table) = args.opt("t") {
                odb.checkout(cvd, &vids, table)?;
                Ok(CommandOutput::msg(format!(
                    "checked out {} into table {table}",
                    fmt_vids(&vids)
                )))
            } else if let Some(path) = args.opt("f") {
                let text = odb.checkout_csv(cvd, &vids, path)?;
                files.write(path, &text)?;
                Ok(CommandOutput::msg(format!(
                    "checked out {} into file {path}",
                    fmt_vids(&vids)
                )))
            } else {
                Err(CoreError::Command("checkout needs -t or -f".into()))
            }
        }
        "commit" => {
            let message = args.opt("m").unwrap_or("").to_string();
            if let Some(table) = args.opt("t") {
                let vid = odb.commit(table, &message)?;
                Ok(CommandOutput::msg(format!("committed {table} as {vid}")))
            } else if let Some(path) = args.opt("f") {
                let csv_text = files.read(path)?;
                let schema_text = match args.opt("s") {
                    Some(p) => Some(files.read(p)?),
                    None => None,
                };
                let vid = odb.commit_csv(path, &csv_text, &message, schema_text.as_deref())?;
                Ok(CommandOutput::msg(format!("committed {path} as {vid}")))
            } else {
                Err(CoreError::Command("commit needs -t or -f".into()))
            }
        }
        "diff" => {
            let cvd = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("diff needs a CVD name".into()))?;
            let vids = args.vids("v")?;
            if vids.len() != 2 {
                return Err(CoreError::Command("diff needs exactly two versions".into()));
            }
            let d = odb.diff(cvd, vids[0], vids[1])?;
            Ok(CommandOutput::msg(format!(
                "{} record(s) only in {}, {} record(s) only in {}",
                d.only_in_first.len(),
                vids[0],
                d.only_in_second.len(),
                vids[1]
            )))
        }
        "ls" => Ok(CommandOutput::msg(odb.ls().join("\n"))),
        "drop" => {
            let cvd = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("drop needs a CVD name".into()))?;
            odb.drop_cvd(cvd)?;
            Ok(CommandOutput::msg(format!("dropped CVD {cvd}")))
        }
        "optimize" => {
            let cvd = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("optimize needs a CVD name".into()))?;
            let gamma = match args.opt("gamma") {
                Some(g) => g
                    .parse::<f64>()
                    .map_err(|_| CoreError::Command(format!("bad gamma {g}")))?,
                None => odb.config.gamma_factor,
            };
            let mu = match args.opt("mu") {
                Some(m) => m
                    .parse::<f64>()
                    .map_err(|_| CoreError::Command(format!("bad mu {m}")))?,
                None => odb.config.mu,
            };
            // `-weights v:freq,v:freq` switches to the Appendix C.2
            // workload-aware optimizer; unlisted versions default to 1.
            let report = match args.opt("weights") {
                Some(spec) => {
                    let freqs = parse_weights(spec)?;
                    odb.optimize_weighted_with(cvd, &freqs, gamma, mu)?
                }
                None => odb.optimize_with(cvd, gamma, mu)?,
            };
            Ok(CommandOutput::msg(format!(
                "partitioned {cvd} into {} partition(s); est. storage {} records, \
                 est. checkout cost {:.1} records (δ = {:.3})",
                report.num_partitions, report.storage_records, report.cavg, report.delta
            )))
        }
        "log" => {
            let cvd_name = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("log needs a CVD name".into()))?;
            let cvd = odb.cvd(cvd_name)?;
            let mut lines = Vec::new();
            for m in &cvd.versions {
                lines.push(format!(
                    "{} <- [{}] {} ({} records) \"{}\"",
                    m.vid,
                    m.parents
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    m.commit_t,
                    m.num_records,
                    m.message
                ));
            }
            Ok(CommandOutput::msg(lines.join("\n")))
        }
        "create_user" => {
            let name = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("create_user needs a name".into()))?;
            odb.access.create_user(name)?;
            Ok(CommandOutput::msg(format!("created user {name}")))
        }
        "config" => {
            let name = args
                .positional
                .first()
                .ok_or_else(|| CoreError::Command("config needs a user name".into()))?;
            odb.access.login(name)?;
            Ok(CommandOutput::msg(format!("logged in as {name}")))
        }
        "whoami" => Ok(CommandOutput::msg(odb.access.whoami().to_string())),
        other => Err(CoreError::Command(format!("unknown command: {other}"))),
    }
}

fn fmt_vids(vids: &[Vid]) -> String {
    vids.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parse a `-weights` spec: comma-separated `version:frequency` pairs,
/// e.g. `3:50,7:10` (the `v` prefix on version ids is optional).
fn parse_weights(spec: &str) -> Result<Vec<(Vid, u64)>> {
    let mut out = Vec::new();
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let (v, f) = pair
            .split_once(':')
            .ok_or_else(|| CoreError::Command(format!("bad weight {pair}: want v:freq")))?;
        let vid = v
            .trim()
            .trim_start_matches('v')
            .parse::<u64>()
            .map_err(|_| CoreError::Command(format!("bad version id in weight {pair}")))?;
        let freq = f
            .trim()
            .parse::<u64>()
            .map_err(|_| CoreError::Command(format!("bad frequency in weight {pair}")))?;
        out.push((Vid(vid), freq));
    }
    if out.is_empty() {
        return Err(CoreError::Command("-weights needs at least one v:freq".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (OrpheusDB, MemFiles) {
        let mut files = MemFiles::default();
        files.files.insert(
            "data.csv".into(),
            "protein1,protein2,score\na,b,10\na,c,95\n".into(),
        );
        files.files.insert(
            "schema.txt".into(),
            "protein1:text!pk\nprotein2:text!pk\nscore:int\n".into(),
        );
        (OrpheusDB::new(), files)
    }

    fn ok(odb: &mut OrpheusDB, files: &mut MemFiles, line: &str) -> CommandOutput {
        run_command(odb, files, line).unwrap_or_else(|e| panic!("{line}: {e}"))
    }

    #[test]
    fn full_session() {
        let (mut odb, mut files) = setup();
        ok(&mut odb, &mut files, "init protein -f data.csv -s schema.txt");
        let out = ok(&mut odb, &mut files, "ls");
        assert_eq!(out.message, "protein");

        ok(&mut odb, &mut files, "checkout protein -v 1 -t work");
        odb.engine
            .execute("INSERT INTO work VALUES (NULL, 'x', 'y', 50)")
            .unwrap();
        let out = ok(&mut odb, &mut files, "commit -t work -m 'add xy'");
        assert!(out.message.contains("v2"));

        let out = ok(&mut odb, &mut files, "diff protein -v 1 2");
        assert!(out.message.contains("1 record(s) only in v2"));

        let out = ok(
            &mut odb,
            &mut files,
            "run SELECT count(*) FROM VERSION 2 OF CVD protein",
        );
        let r = out.result.unwrap();
        assert_eq!(r.scalar(), Some(&orpheus_engine::Value::Int(3)));

        let out = ok(&mut odb, &mut files, "log protein");
        assert!(out.message.contains("add xy"));

        ok(&mut odb, &mut files, "optimize protein -gamma 2.0 -mu 1.5");
        ok(&mut odb, &mut files, "drop protein");
        assert_eq!(ok(&mut odb, &mut files, "ls").message, "");
    }

    #[test]
    fn csv_checkout_commit_via_commands() {
        let (mut odb, mut files) = setup();
        ok(&mut odb, &mut files, "init protein -f data.csv -s schema.txt");
        ok(&mut odb, &mut files, "checkout protein -v 1 -f out.csv");
        let text = files.files.get("out.csv").unwrap().clone();
        files
            .files
            .insert("out.csv".into(), format!("{text},n1,n2,7\n"));
        let out = ok(&mut odb, &mut files, "commit -f out.csv -m 'from csv'");
        assert!(out.message.contains("v2"));
    }

    #[test]
    fn user_management() {
        let (mut odb, mut files) = setup();
        assert_eq!(ok(&mut odb, &mut files, "whoami").message, "default");
        ok(&mut odb, &mut files, "create_user alice");
        ok(&mut odb, &mut files, "config alice");
        assert_eq!(ok(&mut odb, &mut files, "whoami").message, "alice");
        assert!(run_command(&mut odb, &mut files, "config bob").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let (mut odb, mut files) = setup();
        assert!(run_command(&mut odb, &mut files, "checkout protein -v 1 -t t").is_err());
        assert!(run_command(&mut odb, &mut files, "bogus").is_err());
        assert!(run_command(&mut odb, &mut files, "init x -f nope.csv -s schema.txt").is_err());
        assert!(run_command(&mut odb, &mut files, "commit -m 'no target'").is_err());
        assert!(run_command(&mut odb, &mut files, "diff protein -v 1").is_err());
    }

    #[test]
    fn quoting_in_messages() {
        let (mut odb, mut files) = setup();
        ok(&mut odb, &mut files, "init protein -f data.csv -s schema.txt");
        ok(&mut odb, &mut files, "checkout protein -v 1 -t w");
        let out = ok(
            &mut odb,
            &mut files,
            "commit -t w -m \"message with spaces and 'quotes'\"",
        );
        assert!(out.message.contains("v2"));
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(
            cvd.meta(crate::ids::Vid(2)).unwrap().message,
            "message with spaces and 'quotes'"
        );
    }

    #[test]
    fn weighted_optimize_command() {
        let (mut odb, mut files) = setup();
        ok(&mut odb, &mut files, "init protein -f data.csv -s schema.txt");
        ok(&mut odb, &mut files, "checkout protein -v 1 -t w");
        ok(&mut odb, &mut files, "commit -t w -m v2");
        let out = ok(
            &mut odb,
            &mut files,
            "optimize protein -gamma 2.0 -mu 1.5 -weights 2:50",
        );
        assert!(out.message.contains("partition"), "{}", out.message);
        // Bad specs are rejected with a command error.
        assert!(run_command(&mut odb, &mut files, "optimize protein -weights nonsense").is_err());
        assert!(run_command(&mut odb, &mut files, "optimize protein -weights 9:5").is_err());
    }

    #[test]
    fn weight_spec_parsing() {
        assert_eq!(
            parse_weights("1:50,v2:3").unwrap(),
            vec![(Vid(1), 50), (Vid(2), 3)]
        );
        assert_eq!(parse_weights("7:1").unwrap(), vec![(Vid(7), 1)]);
        assert!(parse_weights("").is_err());
        assert!(parse_weights("1=50").is_err());
        assert!(parse_weights("x:5").is_err());
        assert!(parse_weights("1:y").is_err());
    }

    #[test]
    fn multi_version_checkout_command() {
        let (mut odb, mut files) = setup();
        ok(&mut odb, &mut files, "init protein -f data.csv -s schema.txt");
        ok(&mut odb, &mut files, "checkout protein -v 1 -t a");
        odb.engine
            .execute("UPDATE a SET score = 1 WHERE protein2 = 'b'")
            .unwrap();
        ok(&mut odb, &mut files, "commit -t a -m v2");
        ok(&mut odb, &mut files, "checkout protein -v 2 1 -t merged");
        let r = odb
            .engine
            .query("SELECT count(*) FROM merged")
            .unwrap();
        assert_eq!(r.scalar(), Some(&orpheus_engine::Value::Int(2)));
    }
}
