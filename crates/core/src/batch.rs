//! Batch planning: partition a request stream by target shard so
//! executors can coalesce work ([`crate::request::Executor::batch`]).
//!
//! OrpheusDB's central bet (Section 2 of the paper) is that versioning
//! overhead amortizes when operations act on *sets* — arrays of record
//! ids, batched checkouts — instead of one record or one request at a
//! time. [`BatchPlan`] lifts that bet to the request level: given a
//! `Vec<Request>`, it reuses the per-CVD routing of [`Request::target`]
//! (the same table [`crate::ConcurrentExecutor`] dispatches on) to group
//! the batch into per-shard sub-batches, so an executor can
//!
//! * take each shard lock **once per sub-batch** instead of once per
//!   request ([`crate::ConcurrentExecutor`]),
//! * share one version-row scan across all checkouts of the same version
//!   ([`crate::OrpheusDB`], via [`BatchPlan::shared_scans`]),
//! * resolve staged-name routing and analyze SQL for the whole batch under
//!   a single catalog acquisition (the [`BatchRouter`] is consulted only
//!   while the plan is built),
//! * run mutually independent [`Step::Shard`] sub-batches on different
//!   worker threads — the async executor ([`crate::async_exec`]) is
//!   exactly this plan turned into a coordinator plus a per-shard worker
//!   pool.
//!
//! # Semantics contract
//!
//! Plans never change *what* a batch means, only how much lock traffic and
//! rescanning it costs. Executors driving a plan must preserve:
//!
//! * **Submission-order responses** — `batch` returns one
//!   `Result<Response>` per request, position `i` answering request `i`.
//! * **Independent failures** — a failing request never aborts the
//!   requests after it.
//! * **Per-shard order** — *writing* requests routed to the same shard
//!   execute in submission order; [`Step::Sequential`] steps are barriers
//!   that order strictly against every step around them. Pure reads
//!   (`log`, `diff`, single-shard SELECTs) split into read-only sub-batches
//!   served from the shard's MVCC snapshot, which may overlap a writing
//!   sub-batch of the same shard — see [`Step::Shard`]'s `read_only` for
//!   the exact guarantee.
//!
//! Requests routed to *different* shards between two barriers may execute
//! in any order relative to each other — they target disjoint state.
//! References whose outcome would depend on another request's runtime
//! result (two checkouts staging the same name inside one batch, a commit
//! of a name the batch already consumed) are routed to the sequential
//! path, where real state resolves them exactly as the plain `execute`
//! loop would.

use std::collections::HashMap;

use orpheus_engine::sql::lexer::{tokenize, Token};

use crate::ids::Vid;
use crate::request::{Request, Target};
use crate::staging::StagedKind;

/// The shard a batched request is routed to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ShardKey {
    /// The auxiliary shard: tables that belong to no CVD (plain-SQL side
    /// tables, orphaned staged artifacts).
    Aux,
    /// One CVD's shard, keyed by lower-cased CVD name.
    Cvd(String),
}

impl ShardKey {
    /// Human-readable shard name for error messages
    /// ([`crate::CoreError::WorkerPanicked`] carries it) — one place
    /// decides how the auxiliary shard renders, for the sync and async
    /// paths alike.
    pub fn label(&self) -> &str {
        match self {
            ShardKey::Aux => "aux",
            ShardKey::Cvd(name) => name,
        }
    }
}

/// One scheduling step of a [`BatchPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute request `i` through the ordinary per-request path: catalog
    /// requests (CVD create/drop, user management, `ls`), multi-CVD SQL,
    /// and targets the planner could not resolve. Sequential steps are
    /// barriers — everything scheduled before them completes first, and
    /// nothing scheduled after them starts early.
    Sequential(usize),
    /// One shard's sub-batch: request indices in submission order, all
    /// routed to `key`. Steps between two barriers target disjoint shards
    /// and are mutually independent — except that one shard may contribute
    /// *two* steps, a read-only one and a writing one (see `read_only`).
    Shard {
        key: ShardKey,
        indices: Vec<usize>,
        /// Every request of this sub-batch is a pure read (`log`, `diff`,
        /// single-shard SELECTs). Read-only sub-batches are served from
        /// the shard's MVCC snapshot without taking the shard lock, so
        /// executors may run them concurrently with a *writing* sub-batch
        /// of the same shard: a read submitted before a write to its shard
        /// may observe the shard either before or after that write (each
        /// read still sees one consistent snapshot). Reads submitted
        /// *after* a write to their shard ride in the writing sub-batch,
        /// preserving read-your-writes.
        read_only: bool,
    },
}

/// Executor-specific routing state consulted while a plan is built. The
/// concurrent executor implements this over its catalog (one read lock for
/// the whole plan); the single-threaded instance implements it over its
/// own registries.
pub trait BatchRouter {
    /// Whether a CVD with this name exists right now.
    fn has_cvd(&self, name: &str) -> bool;

    /// The shard owning a currently staged artifact, if any.
    fn staged_shard(&self, name: &str, kind: StagedKind) -> Option<ShardKey>;

    /// Route one SQL statement: `Some(key)` when it can run under a single
    /// shard, `None` when it needs the sequential path (multi-CVD
    /// statements, unparsable SQL).
    fn sql_shard(&self, sql: &str) -> Option<ShardKey>;
}

/// Identifiers appearing in a statement, for overlay resolution: staged
/// tables created earlier in the batch are invisible to the router's
/// live-catalog analysis (they materialize only when the plan runs), so
/// the planner scans the raw tokens itself and resolves each name through
/// the overlay. Unparsable SQL yields no names — the router already sends
/// it sequential.
fn sql_idents(sql: &str) -> Vec<String> {
    match tokenize(sql) {
        Ok(tokens) => tokens
            .into_iter()
            .filter_map(|t| match t {
                Token::Ident(name) => Some(name),
                _ => None,
            })
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Whether a shard-routed request is a pure read — executable against an
/// MVCC snapshot of its shard without taking the shard lock. Checkouts
/// mutate the staging area, commits and discards consume it, `optimize`
/// rewrites storage; `log`, `diff`, and single-shard SELECTs only read.
fn is_read_only(request: &Request) -> bool {
    match request {
        Request::Log(_) | Request::Diff(_) => true,
        Request::Run(r) => crate::query::is_select(&r.sql),
        _ => false,
    }
}

/// Key of one staged artifact inside the planner's overlay (tables
/// case-insensitive, CSV paths case-sensitive — mirroring
/// [`crate::staging::StagingArea`]).
fn overlay_key(name: &str, kind: StagedKind) -> String {
    match kind {
        StagedKind::Table => format!("t:{}", name.to_ascii_lowercase()),
        StagedKind::Csv => format!("f:{name}"),
    }
}

/// Record a commit/discard consuming a staged name: an uncertain name
/// stays uncertain (the consumer itself went sequential and may fail),
/// everything else reads as free afterwards.
fn consume(overlay: &mut HashMap<String, Overlay>, key: &str) {
    match overlay.get(key) {
        Some(Overlay::Uncertain) => {}
        _ => {
            overlay.insert(key.to_string(), Overlay::Consumed);
        }
    }
}

/// A staged name's plan-time resolution: the batch overlay first, the
/// router's live state otherwise.
fn name_state(
    overlay: &HashMap<String, Overlay>,
    router: &dyn BatchRouter,
    name: &str,
    kind: StagedKind,
) -> NameState {
    match overlay.get(&overlay_key(name, kind)) {
        Some(Overlay::Staged(key)) => NameState::Held {
            shard: key.clone(),
            in_batch: true,
        },
        // A consumed name reads as free: if the consuming commit/discard
        // fails at runtime, a checkout reusing the name fails with the
        // same "already staged" error the sequential loop produces.
        Some(Overlay::Consumed) => NameState::Free,
        Some(Overlay::Uncertain) => NameState::Unknown,
        None => match router.staged_shard(name, kind) {
            Some(key) => NameState::Held {
                shard: key,
                in_batch: false,
            },
            None => NameState::Free,
        },
    }
}

/// Route one checkout-style request and leave its mark on the overlay.
fn route_checkout(
    overlay: &mut HashMap<String, Overlay>,
    router: &dyn BatchRouter,
    cvd: &str,
    kind: StagedKind,
    name: &str,
) -> Option<ShardKey> {
    let shard = router
        .has_cvd(cvd)
        .then(|| ShardKey::Cvd(cvd.to_ascii_lowercase()));
    match name_state(overlay, router, name, kind) {
        // The normal case: the name is free, the checkout claims it
        // (subject to the checkout succeeding — a later commit routed
        // here then fails NotStaged inside the shard, exactly like the
        // sequential loop).
        NameState::Free => {
            if let Some(key) = &shard {
                overlay.insert(overlay_key(name, kind), Overlay::Staged(key.clone()));
            }
            shard
        }
        // Already staged before the batch: the checkout deterministically
        // fails "already staged" in its own shard's reservation phase.
        // The overlay is NOT touched — later references keep resolving to
        // the real holder.
        NameState::Held {
            in_batch: false, ..
        } => shard,
        // Staged by an earlier checkout of this same batch: whether this
        // one succeeds depends on that one's runtime outcome. Go
        // sequential (the barrier flushes the earlier checkout's
        // sub-batch first, so execution order is exactly sequential) and
        // poison the name for everything after.
        NameState::Held { in_batch: true, .. } | NameState::Unknown => {
            overlay.insert(overlay_key(name, kind), Overlay::Uncertain);
            None
        }
    }
}

/// A batch execution plan: the schedule ([`BatchPlan::steps`]) plus scan
/// coalescing hints ([`BatchPlan::shared_scans`]). Build once per batch
/// with [`BatchPlan::build`]; the plan holds indices into the request
/// slice it was built from.
#[derive(Debug)]
pub struct BatchPlan {
    steps: Vec<Step>,
    /// (lower-cased CVD, version list) → number of checkouts in the batch
    /// materializing exactly that version set.
    scan_counts: HashMap<(String, Vec<Vid>), usize>,
}

/// What the planner knows about one staged name after the batch's earlier
/// requests.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Overlay {
    /// Staged by an earlier, shard-routed checkout of this batch.
    Staged(ShardKey),
    /// Consumed by an earlier commit/discard of this batch.
    Consumed,
    /// The name's fate depends on runtime outcomes (same-name checkouts
    /// inside one batch); every later reference goes sequential.
    Uncertain,
}

/// A staged name's plan-time resolution, combining `router` state with the
/// batch overlay.
enum NameState {
    /// Not staged anywhere the planner can see.
    Free,
    /// Staged in `shard`; `in_batch` says an earlier request of this batch
    /// staged it (so the claim only holds if that request succeeds).
    Held { shard: ShardKey, in_batch: bool },
    /// Unknowable at plan time.
    Unknown,
}

impl BatchPlan {
    /// Partition `requests` into per-shard sub-batches separated by
    /// sequential barriers. Staged-artifact targets (`commit`, `discard`)
    /// resolve through `router` *overlaid with the batch itself*: a commit
    /// of a table checked out earlier in the same batch routes to the
    /// checkout's shard even though nothing is staged yet at plan time.
    /// References whose routing would depend on a runtime outcome — e.g.
    /// two checkouts staging the same name in one batch — fall back to
    /// sequential barriers, which execute in exact submission order.
    pub fn build(requests: &[Request], router: &dyn BatchRouter) -> BatchPlan {
        let mut steps: Vec<Step> = Vec::new();
        // Shard groups accumulated since the last barrier, in order of
        // first appearance. A shard may hold two groups: a read-only one
        // (reads before the first write to that shard in this region) and
        // a writing one.
        let mut open: Vec<(ShardKey, bool, Vec<usize>)> = Vec::new();
        let mut overlay: HashMap<String, Overlay> = HashMap::new();
        let mut scan_counts: HashMap<(String, Vec<Vid>), usize> = HashMap::new();

        let flush = |open: &mut Vec<(ShardKey, bool, Vec<usize>)>, steps: &mut Vec<Step>| {
            for (key, read_only, indices) in open.drain(..) {
                steps.push(Step::Shard {
                    key,
                    indices,
                    read_only,
                });
            }
        };

        for (i, request) in requests.iter().enumerate() {
            let route: Option<ShardKey> = match request {
                Request::Checkout(c) => {
                    route_checkout(&mut overlay, router, &c.cvd, StagedKind::Table, &c.table)
                }
                Request::CheckoutCsv(c) => {
                    route_checkout(&mut overlay, router, &c.cvd, StagedKind::Csv, &c.path)
                }
                _ => match request.target() {
                    Target::Catalog(_) => None,
                    Target::Cvd(cvd) => router
                        .has_cvd(cvd)
                        .then(|| ShardKey::Cvd(cvd.to_ascii_lowercase())),
                    Target::StagedTable(name) => {
                        match name_state(&overlay, router, name, StagedKind::Table) {
                            NameState::Held { shard, .. } => Some(shard),
                            NameState::Free | NameState::Unknown => None,
                        }
                    }
                    Target::StagedCsv(path) => {
                        match name_state(&overlay, router, path, StagedKind::Csv) {
                            NameState::Held { shard, .. } => Some(shard),
                            NameState::Free | NameState::Unknown => None,
                        }
                    }
                    // The router resolves the statement against the live
                    // catalog; staged tables checked out earlier in this
                    // same batch are invisible to it, so their names are
                    // resolved through the overlay on top. A statement on
                    // a fresh checkout must join that shard's group —
                    // ordered against the checkout and the commit — not
                    // the auxiliary group; names landing on two different
                    // shards make it cross-shard, which goes sequential.
                    Target::Sql(sql) => router.sql_shard(sql).and_then(|base| {
                        let mut resolved = base;
                        for name in sql_idents(sql) {
                            let state = name_state(&overlay, router, &name, StagedKind::Table);
                            if let NameState::Held { shard, .. } = state {
                                if resolved == ShardKey::Aux {
                                    resolved = shard;
                                } else if resolved != shard {
                                    return None;
                                }
                            }
                        }
                        Some(resolved)
                    }),
                },
            };

            // Consumption marks and the scan-coalescing counts.
            match request {
                Request::Checkout(c) if !c.versions.is_empty() => {
                    *scan_counts
                        .entry((c.cvd.to_ascii_lowercase(), c.versions.clone()))
                        .or_insert(0) += 1;
                }
                Request::CheckoutCsv(c) if !c.versions.is_empty() => {
                    *scan_counts
                        .entry((c.cvd.to_ascii_lowercase(), c.versions.clone()))
                        .or_insert(0) += 1;
                }
                Request::Commit(c) => {
                    consume(&mut overlay, &overlay_key(&c.table, StagedKind::Table));
                }
                Request::Discard(d) => {
                    consume(&mut overlay, &overlay_key(&d.table, StagedKind::Table));
                }
                Request::CommitCsv(c) => {
                    consume(&mut overlay, &overlay_key(&c.path, StagedKind::Csv));
                }
                _ => {}
            }

            match route {
                Some(key) => {
                    // A read joins its shard's read-only group only while
                    // no write to that shard is open: a read *after* a
                    // write must observe it, so it rides in the write
                    // group instead.
                    let write_open = open.iter().any(|(k, ro, _)| *k == key && !*ro);
                    let read_only = is_read_only(request) && !write_open;
                    match open
                        .iter_mut()
                        .find(|(k, ro, _)| *k == key && *ro == read_only)
                    {
                        Some((_, _, indices)) => indices.push(i),
                        None => open.push((key, read_only, vec![i])),
                    }
                }
                None => {
                    flush(&mut open, &mut steps);
                    steps.push(Step::Sequential(i));
                }
            }
        }
        flush(&mut open, &mut steps);
        BatchPlan { steps, scan_counts }
    }

    /// The execution schedule. Every request index appears in exactly one
    /// step.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// How many checkouts in the batch materialize exactly this
    /// (CVD, version list) pair — the hint behind the shared-scan fast
    /// path: a count above one means the version rows are worth caching.
    pub fn shared_scans(&self, cvd: &str, versions: &[Vid]) -> usize {
        self.scan_counts
            .get(&(cvd.to_ascii_lowercase(), versions.to_vec()))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Checkout, Commit, CreateUser, Discard, Log, Run};

    /// A router over a fixed CVD list: staged names resolve to nothing,
    /// SQL routes to the auxiliary shard.
    struct FixedRouter(Vec<&'static str>);

    impl BatchRouter for FixedRouter {
        fn has_cvd(&self, name: &str) -> bool {
            self.0.iter().any(|c| c.eq_ignore_ascii_case(name))
        }
        fn staged_shard(&self, _name: &str, _kind: StagedKind) -> Option<ShardKey> {
            None
        }
        fn sql_shard(&self, _sql: &str) -> Option<ShardKey> {
            Some(ShardKey::Aux)
        }
    }

    fn cvd_key(name: &str) -> ShardKey {
        ShardKey::Cvd(name.to_string())
    }

    #[test]
    fn partitions_by_shard_and_preserves_submission_order_within_one() {
        let requests: Vec<Request> = vec![
            Checkout::of("a").version(1u64).into_table("t1").into(),
            Checkout::of("b").version(1u64).into_table("t2").into(),
            Checkout::of("a").version(1u64).into_table("t3").into(),
            Commit::table("t1").message("m").into(),
            Log::of("b").into(),
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a", "b"]));
        assert_eq!(
            plan.steps(),
            &[
                Step::Shard {
                    key: cvd_key("a"),
                    // The commit of t1 follows its checkout into shard a.
                    indices: vec![0, 2, 3],
                    read_only: false,
                },
                Step::Shard {
                    key: cvd_key("b"),
                    indices: vec![1, 4],
                    read_only: false,
                },
            ]
        );
        // Three checkouts of (cvd, v1) split 2/1 across the CVDs.
        assert_eq!(plan.shared_scans("a", &[Vid(1)]), 2);
        assert_eq!(plan.shared_scans("B", &[Vid(1)]), 1);
        assert_eq!(plan.shared_scans("a", &[Vid(2)]), 0);
    }

    #[test]
    fn catalog_requests_are_barriers() {
        let requests: Vec<Request> = vec![
            Checkout::of("a").version(1u64).into_table("t1").into(),
            CreateUser::named("u").into(),
            Checkout::of("a").version(1u64).into_table("t2").into(),
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a"]));
        assert_eq!(
            plan.steps(),
            &[
                Step::Shard {
                    key: cvd_key("a"),
                    indices: vec![0],
                    read_only: false,
                },
                Step::Sequential(1),
                Step::Shard {
                    key: cvd_key("a"),
                    indices: vec![2],
                    read_only: false,
                },
            ]
        );
    }

    #[test]
    fn unknown_cvds_and_unresolved_staged_names_fall_back_to_sequential() {
        let requests: Vec<Request> = vec![
            Checkout::of("nope").version(1u64).into_table("t").into(),
            Commit::table("never_staged").into(),
            Run::sql("SELECT 1").into(),
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a"]));
        assert_eq!(
            plan.steps(),
            &[
                Step::Sequential(0),
                Step::Sequential(1),
                Step::Shard {
                    key: ShardKey::Aux,
                    indices: vec![2],
                    read_only: true,
                },
            ]
        );
    }

    #[test]
    fn in_batch_consumption_sends_reuse_to_the_sequential_path() {
        // discard consumes t; the second commit of t can no longer be
        // routed from plan-time knowledge, so it goes sequential (where
        // the ordinary staged-index resolution gives the right error).
        let requests: Vec<Request> = vec![
            Checkout::of("a").version(1u64).into_table("t").into(),
            Discard::table("t").into(),
            Commit::table("t").message("m").into(),
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a"]));
        assert_eq!(
            plan.steps(),
            &[
                Step::Shard {
                    key: cvd_key("a"),
                    indices: vec![0, 1],
                    read_only: false,
                },
                Step::Sequential(2),
            ]
        );
    }

    #[test]
    fn same_name_checkouts_inside_a_batch_serialize_through_the_sequential_path() {
        // The second checkout of `t` succeeds only if the first one fails
        // at runtime — unknowable at plan time, so it (and the commit of
        // the now-uncertain name) must go sequential, *after* the first
        // checkout's flushed sub-batch.
        let requests: Vec<Request> = vec![
            Checkout::of("a").version(1u64).into_table("t").into(),
            Checkout::of("b").version(1u64).into_table("t").into(),
            Commit::table("t").message("m").into(),
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a", "b"]));
        assert_eq!(
            plan.steps(),
            &[
                Step::Shard {
                    key: cvd_key("a"),
                    indices: vec![0],
                    read_only: false,
                },
                Step::Sequential(1),
                Step::Sequential(2),
            ]
        );
    }

    #[test]
    fn checkouts_into_an_already_staged_name_do_not_reroute_its_commit() {
        /// `t` is staged in CVD `left` before the batch begins.
        struct StagedRouter;
        impl BatchRouter for StagedRouter {
            fn has_cvd(&self, name: &str) -> bool {
                ["left", "right"].contains(&name)
            }
            fn staged_shard(&self, name: &str, _kind: StagedKind) -> Option<ShardKey> {
                (name == "t").then(|| cvd_key("left"))
            }
            fn sql_shard(&self, _sql: &str) -> Option<ShardKey> {
                Some(ShardKey::Aux)
            }
        }
        // The checkout into the taken name deterministically fails in its
        // own shard; the commit keeps resolving to the real holder.
        let requests: Vec<Request> = vec![
            Checkout::of("right").version(1u64).into_table("t").into(),
            Commit::table("t").message("m").into(),
        ];
        let plan = BatchPlan::build(&requests, &StagedRouter);
        assert_eq!(
            plan.steps(),
            &[
                Step::Shard {
                    key: cvd_key("right"),
                    indices: vec![0],
                    read_only: false,
                },
                Step::Shard {
                    key: cvd_key("left"),
                    indices: vec![1],
                    read_only: false,
                },
            ]
        );
    }

    #[test]
    fn reads_before_a_shard_write_split_into_a_read_only_step() {
        let requests: Vec<Request> = vec![
            Log::of("a").into(),                                    // read, shard a
            Checkout::of("a").version(1u64).into_table("t").into(), // write, shard a
            Log::of("a").into(),                                    // read AFTER the write
            Run::sql("SELECT 1").into(),                            // read, aux
            Run::sql("INSERT INTO s VALUES (1)").into(),            // write, aux
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a"]));
        assert_eq!(
            plan.steps(),
            &[
                // The leading read splits off; the trailing read rides in
                // the write group to keep read-your-writes.
                Step::Shard {
                    key: cvd_key("a"),
                    indices: vec![0],
                    read_only: true,
                },
                Step::Shard {
                    key: cvd_key("a"),
                    indices: vec![1, 2],
                    read_only: false,
                },
                Step::Shard {
                    key: ShardKey::Aux,
                    indices: vec![3],
                    read_only: true,
                },
                Step::Shard {
                    key: ShardKey::Aux,
                    indices: vec![4],
                    read_only: false,
                },
            ]
        );
    }

    #[test]
    fn every_index_is_scheduled_exactly_once() {
        let requests: Vec<Request> = vec![
            Checkout::of("a").version(1u64).into_table("t1").into(),
            Run::sql("SELECT 1").into(),
            CreateUser::named("u").into(),
            Checkout::of("b").version(2u64).into_table("t2").into(),
            Commit::table("t2").message("m").into(),
        ];
        let plan = BatchPlan::build(&requests, &FixedRouter(vec!["a", "b"]));
        let mut seen: Vec<usize> = plan
            .steps()
            .iter()
            .flat_map(|s| match s {
                Step::Sequential(i) => vec![*i],
                Step::Shard { indices, .. } => indices.clone(),
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
