//! Version and record identifiers.
//!
//! `vid`s are user-visible, 1-based, and dense per CVD (version `v1` is the
//! initial commit). `rid`s identify immutable records inside a CVD and are
//! **not** exposed to end users (Section 2.1); they appear as a hidden
//! leading column of materialized checkout tables so that commit can diff
//! against parent versions.

use std::fmt;

/// Version id (1-based, dense within a CVD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vid(pub u64);

/// Record id (dense within a CVD, never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid(pub u64);

impl Vid {
    /// Dense 0-based index of this version (for `Vec` storage and the
    /// partition crate's `VersionId`).
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Inverse of [`Vid::index`].
    pub fn from_index(i: usize) -> Vid {
        Vid(i as u64 + 1)
    }
}

impl From<u64> for Vid {
    fn from(v: u64) -> Vid {
        Vid(v)
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_index_roundtrip() {
        for i in 0..5 {
            assert_eq!(Vid::from_index(i).index(), i);
        }
        assert_eq!(Vid(1).index(), 0);
        assert_eq!(Vid::from_index(0), Vid(1));
    }

    #[test]
    fn display() {
        assert_eq!(Vid(3).to_string(), "v3");
        assert_eq!(Rid(7).to_string(), "r7");
    }

    #[test]
    fn ordering() {
        assert!(Vid(1) < Vid(2));
        assert!(Rid(10) > Rid(2));
    }
}
