//! Multi-user sessions over one shared OrpheusDB instance, with
//! **two-level locking**: a catalog lock for instance-wide state plus one
//! lock per CVD.
//!
//! The paper's deployment has many data scientists talking to one
//! PostgreSQL through the middleware; each user sees their own identity
//! (for the access controller's only-the-owner-may-touch-a-checkout rule,
//! Section 2.3) while commits and checkouts interleave safely. Earlier
//! revisions guarded the whole instance with a single `RwLock<OrpheusDB>`,
//! which made commits to *different* CVDs serialize behind each other.
//! This module removes that bottleneck:
//!
//! * [`SharedOrpheusDB`] splits the instance into **shards** — one
//!   single-CVD [`OrpheusDB`] per CVD (its backing tables, version graph,
//!   and staged artifacts), plus an *auxiliary* shard for tables that
//!   belong to no CVD. Each shard sits behind its own lock.
//! * The **catalog lock** guards instance-wide state: the user registry,
//!   the CVD registry (create/drop), the instance configuration, and the
//!   staged-name index that maps checkout tables and exported CSVs to the
//!   CVD they came from.
//! * [`ConcurrentExecutor`] routes every [`Request`] to the right lock via
//!   [`Request::kind`] + [`Request::target`]: catalog requests take the
//!   catalog lock, CVD-addressed requests take one CVD's lock, staged
//!   requests resolve through the index, and SQL is analyzed for the CVDs
//!   it touches. Commits, checkouts, and diffs against different CVDs run
//!   in parallel; writers to the same CVD still serialize.
//! * [`Session`] binds a user identity to an executor. Identity-swap
//!   semantics are per-request, exactly as before: the session logs its
//!   user into the shard for the duration of one operation and restores
//!   the previous identity afterwards, so interleaved sessions can never
//!   observe or act under each other's identity.
//!
//! # MVCC snapshot reads
//!
//! Every shard additionally publishes an immutable **snapshot** of its
//! last acknowledged state through an epoch-swap cell
//! ([`parking_lot::ArcSwap`]): a write guard republishes the shard on
//! release, and read-only requests — checkouts, diffs, `version_rows`,
//! `log`, single-CVD `SELECT`s — clone the snapshot instead of taking the
//! shard lock. Cloning is cheap because row storage is copy-on-write at
//! table granularity and per-version rid lists are `Arc`-shared. A
//! checkout materializes its table against such a clone and **parks** the
//! result under the shard's pending list (`Shard::pending`, private to
//! this module); the next writer adopts parked tables
//! into the shard proper on lock acquisition. The net effect is the
//! paper's reading of checkouts as reads of immutable committed versions:
//! a checkout or SELECT never waits on a commit in flight, it simply
//! observes the epoch published by the last *completed* writer. See
//! `docs/CONCURRENCY.md` for the full contract.
//!
//! ```
//! use orpheus_core::{OrpheusDB, SharedOrpheusDB, Vid};
//! use orpheus_engine::{Column, DataType, Schema};
//! # fn main() -> orpheus_core::Result<()> {
//! let mut odb = OrpheusDB::new();
//! let schema = Schema::new(vec![Column::new("k", DataType::Int)])
//!     .with_primary_key(&["k"])
//!     .unwrap();
//! odb.init_cvd("data", schema, vec![vec![1.into()], vec![2.into()]], None)?;
//!
//! let shared = SharedOrpheusDB::new(odb);
//! let alice = shared.session("alice")?;
//! // All of these are snapshot reads: they complete even while another
//! // session's commit holds the `data` shard's write lock.
//! alice.checkout("data", &[Vid(1)], "work")?;
//! assert_eq!(alice.version_rows("data", Vid(1))?.len(), 2);
//! let d = alice.diff("data", Vid(1), Vid(1))?;
//! assert!(d.only_in_first.is_empty() && d.only_in_second.is_empty());
//! alice.discard("work")?;
//! # Ok(())
//! # }
//! ```
//!
//! # Lock order
//!
//! **Catalog before CVD, and multiple CVD locks only in sorted key order
//! with the auxiliary shard last** (the instance-wide quiesce paths do so
//! holding the catalog lock exclusively; cross-CVD write transactions do
//! so holding it shared). Internal single-shard paths release the catalog
//! lock before blocking on a CVD lock, so a stalled commit on one CVD
//! cannot back up into the catalog. A thread-local counter enforces the
//! order in debug builds: acquiring the catalog lock while holding any
//! CVD lock — or reentering the catalog lock — panics loudly instead of
//! deadlocking silently (see [`SharedOrpheusDB::read`] /
//! [`SharedOrpheusDB::write`]).
//!
//! # Cross-CVD SQL
//!
//! A statement that touches a single CVD (the overwhelmingly common case)
//! runs under that CVD's lock alone. A read-only `SELECT` spanning
//! several CVDs runs against a merged snapshot of the involved shards. A
//! *writing* statement spanning CVDs runs as a **cross-CVD write
//! transaction**: the involved shard locks are taken in sorted key order
//! (auxiliary shard last) under a shared catalog lock, the shards are
//! merged, the statement executes once against the merged state, and the
//! shards are split back — atomically with respect to every other path,
//! which always sees either all of the statement's effects or none.
//!
//! # Sub-batch execution
//!
//! [`ConcurrentExecutor::execute_batch`] and the async executor
//! ([`crate::async_exec`]) share one per-shard sub-batch engine,
//! `ConcurrentExecutor::run_shard_items` (crate-internal): reservations for every
//! checkout of the sub-batch in one catalog write, the requests under one
//! shard-lock acquisition (identity-swapped per request owner, so one
//! sub-batch may carry work from several sessions), and the staged-index
//! bookkeeping in one closing catalog write. A panic inside a request is
//! contained there: the panicking request and the rest of its sub-batch
//! fail with [`CoreError::WorkerPanicked`], reservations are released, and
//! the shard itself stays usable (the shim locks do not poison).

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

use parking_lot::{ArcSwap, Mutex, RwLock};

use orpheus_engine::sql::lexer::{tokenize, Token};
use orpheus_engine::{EngineError, QueryResult, Table, Value};

use crate::access::AccessController;
use crate::batch::{BatchPlan, BatchRouter, ShardKey, Step};
use crate::db::{OrpheusConfig, OrpheusDB, VersionDiff};
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::partition_store::OptimizeReport;
use crate::request::{Executor, Request, Target};
use crate::response::Response;
use crate::staging::{StagedEntry, StagedKind};
use crate::wal::{WalOp, WalSink};

// ---------------------------------------------------------------------------
// Lock-order enforcement.
// ---------------------------------------------------------------------------

thread_local! {
    /// `(catalog locks held, CVD locks held)` by this thread.
    static LOCKS_HELD: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

/// RAII record of one lock acquisition, maintaining the thread-local
/// counters that make lock-order violations panic in debug builds.
struct LockToken {
    catalog: bool,
}

impl LockToken {
    /// Note a catalog acquisition. Panics (debug builds) when the thread
    /// already holds a CVD lock (order is catalog → CVD) or the catalog
    /// lock itself (it is not reentrant).
    fn catalog() -> LockToken {
        let (catalog, shard) = LOCKS_HELD.with(Cell::get);
        debug_assert_eq!(
            shard, 0,
            "lock-order violation: the catalog lock must be acquired before any \
             CVD lock (catalog → CVD), but this thread already holds {shard} CVD lock(s)"
        );
        debug_assert_eq!(
            catalog, 0,
            "lock-order violation: the catalog lock is not reentrant — do not call \
             SharedOrpheusDB or Session operations from inside a `write` closure"
        );
        LOCKS_HELD.with(|c| c.set((catalog + 1, shard)));
        LockToken { catalog: true }
    }

    /// Note a CVD (shard) acquisition. Multiple shard locks are only ever
    /// held by snapshot paths, which acquire them in sorted key order
    /// under an exclusive catalog lock.
    fn shard() -> LockToken {
        let (catalog, shard) = LOCKS_HELD.with(Cell::get);
        LOCKS_HELD.with(|c| c.set((catalog, shard + 1)));
        LockToken { catalog: false }
    }
}

impl Drop for LockToken {
    fn drop(&mut self) {
        LOCKS_HELD.with(|c| {
            let (catalog, shard) = c.get();
            if self.catalog {
                c.set((catalog - 1, shard));
            } else {
                c.set((catalog, shard - 1));
            }
        });
    }
}

/// A lock guard bundled with its [`LockToken`].
struct Held<G> {
    guard: G,
    _token: LockToken,
}

impl<G: Deref> Deref for Held<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Held<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.guard
    }
}

// ---------------------------------------------------------------------------
// Shards and the catalog.
// ---------------------------------------------------------------------------

/// A checkout that completed against a shard's MVCC snapshot instead of
/// under its write lock: the materialized table (`None` for CSV exports,
/// which stage provenance only) plus its staging entry. Parked under
/// [`Shard::pending`] until the next writer adopts it into the shard
/// proper; until then, snapshot loads overlay it so the checkout is
/// immediately visible to its owner.
#[derive(Debug, Clone)]
struct ParkedCheckout {
    table: Option<Table>,
    entry: StagedEntry,
}

/// One CVD's state behind its own lock: a single-CVD [`OrpheusDB`] holding
/// the CVD's backing tables, version graph, and staged artifacts — plus
/// the shard's published MVCC snapshot (see the module docs).
#[derive(Debug)]
struct Shard {
    /// Set when the shard has been replaced (instance-wide `write`) or its
    /// CVD dropped. Operations that acquired the shard `Arc` before the
    /// replacement re-resolve through the catalog instead of mutating
    /// orphaned state.
    retired: AtomicBool,
    db: RwLock<OrpheusDB>,
    /// The shard's last acknowledged state, republished by every
    /// [`ShardWriteGuard`] on release. Read-only paths clone this instead
    /// of taking `db`'s lock, so they never wait on a writer.
    snapshot: ArcSwap<OrpheusDB>,
    /// Checkouts materialized against `snapshot` and awaiting adoption by
    /// the next writer. Invariant: a parked entry is visible in exactly
    /// one place — here *or* (after adoption) in the snapshot — never
    /// both and never neither; [`Shard::load_snapshot`] and
    /// [`Shard::adopt_pending`] serialize on this mutex to keep it so.
    pending: Mutex<Vec<ParkedCheckout>>,
}

impl Shard {
    fn new(db: OrpheusDB) -> Arc<Shard> {
        Arc::new(Shard {
            retired: AtomicBool::new(false),
            snapshot: ArcSwap::new(Arc::new(db.clone())),
            pending: Mutex::new(Vec::new()),
            db: RwLock::new(db),
        })
    }

    fn retire(&self) {
        self.retired.store(true, Ordering::SeqCst);
    }

    fn is_retired(&self) -> bool {
        self.retired.load(Ordering::SeqCst)
    }

    fn read(&self) -> Held<impl Deref<Target = OrpheusDB> + '_> {
        let token = LockToken::shard();
        Held {
            guard: self.db.read(),
            _token: token,
        }
    }

    /// Acquire the shard's write lock, adopting any parked checkouts
    /// first. The returned guard republishes the snapshot when dropped,
    /// so everything a writer acknowledged is visible to subsequent
    /// snapshot reads.
    fn write(&self) -> ShardWriteGuard<'_> {
        let token = LockToken::shard();
        let mut guard = self.db.write();
        if !self.is_retired() {
            self.adopt_pending(&mut guard, true);
        }
        ShardWriteGuard {
            shard: self,
            guard,
            _token: token,
        }
    }

    /// Move every parked checkout into `db`: assign its real logical
    /// timestamp, add the materialized table to the engine, register the
    /// staging entry. Holds the pending mutex across the apply *and* the
    /// snapshot republish (`publish`), so a concurrent
    /// [`Shard::load_snapshot`] — which takes the same mutex before
    /// loading the epoch — sees each parked entry in exactly one place.
    fn adopt_pending(&self, db: &mut OrpheusDB, publish: bool) {
        let mut pending = self.pending.lock();
        if pending.is_empty() {
            return;
        }
        for mut parked in pending.drain(..) {
            db.clock += 1;
            parked.entry.created_at = db.clock;
            if let Some(table) = parked.table {
                db.engine
                    .add_table(table)
                    .expect("reserved checkout names are globally unique across shards");
            }
            db.staging
                .register(parked.entry)
                .expect("reserved checkout names are globally unique across shards");
        }
        if publish {
            self.snapshot.store(Arc::new(db.clone()));
        }
    }

    /// One consistent clone of this shard's MVCC snapshot: the last
    /// published epoch overlaid with any still-parked checkouts. No shard
    /// lock is taken, so a commit holding the write lock never delays
    /// this. The pending mutex is acquired *before* the epoch load so an
    /// adoption (which drains pending and republishes under that same
    /// mutex) can never hide a parked entry from this load.
    fn load_snapshot(&self) -> OrpheusDB {
        let (epoch, parked) = {
            let pending = self.pending.lock();
            (self.snapshot.load(), pending.clone())
        };
        let mut db = OrpheusDB::clone(&epoch);
        for parked in parked {
            if let Some(table) = parked.table {
                db.engine
                    .add_table(table)
                    .expect("reserved checkout names are globally unique across shards");
            }
            db.staging
                .register(parked.entry)
                .expect("reserved checkout names are globally unique across shards");
        }
        db
    }
}

/// Write guard of a [`Shard`] that maintains the MVCC snapshot: parked
/// checkouts were adopted on acquisition (see [`Shard::write`]), and the
/// new epoch is published on release — cheap thanks to copy-on-write row
/// storage and `Arc`-shared rid lists.
struct ShardWriteGuard<'a> {
    shard: &'a Shard,
    guard: std::sync::RwLockWriteGuard<'a, OrpheusDB>,
    _token: LockToken,
}

impl Deref for ShardWriteGuard<'_> {
    type Target = OrpheusDB;
    fn deref(&self) -> &OrpheusDB {
        &self.guard
    }
}

impl DerefMut for ShardWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut OrpheusDB {
        &mut self.guard
    }
}

impl Drop for ShardWriteGuard<'_> {
    fn drop(&mut self) {
        // A retired shard is unreachable (quiesced into a rebuild or
        // dropped); publishing its emptied state would only confuse a
        // racing snapshot reader's retire re-check.
        if !self.shard.is_retired() {
            self.shard
                .snapshot
                .store(Arc::new(OrpheusDB::clone(&self.guard)));
        }
    }
}

/// Key of the auxiliary shard in the staged-name index (tables that were
/// staged for a CVD that no longer exists live in the auxiliary shard).
const AUX_KEY: &str = "";

/// Instance-wide state behind the catalog lock.
#[derive(Debug)]
struct Catalog {
    /// User registry and the *instance-level* identity (sessions carry
    /// their own identities; this is what non-session tooling sees).
    access: AccessController,
    config: OrpheusConfig,
    /// One shard per CVD, keyed by lower-cased CVD name. `BTreeMap` so
    /// snapshot paths acquire shard locks in a deterministic sorted order.
    shards: BTreeMap<String, Arc<Shard>>,
    /// Tables that belong to no CVD (side tables created through plain
    /// SQL, orphaned staged artifacts).
    aux: Arc<Shard>,
    /// Staged artifact name → owning CVD key ([`AUX_KEY`] for the
    /// auxiliary shard). The routing index for `commit`/`discard` and the
    /// global uniqueness check for checkout target names.
    staged: HashMap<String, String>,
    /// Write-ahead log sink, shared with every shard. Catalog-level
    /// mutations (CVD create/drop, user creation) append under the
    /// catalog write lock; shard-level mutations append inside their
    /// shard's write lock via the shard instance's own handle.
    wal: Option<WalSink>,
}

impl Catalog {
    /// Refuse catalog-level mutations while the WAL sink is degraded —
    /// checked **before** any catalog state moves, so a refused drop or
    /// user creation leaves memory exactly where disk left it (the same
    /// contract [`crate::OrpheusDB`] enforces per shard).
    fn ensure_writable(&self) -> Result<()> {
        if let Some(why) = self.wal.as_ref().and_then(|wal| wal.degraded()) {
            return Err(CoreError::Degraded(why));
        }
        Ok(())
    }

    /// Index key for a staged artifact (tables case-insensitive, CSV paths
    /// case-sensitive — mirroring [`crate::staging::StagingArea`]).
    fn staged_key(name: &str, kind: StagedKind) -> String {
        match kind {
            StagedKind::Table => format!("t:{}", name.to_ascii_lowercase()),
            StagedKind::Csv => format!("f:{name}"),
        }
    }

    /// Split a whole instance into per-CVD shards plus the auxiliary
    /// shard, and build the staged-name index.
    fn from_instance(mut odb: OrpheusDB) -> Result<Catalog> {
        let mut names: Vec<String> = odb.cvds.keys().cloned().collect();
        names.sort();
        let mut shards = BTreeMap::new();
        let mut staged = HashMap::new();
        for name in names {
            let shard_db = odb.detach_cvd(&name)?;
            for entry in shard_db.staged() {
                staged.insert(Catalog::staged_key(&entry.name, entry.kind), name.clone());
            }
            shards.insert(name, Shard::new(shard_db));
        }
        // Whatever is left — side tables, orphaned staged artifacts — is
        // the auxiliary shard.
        for entry in odb.staged() {
            staged.insert(
                Catalog::staged_key(&entry.name, entry.kind),
                AUX_KEY.to_string(),
            );
        }
        let access = odb.access.clone();
        let config = odb.config.clone();
        let wal = odb.wal.clone();
        Ok(Catalog {
            access,
            config,
            shards,
            aux: Shard::new(odb),
            staged,
            wal,
        })
    }

    fn shard(&self, cvd: &str) -> Result<Arc<Shard>> {
        self.shards
            .get(&cvd.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| CoreError::CvdNotFound(cvd.to_string()))
    }

    /// Resolve a staged-index value ([`AUX_KEY`] → auxiliary shard).
    fn shard_by_key(&self, key: &str) -> Result<Arc<Shard>> {
        if key == AUX_KEY {
            Ok(Arc::clone(&self.aux))
        } else {
            self.shard(key)
        }
    }

    /// The CVD whose `<cvd>__` table-name prefix claims `ident`, longest
    /// prefix winning (so `a__b`'s tables are never claimed by `a`).
    fn claim_by_prefix(&self, ident: &str) -> Option<String> {
        self.shards
            .keys()
            .filter(|key| {
                ident.len() > key.len() + 2
                    && ident.starts_with(key.as_str())
                    && ident[key.len()..].starts_with("__")
            })
            .max_by_key(|key| key.len())
            .cloned()
    }

    /// Reserve a staged name for a checkout targeting `cvd` — the catalog
    /// half of every checkout path, keeping staged names globally unique
    /// across shards without holding the catalog lock during the
    /// (expensive) materialization. Returns the staged-index key
    /// inserted; the caller must remove it again if the checkout fails.
    fn reserve(&mut self, cvd: &str, kind: StagedKind, name: &str) -> Result<String> {
        // CVD existence first (checkout against an unknown CVD is a
        // CvdNotFound error even when the name also collides).
        self.shard(cvd)?;
        let cvd_key = cvd.to_ascii_lowercase();
        let key = Catalog::staged_key(name, kind);
        if self.staged.contains_key(&key) {
            return Err(CoreError::Invalid(format!("{name} is already staged")));
        }
        if kind == StagedKind::Table {
            // Names must stay unique across *all* shards, or merging
            // shards into a snapshot would collide. The target shard's
            // own checkout catches collisions with tables that exist
            // right now; here we close the cross-shard cases (another
            // CVD's backing-table namespace, side tables in the auxiliary
            // shard) — and *every* CVD's `__` namespace including the
            // target's own, because a parked checkout adopted later must
            // never collide with backing tables a writer or the partition
            // optimizer created in the meantime.
            let lower = name.to_ascii_lowercase();
            if let Some(owner) = self.claim_by_prefix(&lower) {
                return Err(CoreError::Invalid(format!(
                    "table name {name} lies in CVD {owner}'s backing-table \
                     namespace ({owner}__*)"
                )));
            }
            if self.aux.read().engine.has_table(&lower) {
                return Err(CoreError::Invalid(format!("table {name} already exists")));
            }
        }
        self.staged.insert(key.clone(), cvd_key);
        Ok(key)
    }

    /// Merged read snapshot of the whole instance, built from every
    /// shard's published MVCC snapshot — no shard locks, so a commit in
    /// flight never delays it. Each shard's contribution is its last
    /// *acknowledged* state (individually consistent); a writer still
    /// inside its critical section is simply not visible yet.
    fn merged_snapshot(&self) -> Result<OrpheusDB> {
        let mut merged = self.aux.load_snapshot();
        merged.access = self.access.clone();
        merged.config = self.config.clone();
        for shard in self.shards.values() {
            merged.absorb(shard.load_snapshot())?;
        }
        Ok(merged)
    }

    /// Merged snapshot of a *subset* of shards (plus the auxiliary shard),
    /// for read-only SQL spanning several CVDs. Snapshot-based like
    /// [`Catalog::merged_snapshot`].
    fn merged_subset(&self, keys: &BTreeSet<String>) -> Result<OrpheusDB> {
        let arcs: Vec<Arc<Shard>> = keys
            .iter()
            .filter(|k| k.as_str() != AUX_KEY)
            .map(|k| self.shard_by_key(k))
            .collect::<Result<_>>()?;
        let mut merged = self.aux.load_snapshot();
        merged.access = self.access.clone();
        merged.config = self.config.clone();
        for shard in &arcs {
            merged.absorb(shard.load_snapshot())?;
        }
        Ok(merged)
    }

    /// Quiesce every shard (write locks in sorted order), retire them, and
    /// move all state back into one instance. Caller holds the catalog
    /// lock exclusively and rebuilds the catalog afterwards.
    fn take_all(&mut self) -> Result<OrpheusDB> {
        let arcs: Vec<Arc<Shard>> = self.shards.values().cloned().collect();
        let mut guards: Vec<_> = arcs.iter().map(|s| s.write()).collect();
        let mut aux_guard = self.aux.write();
        // Retire *before* the final pending drain below: a checkout that
        // parks after the drain observes `retired` on its post-park
        // re-check, finds its entry still parked, removes it, and retries
        // against the rebuilt catalog (see `park_checkout_reserved`); a
        // checkout that parked before it is adopted here and carried into
        // the merge. Retiring while still holding the write guards also
        // keeps the original guarantee: an operation blocked on the shard
        // lock observes `retired` the moment it gets through, instead of
        // running against the emptied shard.
        for arc in &arcs {
            arc.retire();
        }
        self.aux.retire();
        for (arc, guard) in arcs.iter().zip(guards.iter_mut()) {
            arc.adopt_pending(guard, false);
        }
        self.aux.adopt_pending(&mut aux_guard, false);
        let mut merged = std::mem::take(&mut *aux_guard);
        merged.access = self.access.clone();
        merged.config = self.config.clone();
        for guard in guards.iter_mut() {
            merged.absorb(std::mem::take(&mut **guard))?;
        }
        drop(aux_guard);
        drop(guards);
        Ok(merged)
    }
}

// ---------------------------------------------------------------------------
// The shared instance.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Inner {
    catalog: RwLock<Catalog>,
}

impl Inner {
    fn catalog_read(&self) -> Held<impl Deref<Target = Catalog> + '_> {
        let token = LockToken::catalog();
        Held {
            guard: self.catalog.read(),
            _token: token,
        }
    }

    fn catalog_write(&self) -> Held<impl DerefMut<Target = Catalog> + '_> {
        let token = LockToken::catalog();
        Held {
            guard: self.catalog.write(),
            _token: token,
        }
    }
}

/// A thread-safe, shareable OrpheusDB instance with per-CVD locking (see
/// the module docs for the locking model).
#[derive(Debug, Clone)]
pub struct SharedOrpheusDB {
    inner: Arc<Inner>,
}

impl Default for SharedOrpheusDB {
    fn default() -> SharedOrpheusDB {
        SharedOrpheusDB::new(OrpheusDB::default())
    }
}

impl SharedOrpheusDB {
    /// Wrap an instance for shared use, splitting it into one shard per
    /// CVD so operations on different CVDs execute in parallel.
    pub fn new(odb: OrpheusDB) -> SharedOrpheusDB {
        let catalog = Catalog::from_instance(odb)
            .expect("splitting an instance into per-CVD shards cannot collide");
        SharedOrpheusDB {
            inner: Arc::new(Inner {
                catalog: RwLock::new(catalog),
            }),
        }
    }

    /// Open a session for `user`, registering the account if it does not
    /// exist yet (the `create_user` + `config` flow in one step).
    pub fn session(&self, user: &str) -> Result<Session> {
        Ok(Session {
            exec: self.executor(user)?,
        })
    }

    /// A bare [`ConcurrentExecutor`] for `user` — the routing layer behind
    /// [`Session`], registering the account if needed.
    pub fn executor(&self, user: &str) -> Result<ConcurrentExecutor> {
        {
            let mut cat = self.inner.catalog_write();
            cat.access.ensure_user(user)?;
        }
        Ok(ConcurrentExecutor {
            inner: Arc::clone(&self.inner),
            user: user.to_string(),
        })
    }

    /// Run a closure against a consistent read snapshot of the instance
    /// (administrative escape hatch; sessions are the normal path).
    ///
    /// Lock order: takes the catalog lock, then every CVD lock in sorted
    /// order — all released *before* the closure runs, so the closure sees
    /// an immutable merged copy and may freely call back into the shared
    /// instance. The cost is proportional to the instance size; do not
    /// put this on a hot path.
    pub fn read<T>(&self, f: impl FnOnce(&OrpheusDB) -> T) -> T {
        let merged = {
            let cat = self.inner.catalog_read();
            cat.merged_snapshot()
                .expect("disjoint shards merge without collisions")
        };
        f(&merged)
    }

    /// Run a closure with exclusive access to the whole instance
    /// (administrative escape hatch; sessions are the normal path).
    ///
    /// Lock order: catalog lock first, then every CVD lock in sorted key
    /// order; the shards are quiesced, merged into one instance, handed to
    /// the closure, and re-split afterwards. The catalog lock is held for
    /// the closure's whole duration — calling any `SharedOrpheusDB` or
    /// [`Session`] operation from inside the closure is a lock-order
    /// violation and panics in debug builds (it would deadlock in
    /// release).
    pub fn write<T>(&self, f: impl FnOnce(&mut OrpheusDB) -> T) -> T {
        let mut cat = self.inner.catalog_write();
        let mut merged = cat
            .take_all()
            .expect("disjoint shards merge without collisions");
        // Index entries with no matching staged artifact at quiesce time
        // are in-flight *reservations*: a checkout resolved its shard
        // before this rebuild and will materialize right after it. They
        // must survive the rebuild (whose index comes from shard staging
        // alone), or the finished checkout would be unroutable and its
        // name leaked forever. Materialized entries are NOT carried — the
        // rebuilt index reflects whatever the closure did to them.
        let materialized: std::collections::HashSet<String> = merged
            .staged()
            .iter()
            .map(|e| Catalog::staged_key(&e.name, e.kind))
            .collect();
        let reservations: Vec<(String, String)> = cat
            .staged
            .iter()
            .filter(|(key, _)| !materialized.contains(*key))
            .map(|(key, cvd)| (key.clone(), cvd.clone()))
            .collect();
        let out = f(&mut merged);
        *cat = Catalog::from_instance(merged)
            .expect("splitting an instance into per-CVD shards cannot collide");
        for (key, cvd) in reservations {
            if !cat.staged.contains_key(&key) && (cvd == AUX_KEY || cat.shards.contains_key(&cvd)) {
                cat.staged.insert(key, cvd);
            }
        }
        out
    }

    /// Build a [`BatchPlan`] for `requests` under one catalog read — the
    /// routing step the async executor's coordinator runs per chunk
    /// ([`crate::async_exec::AsyncExecutor`]).
    pub(crate) fn plan_batch(&self, requests: &[Request]) -> BatchPlan {
        let cat = self.inner.catalog_read();
        BatchPlan::build(requests, &CatalogRouter { catalog: &cat })
    }

    /// The instance-level identity (what non-session tooling operates as).
    pub(crate) fn instance_user(&self) -> String {
        let cat = self.inner.catalog_read();
        cat.access.whoami().to_string()
    }

    /// A [`ConcurrentExecutor`] without user registration — for internal
    /// plumbing (async workers) whose own identity never executes
    /// anything. [`SharedOrpheusDB::executor`] is the public path.
    pub(crate) fn internal_executor(&self, user: &str) -> ConcurrentExecutor {
        ConcurrentExecutor {
            inner: Arc::clone(&self.inner),
            user: user.to_string(),
        }
    }

    /// The write-ahead log sink, when this instance was opened through
    /// [`crate::recovery::open_shared`] — a cheap peek (catalog read
    /// lock only) used to decide whether a checkpoint is due without
    /// quiescing anything. Public so operators (and fault-injection
    /// tests) can arm faults or inspect degraded state on a served
    /// instance.
    pub fn wal_sink(&self) -> Option<WalSink> {
        let cat = self.inner.catalog_read();
        cat.wal.clone()
    }

    /// The recorded I/O failure when the WAL sink has degraded the
    /// instance to read-only, `None` while healthy (or without a WAL).
    pub fn degraded(&self) -> Option<String> {
        self.wal_sink().and_then(|sink| sink.degraded())
    }

    /// Persist a consistent instance snapshot (see [`crate::persist`]).
    pub fn save_to(&self, path: &std::path::Path) -> Result<()> {
        let merged = {
            let cat = self.inner.catalog_read();
            cat.merged_snapshot()?
        };
        merged.save_to(path)
    }

    /// Restore a shared instance previously saved with
    /// [`SharedOrpheusDB::save_to`] (or [`OrpheusDB::save_to`]).
    pub fn load_from(path: &std::path::Path) -> Result<SharedOrpheusDB> {
        Ok(SharedOrpheusDB::new(OrpheusDB::load_from(path)?))
    }
}

// ---------------------------------------------------------------------------
// The routing executor.
// ---------------------------------------------------------------------------

/// Swap the shard's identity to `user` for the duration of one operation,
/// restoring the previous identity afterwards — the per-request
/// identity-swap that keeps ownership checks session-scoped.
fn under_identity<T>(
    odb: &mut OrpheusDB,
    user: &str,
    f: impl FnOnce(&mut OrpheusDB) -> Result<T>,
) -> Result<T> {
    odb.access.ensure_user(user)?;
    let prior = odb.access.whoami().to_string();
    odb.access.login(user)?;
    let result = f(odb);
    // Restore the shard-level identity regardless of the outcome.
    let _ = odb.access.login(&prior);
    result
}

/// How one SQL statement routes under per-CVD locking.
#[derive(Debug)]
struct SqlPlan {
    /// CVD keys the statement touches ([`AUX_KEY`] never appears here).
    cvds: BTreeSet<String>,
    /// Whether the statement is a plain `SELECT` (read-only).
    is_select: bool,
}

/// Scan a statement for CVD references: `CVD <name>` patterns (only when
/// `versioned` — the `run` surface), staged-table names, and backing-table
/// names (`<cvd>__...`).
fn analyze_sql(cat: &Catalog, sql: &str, versioned: bool) -> Result<SqlPlan> {
    let tokens = tokenize(sql).map_err(CoreError::from)?;
    // `SELECT ... INTO` materializes a table, so it does not count as
    // read-only here — mirroring [`crate::query::is_select`].
    let is_select = tokens.first().is_some_and(|t| t.is_kw("select"))
        && !tokens.iter().any(|t| t.is_kw("into"));
    let mut cvds = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if versioned && tokens[i].is_kw("cvd") {
            if let Some(Token::Ident(name)) = tokens.get(i + 1) {
                let key = name.to_ascii_lowercase();
                if !cat.shards.contains_key(&key) {
                    return Err(CoreError::CvdNotFound(name.clone()));
                }
                cvds.insert(key);
                i += 2;
                continue;
            }
        }
        if let Token::Ident(name) = &tokens[i] {
            let key = name.to_ascii_lowercase();
            if let Some(cvd) = cat
                .staged
                .get(&Catalog::staged_key(&key, StagedKind::Table))
            {
                if cvd != AUX_KEY {
                    cvds.insert(cvd.clone());
                }
            } else if let Some(cvd) = cat.claim_by_prefix(&key) {
                cvds.insert(cvd);
            }
        }
        i += 1;
    }
    Ok(SqlPlan { cvds, is_select })
}

/// Fast-path flag for the panic-injection test hook below: checked with
/// one relaxed atomic load per sub-batch request, so the hook costs
/// nothing when disarmed (the overwhelmingly common case).
static PANIC_HOOK_ARMED: AtomicBool = AtomicBool::new(false);
/// Staged-table name that makes sub-batch execution panic right before
/// the matching checkout runs (see [`arm_checkout_panic`]).
static PANIC_HOOK_NAME: StdMutex<Option<String>> = StdMutex::new(None);

/// Test-only: make any sub-batch worker panic immediately before it
/// executes a checkout into `table`. This exercises the panic-containment
/// path of [`ConcurrentExecutor::run_shard_items`] (and through it the
/// async executor's worker poisoning) with a real unwinding panic instead
/// of a simulated error. Disarm with [`disarm_checkout_panic`].
#[doc(hidden)]
pub fn arm_checkout_panic(table: &str) {
    *PANIC_HOOK_NAME.lock().unwrap_or_else(|e| e.into_inner()) = Some(table.to_string());
    PANIC_HOOK_ARMED.store(true, Ordering::SeqCst);
}

/// Test-only: disarm [`arm_checkout_panic`].
#[doc(hidden)]
pub fn disarm_checkout_panic() {
    PANIC_HOOK_ARMED.store(false, Ordering::SeqCst);
    *PANIC_HOOK_NAME.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Fire the injected panic if the hook is armed for this checkout target.
fn maybe_injected_panic(request: &Request) {
    if !PANIC_HOOK_ARMED.load(Ordering::Relaxed) {
        return;
    }
    if let Request::Checkout(c) = request {
        let armed = PANIC_HOOK_NAME.lock().unwrap_or_else(|e| e.into_inner());
        if armed.as_deref() == Some(c.table.as_str()) {
            panic!("injected worker panic on checkout into {}", c.table);
        }
    }
}

/// State of the commit-gate test hook (see [`arm_commit_gate`]).
struct CommitGate {
    table: String,
    entered: bool,
    released: bool,
}

/// Fast-path flag mirroring [`PANIC_HOOK_ARMED`]: one relaxed load per
/// commit when disarmed.
static COMMIT_GATE_ARMED: AtomicBool = AtomicBool::new(false);
static COMMIT_GATE: StdMutex<Option<CommitGate>> = StdMutex::new(None);
static COMMIT_GATE_CV: std::sync::Condvar = std::sync::Condvar::new();

/// Test/bench hook: hold the next `commit` of staged table `table` open
/// **mid-flight, inside the shard's write lock**, until the returned
/// handle is released (or dropped). This is the deterministic way to
/// prove MVCC snapshot reads: arm the gate, start the commit on another
/// thread, [`CommitGateHandle::wait_entered`], perform checkouts and
/// SELECTs against the same CVD (they complete — they never touch the
/// held lock), then [`CommitGateHandle::release`]. Also powers the
/// torn-read tests: a reader during the held window sees the *old* graph,
/// a reader after the commit acknowledges sees the *new* one, never a
/// mixture.
#[doc(hidden)]
pub fn arm_commit_gate(table: &str) -> CommitGateHandle {
    *COMMIT_GATE.lock().unwrap_or_else(|e| e.into_inner()) = Some(CommitGate {
        table: table.to_string(),
        entered: false,
        released: false,
    });
    COMMIT_GATE_ARMED.store(true, Ordering::SeqCst);
    CommitGateHandle { _private: () }
}

/// RAII handle of [`arm_commit_gate`]; dropping it releases the gate.
#[doc(hidden)]
pub struct CommitGateHandle {
    _private: (),
}

impl CommitGateHandle {
    /// Block until a committer is parked inside the gate (holding its
    /// shard's write lock), or the gate was already released.
    pub fn wait_entered(&self) {
        let mut gate = COMMIT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        while gate.as_ref().is_some_and(|g| !g.entered && !g.released) {
            gate = COMMIT_GATE_CV.wait(gate).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Release the held committer and disarm the gate.
    pub fn release(&self) {
        let mut gate = COMMIT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(g) = gate.as_mut() {
            g.released = true;
        }
        COMMIT_GATE_ARMED.store(false, Ordering::SeqCst);
        COMMIT_GATE_CV.notify_all();
    }
}

impl Drop for CommitGateHandle {
    fn drop(&mut self) {
        self.release();
    }
}

/// Called by [`OrpheusDB::commit`] with the staged table name: parks the
/// committer inside the gate when armed for that table, signalling
/// [`CommitGateHandle::wait_entered`]. A no-op (one relaxed load) when
/// disarmed.
pub(crate) fn hold_commit_if_gated(table: &str) {
    if !COMMIT_GATE_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let mut gate = COMMIT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        match gate.as_mut() {
            Some(g) if g.table.eq_ignore_ascii_case(table) && !g.released => {
                if !g.entered {
                    g.entered = true;
                    COMMIT_GATE_CV.notify_all();
                }
                gate = COMMIT_GATE_CV.wait(gate).unwrap_or_else(|e| e.into_inner());
            }
            _ => return,
        }
    }
}

/// One request of a per-shard sub-batch: the identity it runs under, the
/// request itself (`None` once consumed — executed, or failed before the
/// shard was touched), and its outcome slot. The synchronous
/// [`ConcurrentExecutor::execute_batch`] and the async executor's workers
/// both feed these to [`ConcurrentExecutor::run_shard_items`]; carrying
/// the user per item (rather than per batch) is what lets one worker
/// execute a sub-batch assembled from many sessions' submissions.
#[derive(Debug)]
pub(crate) struct SubItem {
    pub(crate) user: String,
    pub(crate) request: Option<Request>,
    pub(crate) out: Option<Result<Response>>,
}

/// Remove staged-index reservations that still point at `cat_key` (a
/// checkout that failed, or a sub-batch falling back to the per-request
/// path). Entries re-pointed by someone else are left alone.
fn release_reservations(inner: &Inner, cat_key: &str, keys: &[String]) {
    if keys.is_empty() {
        return;
    }
    let mut cat = inner.catalog_write();
    for key in keys {
        if cat.staged.get(key).map(String::as_str) == Some(cat_key) {
            cat.staged.remove(key);
        }
    }
}

/// The in-shard execution of one `run` statement: the Section 2.3 access
/// guard plus versioned translation — identical to the closure
/// `sql_routed` runs under the shard lock.
fn shard_sql(odb: &mut OrpheusDB, user: &str, sql: &str) -> Result<QueryResult> {
    guard_sql(odb, user, sql)?;
    odb.run(sql)
}

/// The staged-index bookkeeping a request implies for the closing catalog
/// write of a sub-batch: `(key, true)` — entry consumed on success
/// (commit/discard); `(key, false)` — reservation to release on failure
/// (checkout).
fn staged_mark(request: &Request) -> Option<(String, bool)> {
    match request {
        Request::Commit(c) => Some((Catalog::staged_key(&c.table, StagedKind::Table), true)),
        Request::Discard(d) => Some((Catalog::staged_key(&d.table, StagedKind::Table), true)),
        Request::CommitCsv(c) => Some((Catalog::staged_key(&c.path, StagedKind::Csv), true)),
        Request::Checkout(c) => Some((Catalog::staged_key(&c.table, StagedKind::Table), false)),
        Request::CheckoutCsv(c) => Some((Catalog::staged_key(&c.path, StagedKind::Csv), false)),
        _ => None,
    }
}

/// [`BatchRouter`] over the catalog: one read acquisition resolves the
/// routing of a whole batch (CVD existence, the staged-name index, and
/// per-statement SQL analysis).
struct CatalogRouter<'a> {
    catalog: &'a Catalog,
}

impl BatchRouter for CatalogRouter<'_> {
    fn has_cvd(&self, name: &str) -> bool {
        self.catalog.shards.contains_key(&name.to_ascii_lowercase())
    }

    fn staged_shard(&self, name: &str, kind: StagedKind) -> Option<ShardKey> {
        self.catalog
            .staged
            .get(&Catalog::staged_key(name, kind))
            .map(|key| {
                if key == AUX_KEY {
                    ShardKey::Aux
                } else {
                    ShardKey::Cvd(key.clone())
                }
            })
    }

    fn sql_shard(&self, sql: &str) -> Option<ShardKey> {
        match analyze_sql(self.catalog, sql, true) {
            Ok(plan) if plan.cvds.is_empty() => Some(ShardKey::Aux),
            Ok(plan) if plan.cvds.len() == 1 => {
                Some(ShardKey::Cvd(plan.cvds.into_iter().next().expect("len 1")))
            }
            // Multi-CVD statements and unparsable SQL go sequential: the
            // per-request path picks snapshots or surfaces the error.
            _ => None,
        }
    }
}

/// The shared, multi-user executor with per-CVD lock routing. Each request
/// runs under this executor's identity (acquired-lock identity swap), so
/// ownership checks apply per session while many sessions share one
/// instance.
///
/// Routing, by [`Request::target`]:
/// * [`Target::Catalog`] — catalog lock (CVD create/drop, users, `ls`).
/// * [`Target::Cvd`] — that CVD's lock; checkouts additionally reserve the
///   target name in the catalog's staged index first, keeping staged
///   names globally unique.
/// * [`Target::StagedTable`] / [`Target::StagedCsv`] — the owning CVD is
///   resolved through the staged index, then that CVD's lock.
/// * [`Target::Sql`] — the statement is analyzed; single-CVD reads run on
///   that shard's MVCC snapshot, single-CVD writes take one CVD lock,
///   multi-CVD reads run on a merged lock-free snapshot, and multi-CVD
///   writes run as cross-CVD write transactions that lock every routed
///   shard in sorted key order (auxiliary shard last).
///
/// Two variants get session-level semantics instead of instance-level
/// ones: `Whoami` reports the executor's user, and `Login` rebinds *this
/// executor* to another existing user without touching the instance
/// identity other sessions see.
#[derive(Debug, Clone)]
pub struct ConcurrentExecutor {
    inner: Arc<Inner>,
    user: String,
}

impl ConcurrentExecutor {
    /// The identity this executor operates under.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Run `f` under the lock of the shard `resolve` picks, retrying when
    /// a catalog rebuild retired the shard between resolution and lock
    /// acquisition. The catalog lock is **not** held while blocking on the
    /// shard lock.
    fn locked<T>(
        &self,
        resolve: impl Fn(&Catalog) -> Result<Arc<Shard>>,
        f: impl FnOnce(&mut OrpheusDB) -> Result<T>,
    ) -> Result<T> {
        let mut f = Some(f);
        loop {
            let shard = {
                let cat = self.inner.catalog_read();
                resolve(&cat)?
            };
            let mut db = shard.write();
            if shard.is_retired() {
                continue;
            }
            let f = f.take().expect("closure runs at most once");
            return under_identity(&mut db, &self.user, f);
        }
    }

    /// Run `f` against a clone of the shard `resolve` picks, taking **no
    /// shard lock** — the MVCC read path. Retries when a catalog rebuild
    /// retired the shard between resolution and the snapshot load (the
    /// load could have observed the emptied post-quiesce state).
    fn on_snapshot<T>(
        &self,
        resolve: impl Fn(&Catalog) -> Result<Arc<Shard>>,
        f: impl FnOnce(&mut OrpheusDB) -> Result<T>,
    ) -> Result<T> {
        let mut f = Some(f);
        loop {
            let shard = {
                let cat = self.inner.catalog_read();
                resolve(&cat)?
            };
            let mut clone = shard.load_snapshot();
            if shard.is_retired() {
                continue;
            }
            let f = f.take().expect("closure runs at most once");
            return under_identity(&mut clone, &self.user, f);
        }
    }

    /// The MVCC checkout path: reserve the staged name in the catalog
    /// index, **materialize against the shard's snapshot** (no shard
    /// lock — a commit in flight never delays a checkout), park the
    /// artifact for the next writer to adopt, and release the reservation
    /// on failure.
    fn park_checkout<T>(
        &self,
        cvd: &str,
        kind: StagedKind,
        name: &str,
        materialize: impl Fn(&mut OrpheusDB) -> Result<T>,
    ) -> Result<T> {
        let cvd_key = cvd.to_ascii_lowercase();
        let staged_key = {
            let mut cat = self.inner.catalog_write();
            cat.reserve(cvd, kind, name)?
        };
        let result = self.park_checkout_reserved(&cvd_key, kind, name, &materialize);
        if result.is_err() {
            release_reservations(&self.inner, &cvd_key, std::slice::from_ref(&staged_key));
        }
        result
    }

    /// Post-reservation half of [`ConcurrentExecutor::park_checkout`]: the
    /// snapshot materialization and the park itself, with the
    /// retired-shard retry protocol. After parking, `retired` is
    /// re-checked: a quiesce that retired the shard either already adopted
    /// our entry (its drain runs after `retire`, so the entry is gone from
    /// pending and travels with the rebuild) or left it parked — in which
    /// case we un-park it ourselves and retry against the rebuilt catalog.
    /// The reservation survives the rebuild precisely because the artifact
    /// was not materialized yet (see [`SharedOrpheusDB::write`]).
    fn park_checkout_reserved<T>(
        &self,
        cvd_key: &str,
        kind: StagedKind,
        name: &str,
        materialize: &impl Fn(&mut OrpheusDB) -> Result<T>,
    ) -> Result<T> {
        let staged_key = Catalog::staged_key(name, kind);
        loop {
            let shard = {
                let cat = self.inner.catalog_read();
                cat.shard(cvd_key)?
            };
            let mut clone = shard.load_snapshot();
            if shard.is_retired() {
                continue;
            }
            let out = under_identity(&mut clone, &self.user, |odb| materialize(odb))?;
            let table = match kind {
                StagedKind::Table => Some(
                    clone
                        .engine
                        .take_table(name)
                        .expect("checkout materialized its target table"),
                ),
                StagedKind::Csv => None,
            };
            let entry = clone
                .staging
                .get(name, kind)
                .expect("checkout registered its staging entry")
                .clone();
            shard.pending.lock().push(ParkedCheckout { table, entry });
            if !shard.is_retired() {
                return Ok(out);
            }
            let adopted = {
                let mut pending = shard.pending.lock();
                match pending
                    .iter()
                    .position(|p| Catalog::staged_key(&p.entry.name, p.entry.kind) == staged_key)
                {
                    Some(i) => {
                        pending.remove(i);
                        false
                    }
                    None => true,
                }
            };
            if adopted {
                return Ok(out);
            }
        }
    }

    /// Route a commit/discard-style operation through the staged index to
    /// the owning CVD's lock; drop the index entry once the operation
    /// consumed the staged artifact.
    fn with_staged<T>(
        &self,
        kind: StagedKind,
        name: &str,
        f: impl FnOnce(&mut OrpheusDB) -> Result<T>,
    ) -> Result<T> {
        let key = Catalog::staged_key(name, kind);
        let result = self.locked(
            |cat| {
                let cvd_key = cat
                    .staged
                    .get(&key)
                    .ok_or_else(|| CoreError::NotStaged(name.to_string()))?;
                cat.shard_by_key(cvd_key)
            },
            f,
        );
        if result.is_ok() {
            let mut cat = self.inner.catalog_write();
            cat.staged.remove(&key);
        }
        result
    }

    // -- the session-level command surface ----------------------------------

    /// `checkout` into a private staged table owned by this executor's
    /// user. Runs entirely against the CVD's MVCC snapshot — it never
    /// waits on a commit in flight (the park-and-adopt protocol in the
    /// module docs).
    pub fn checkout(&self, cvd: &str, vids: &[Vid], table: &str) -> Result<()> {
        self.park_checkout(cvd, StagedKind::Table, table, |odb| {
            odb.checkout(cvd, vids, table)
        })
    }

    /// `checkout -f`: export version(s) as CSV text. Snapshot-served like
    /// [`ConcurrentExecutor::checkout`].
    pub fn checkout_csv(&self, cvd: &str, vids: &[Vid], path: &str) -> Result<String> {
        self.park_checkout(cvd, StagedKind::Csv, path, |odb| {
            odb.checkout_csv(cvd, vids, path)
        })
    }

    /// `commit` a staged table (must be owned by this executor's user).
    pub fn commit(&self, table: &str, message: &str) -> Result<Vid> {
        self.with_staged(StagedKind::Table, table, |odb| odb.commit(table, message))
    }

    /// `commit -f`: commit edited CSV text previously exported with
    /// [`ConcurrentExecutor::checkout_csv`].
    pub fn commit_csv(
        &self,
        path: &str,
        csv: &str,
        message: &str,
        schema_text: Option<&str>,
    ) -> Result<Vid> {
        self.with_staged(StagedKind::Csv, path, |odb| {
            odb.commit_csv(path, csv, message, schema_text)
        })
    }

    /// Abandon a staged table without committing.
    pub fn discard(&self, table: &str) -> Result<()> {
        self.with_staged(StagedKind::Table, table, |odb| odb.discard(table))
    }

    /// `diff` two versions of a CVD — read-only, served from the CVD's
    /// MVCC snapshot without taking the shard lock.
    pub fn diff(&self, cvd: &str, a: Vid, b: Vid) -> Result<VersionDiff> {
        self.on_snapshot(|cat| cat.shard(cvd), |odb| odb.diff(cvd, a, b))
    }

    /// The rows `(rid, attributes)` of one version — read-only, served
    /// from the CVD's MVCC snapshot without taking the shard lock.
    pub fn version_rows(&self, cvd: &str, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
        self.on_snapshot(|cat| cat.shard(cvd), |odb| odb.version_rows(cvd, vid))
    }

    /// Run the partition optimizer.
    pub fn optimize(&self, cvd: &str) -> Result<OptimizeReport> {
        self.locked(|cat| cat.shard(cvd), |odb| odb.optimize(cvd))
    }

    /// List CVDs (catalog lock only — never blocks behind a commit).
    pub fn ls(&self) -> Vec<String> {
        let cat = self.inner.catalog_read();
        cat.shards.keys().cloned().collect()
    }

    /// Versioned SQL (`VERSION n OF CVD x`, `CVD x`) or plain SQL, guarded
    /// by the Section 2.3 staged-table access rule.
    pub fn run(&self, sql: &str) -> Result<QueryResult> {
        self.sql_routed(sql, true)
    }

    /// Plain SQL against staged tables (no versioned-clause translation),
    /// same access guard as [`ConcurrentExecutor::run`].
    pub fn sql(&self, sql: &str) -> Result<QueryResult> {
        self.sql_routed(sql, false)
    }

    fn sql_routed(&self, sql: &str, versioned: bool) -> Result<QueryResult> {
        let plan = {
            let cat = self.inner.catalog_read();
            analyze_sql(&cat, sql, versioned)?
        };
        let exec = |odb: &mut OrpheusDB| -> Result<QueryResult> {
            guard_sql(odb, &self.user, sql)?;
            if versioned {
                odb.run(sql)
            } else {
                Ok(odb.engine.execute(sql)?)
            }
        };
        let result = match plan.cvds.len() {
            // Read-only single-shard statements are served from the
            // shard's MVCC snapshot — no shard lock, so they never wait
            // on a writer. Writing statements take the shard's write
            // lock as before.
            0 if plan.is_select => self.on_snapshot(|cat| Ok(Arc::clone(&cat.aux)), exec),
            0 => self.locked(|cat| Ok(Arc::clone(&cat.aux)), exec),
            1 => {
                let key = plan.cvds.iter().next().expect("len checked").clone();
                if plan.is_select {
                    self.on_snapshot(move |cat| cat.shard_by_key(&key), exec)
                } else {
                    self.locked(move |cat| cat.shard_by_key(&key), exec)
                }
            }
            _ if plan.is_select => return self.sql_on_snapshot(&plan.cvds, sql, versioned),
            _ => return self.sql_cross_cvd_write(&plan.cvds, sql, versioned),
        };
        // A statement that joins shard tables with auxiliary tables (or
        // another CVD's tables the analyzer could not attribute) fails
        // with TableNotFound inside a single shard. A SELECT retries on a
        // full merged snapshot; a *writing* statement retries as a
        // cross-CVD write transaction, which merges the routed shard with
        // the auxiliary shard (and so sees the side tables) under proper
        // locks.
        match result {
            Err(CoreError::Engine(EngineError::TableNotFound(_))) if plan.is_select => {
                self.sql_on_snapshot(&plan.cvds, sql, versioned)
            }
            Err(CoreError::Engine(EngineError::TableNotFound(_))) if !plan.cvds.is_empty() => {
                self.sql_cross_cvd_write(&plan.cvds, sql, versioned)
            }
            other => other,
        }
    }

    /// A writing statement spanning several shards: the **cross-CVD write
    /// transaction**. Under a shared catalog lock (which pins the shard
    /// set — retirement requires the catalog exclusively), the involved
    /// shards' write locks are taken in sorted key order with the
    /// auxiliary shard last — the same global order as the instance-wide
    /// quiesce paths, so no two lock paths can deadlock. The shards are
    /// merged, the statement executes once against the merged state, and
    /// the shards are split back out; every guard republishes its MVCC
    /// snapshot on release, so other paths observe either all of the
    /// statement's effects or none.
    fn sql_cross_cvd_write(
        &self,
        keys: &BTreeSet<String>,
        sql: &str,
        versioned: bool,
    ) -> Result<QueryResult> {
        self.sql_cross_cvd_write_as(&self.user, keys, sql, versioned)
    }

    /// [`ConcurrentExecutor::sql_cross_cvd_write`] under an explicit
    /// identity — sub-batches carry a user per item, so their cross-CVD
    /// write retries cannot assume this executor's user.
    fn sql_cross_cvd_write_as(
        &self,
        user: &str,
        keys: &BTreeSet<String>,
        sql: &str,
        versioned: bool,
    ) -> Result<QueryResult> {
        let cat = self.inner.catalog_read();
        let shards: Vec<(String, Arc<Shard>)> = keys
            .iter()
            .filter(|k| k.as_str() != AUX_KEY)
            .map(|k| Ok((k.clone(), cat.shard(k)?)))
            .collect::<Result<_>>()?;
        let aux = Arc::clone(&cat.aux);
        let mut guards: Vec<ShardWriteGuard<'_>> =
            shards.iter().map(|(_, shard)| shard.write()).collect();
        let mut aux_guard = aux.write();
        // Merge: the auxiliary shard is the base (its side tables stay
        // put), each CVD shard is absorbed in. The catalog carries the
        // canonical user registry, exactly as in `Catalog::take_all`.
        let mut merged = std::mem::take(&mut *aux_guard);
        merged.access = cat.access.clone();
        merged.config = cat.config.clone();
        for guard in guards.iter_mut() {
            merged
                .absorb(std::mem::take(&mut **guard))
                .expect("disjoint shards merge without collisions");
        }
        let result = under_identity(&mut merged, user, |odb| {
            guard_sql(odb, user, sql)?;
            if versioned {
                odb.run(sql)
            } else {
                Ok(odb.engine.execute(sql)?)
            }
        });
        // Split back, whether or not the statement succeeded — the merge
        // itself must never be lossy.
        for ((key, _), guard) in shards.iter().zip(guards.iter_mut()) {
            **guard = merged
                .detach_cvd(key)
                .expect("absorbed CVD detaches back out");
        }
        *aux_guard = merged;
        drop(aux_guard);
        drop(guards);
        drop(cat);
        result
    }

    /// Run a read-only statement on a merged snapshot of the involved
    /// shards (plus the auxiliary shard).
    fn sql_on_snapshot(
        &self,
        keys: &BTreeSet<String>,
        sql: &str,
        versioned: bool,
    ) -> Result<QueryResult> {
        self.sql_on_snapshot_as(&self.user, keys, sql, versioned)
    }

    /// [`ConcurrentExecutor::sql_on_snapshot`] under an explicit identity —
    /// sub-batches carry a user per item, so their snapshot retries cannot
    /// assume this executor's user.
    fn sql_on_snapshot_as(
        &self,
        user: &str,
        keys: &BTreeSet<String>,
        sql: &str,
        versioned: bool,
    ) -> Result<QueryResult> {
        let mut merged = {
            let cat = self.inner.catalog_read();
            if keys.is_empty() {
                cat.merged_snapshot()?
            } else {
                cat.merged_subset(keys)?
            }
        };
        guard_sql(&merged, user, sql)?;
        if versioned {
            merged.run(sql)
        } else {
            Ok(merged.engine.execute(sql)?)
        }
    }

    // -- batching -------------------------------------------------------------

    /// Execute a batch with per-shard lock coalescing — the
    /// [`Executor::batch`] override. The batch is planned once under a
    /// single catalog read ([`BatchPlan::build`]: staged-name resolution
    /// and SQL analysis for every request, instead of one catalog
    /// acquisition per request), then each shard's sub-batch runs under
    /// **one** shard-lock acquisition: checkout-name reservations for the
    /// whole sub-batch in one catalog write, the requests themselves under
    /// one identity swap, and the staged-index bookkeeping in one closing
    /// catalog write. Responses come back in submission order and
    /// failures stay per-request.
    ///
    /// Requests the plan cannot pin to one shard — catalog mutations, SQL
    /// spanning CVDs, staged names it cannot resolve — run through the
    /// ordinary [`ConcurrentExecutor::execute`] path as barriers between
    /// sub-batches. Sub-batches of *different* shards may interleave
    /// relative to each other (they touch disjoint state); within one
    /// shard, submission order is preserved. A statement that turns out to
    /// reference tables outside its shard is retried *after* the sub-batch
    /// (the same fallbacks the per-request path applies inline) — reads on
    /// a merged snapshot, writes as a cross-CVD write transaction — so it
    /// may observe later requests of its own sub-batch.
    pub fn execute_batch(&mut self, requests: Vec<Request>) -> Vec<Result<Response>> {
        let plan = {
            let cat = self.inner.catalog_read();
            BatchPlan::build(&requests, &CatalogRouter { catalog: &cat })
        };
        let mut slots: Vec<Option<Request>> = requests.into_iter().map(Some).collect();
        let mut out: Vec<Option<Result<Response>>> = slots.iter().map(|_| None).collect();
        for step in plan.steps() {
            match step {
                Step::Sequential(i) => {
                    let request = slots[*i].take().expect("indices are scheduled once");
                    out[*i] = Some(self.execute(request));
                }
                Step::Shard {
                    key,
                    indices,
                    read_only,
                } => {
                    if *read_only {
                        self.execute_snapshot_batch(key, indices, &mut slots, &mut out)
                    } else {
                        self.execute_shard_batch(&plan, key, indices, &mut slots, &mut out)
                    }
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("every index is scheduled"))
            .collect()
    }

    /// One shard's sub-batch under a single lock acquisition (see
    /// [`ConcurrentExecutor::execute_batch`]). Requests that already
    /// failed reservation arrive as emptied slots and are skipped. Thin
    /// adapter over [`ConcurrentExecutor::run_shard_items`], which the
    /// async executor's workers drive directly.
    fn execute_shard_batch(
        &mut self,
        plan: &BatchPlan,
        key: &ShardKey,
        indices: &[usize],
        slots: &mut [Option<Request>],
        out: &mut [Option<Result<Response>>],
    ) {
        let mut items: Vec<SubItem> = indices
            .iter()
            .map(|&i| SubItem {
                user: self.user.clone(),
                request: slots[i].take(),
                out: out[i].take(),
            })
            .collect();
        self.run_shard_items(plan, key, &mut items);
        for (&i, item) in indices.iter().zip(items) {
            out[i] = item.out;
        }
    }

    /// One shard's *read-only* sub-batch against an MVCC snapshot (see
    /// [`ConcurrentExecutor::execute_batch`]). Thin adapter over
    /// [`ConcurrentExecutor::run_snapshot_items`].
    fn execute_snapshot_batch(
        &mut self,
        key: &ShardKey,
        indices: &[usize],
        slots: &mut [Option<Request>],
        out: &mut [Option<Result<Response>>],
    ) {
        let mut items: Vec<SubItem> = indices
            .iter()
            .map(|&i| SubItem {
                user: self.user.clone(),
                request: slots[i].take(),
                out: out[i].take(),
            })
            .collect();
        self.run_snapshot_items(key, &mut items);
        for (&i, item) in indices.iter().zip(items) {
            out[i] = item.out;
        }
    }

    /// Execute one shard's sub-batch under a single shard-lock
    /// acquisition — the engine shared by [`Executor::batch`] on this
    /// executor and by the async executor's per-shard workers
    /// ([`crate::async_exec`]). Each [`SubItem`] carries its own identity,
    /// so one sub-batch may interleave requests from many sessions; the
    /// shard identity is swapped whenever the owner changes and restored
    /// afterwards.
    ///
    /// A panic while executing a request is contained here: the panicking
    /// request and every item still pending in this sub-batch fail with
    /// [`CoreError::WorkerPanicked`], their checkout reservations are
    /// released, and already-completed items keep their results. The shard
    /// lock itself does not poison (shim `parking_lot` semantics), so
    /// later sub-batches on the same shard run normally.
    pub(crate) fn run_shard_items(&self, plan: &BatchPlan, key: &ShardKey, items: &mut [SubItem]) {
        let cat_key = match key {
            ShardKey::Aux => AUX_KEY.to_string(),
            ShardKey::Cvd(k) => k.clone(),
        };

        // Phase 1 — reserve every checkout target name of the sub-batch
        // in one catalog write; a name that cannot be reserved fails its
        // request right here, without touching the shard.
        let mut reserved: Vec<String> = Vec::new();
        {
            let mut cat = self.inner.catalog_write();
            for item in items.iter_mut() {
                let (cvd, kind, name) = match item.request.as_ref() {
                    Some(Request::Checkout(c)) => {
                        (c.cvd.clone(), StagedKind::Table, c.table.clone())
                    }
                    Some(Request::CheckoutCsv(c)) => {
                        (c.cvd.clone(), StagedKind::Csv, c.path.clone())
                    }
                    _ => continue,
                };
                match cat.reserve(&cvd, kind, &name) {
                    Ok(staged_key) => reserved.push(staged_key),
                    Err(e) => {
                        item.out = Some(Err(e));
                        item.request = None;
                    }
                }
            }
        }

        // Phase 2 — one shard-lock acquisition for the whole sub-batch,
        // retrying when a catalog rebuild retired the shard between
        // resolution and acquisition (same protocol as `locked`).
        let mut consumed: Vec<String> = Vec::new();
        let mut failed_checkouts: Vec<String> = Vec::new();
        let mut snapshot_retries: Vec<(usize, String, String, bool)> = Vec::new();
        loop {
            let resolved = {
                let cat = self.inner.catalog_read();
                cat.shard_by_key(&cat_key)
            };
            let shard = match resolved {
                Ok(shard) => shard,
                Err(_) => {
                    // The CVD vanished between planning and execution (a
                    // concurrent drop). Release our reservations so the
                    // fallback cannot collide with them, then run each
                    // remaining request through the per-request path,
                    // which re-resolves and reports the ordinary errors.
                    release_reservations(&self.inner, &cat_key, &reserved);
                    for item in items.iter_mut() {
                        if let Some(request) = item.request.take() {
                            let mut exec = ConcurrentExecutor {
                                inner: Arc::clone(&self.inner),
                                user: item.user.clone(),
                            };
                            item.out = Some(exec.execute(request));
                        }
                    }
                    return;
                }
            };
            let mut db = shard.write();
            if shard.is_retired() {
                continue;
            }
            // Identity swap whenever the item owner changes (sub-batches
            // built by `execute_batch` carry one user throughout; async
            // sub-batches interleave sessions), and one scan cache so
            // checkouts of the same version set share a single
            // version-row scan under this lock acquisition.
            let prior = db.access.whoami().to_string();
            let mut current: Option<String> = None;
            let mut scan_cache = crate::db::ScanCache::new();
            let mut poisoned = false;
            for (i, item) in items.iter_mut().enumerate() {
                let Some(request) = item.request.take() else {
                    continue;
                };
                if poisoned {
                    // A panic earlier in this sub-batch: poison the rest
                    // of its in-flight requests instead of running them
                    // against state of unknown integrity.
                    if let Some((key, false)) = staged_mark(&request) {
                        failed_checkouts.push(key);
                    }
                    item.out = Some(Err(CoreError::WorkerPanicked {
                        shard: key.label().to_string(),
                    }));
                    continue;
                }
                if current.as_deref() != Some(item.user.as_str()) {
                    if let Err(e) = db.access.ensure_user(&item.user) {
                        if let Some((key, false)) = staged_mark(&request) {
                            failed_checkouts.push(key);
                        }
                        item.out = Some(Err(e));
                        continue;
                    }
                    let _ = db.access.login(&item.user);
                    current = Some(item.user.clone());
                }
                // Staged-index bookkeeping for the closing catalog write:
                // (key, true) = consumed on success, (key, false) =
                // reservation to release on failure.
                let finalize = staged_mark(&request);
                let user = &item.user;
                let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    maybe_injected_panic(&request);
                    match request {
                        // Run goes through the guarded session surface,
                        // like `sql_routed`'s in-shard closure.
                        Request::Run(run) => {
                            if !crate::query::is_select(&run.sql) {
                                // Raw SQL can write into backing tables;
                                // the cached scans must not outlive it.
                                scan_cache.clear();
                            }
                            match shard_sql(&mut db, user, &run.sql) {
                                Err(CoreError::Engine(EngineError::TableNotFound(_))) => {
                                    if crate::query::is_select(&run.sql) {
                                        // Retried on a merged snapshot once
                                        // the shard lock is released
                                        // (catalog locks must never be
                                        // taken under a shard lock).
                                        Err((run.sql, false))
                                    } else {
                                        // The write references tables
                                        // outside this shard: retried as a
                                        // cross-CVD write transaction once
                                        // the shard lock is released.
                                        // (Aux-routed statements retry
                                        // too — a staged table unknown at
                                        // plan time resolves in the
                                        // retry's re-analysis; a name that
                                        // exists nowhere fails there with
                                        // this same error.)
                                        Err((run.sql, true))
                                    }
                                }
                                other => Ok(other.map(Response::Rows)),
                            }
                        }
                        other => Ok(db.execute_batch_step(plan, &mut scan_cache, other)),
                    }
                }));
                let result = match executed {
                    Ok(Ok(result)) => result,
                    Ok(Err((retry_sql, is_write))) => {
                        snapshot_retries.push((i, item.user.clone(), retry_sql, is_write));
                        continue;
                    }
                    Err(_) => {
                        // The request panicked mid-flight. Treat it as
                        // failed (its checkout, if any, is released below)
                        // and poison the rest of the sub-batch; the shard
                        // state this request already touched is whatever
                        // the unwind left behind, exactly as a panicking
                        // single-request executor would leave it.
                        poisoned = true;
                        Err(CoreError::WorkerPanicked {
                            shard: key.label().to_string(),
                        })
                    }
                };
                match (&result, finalize) {
                    (Ok(_), Some((key, true))) => consumed.push(key),
                    (Err(_), Some((key, false))) => failed_checkouts.push(key),
                    _ => {}
                }
                item.out = Some(result);
            }
            let _ = db.access.login(&prior);
            break;
        }

        // Phase 3 — one closing catalog write: drop the index entries of
        // consumed staged artifacts, release the reservations of failed
        // checkouts.
        if !consumed.is_empty() || !failed_checkouts.is_empty() {
            let mut cat = self.inner.catalog_write();
            for key in consumed {
                cat.staged.remove(&key);
            }
            for key in failed_checkouts {
                if cat.staged.get(&key).map(String::as_str) == Some(cat_key.as_str()) {
                    cat.staged.remove(&key);
                }
            }
        }

        // Phase 4 — retries for SQL that referenced tables outside the
        // shard (the fallbacks `sql_routed` applies inline, done here
        // because they need catalog access): reads run on a merged
        // snapshot, writes run as cross-CVD write transactions.
        for (i, user, sql, is_write) in snapshot_retries {
            let mut keys: BTreeSet<String> = if cat_key == AUX_KEY {
                BTreeSet::new()
            } else {
                std::iter::once(cat_key.clone()).collect()
            };
            // Re-analyze against the live catalog: staged tables
            // materialized earlier in this batch were invisible when the
            // plan routed this statement, but their index entries exist
            // now, so the statement's full shard set is known here.
            {
                let cat = self.inner.catalog_read();
                if let Ok(plan) = analyze_sql(&cat, &sql, true) {
                    keys.extend(plan.cvds);
                }
            }
            let result = if is_write {
                self.sql_cross_cvd_write_as(&user, &keys, &sql, true)
            } else {
                self.sql_on_snapshot_as(&user, &keys, &sql, true)
            };
            items[i].out = Some(result.map(Response::Rows));
        }
    }

    /// Execute one shard's *read-only* sub-batch against a single MVCC
    /// snapshot of that shard — no shard lock, no reservation phase
    /// (read-only steps never contain checkouts). This is what lets the
    /// async executor serve reads while a writer holds the shard: the
    /// snapshot load never blocks. The load retries when a catalog
    /// rebuild retired the shard mid-load, exactly like
    /// [`ConcurrentExecutor::on_snapshot`]; a statement referencing
    /// tables outside the shard retries on a merged snapshot, the same
    /// fallback the locked path applies in its phase 4.
    pub(crate) fn run_snapshot_items(&self, key: &ShardKey, items: &mut [SubItem]) {
        let cat_key = match key {
            ShardKey::Aux => AUX_KEY.to_string(),
            ShardKey::Cvd(k) => k.clone(),
        };
        let mut db = loop {
            let resolved = {
                let cat = self.inner.catalog_read();
                cat.shard_by_key(&cat_key)
            };
            let shard = match resolved {
                Ok(shard) => shard,
                Err(_) => {
                    // The CVD vanished between planning and execution (a
                    // concurrent drop): run each remaining request through
                    // the per-request path, which re-resolves and reports
                    // the ordinary errors.
                    for item in items.iter_mut() {
                        if let Some(request) = item.request.take() {
                            let mut exec = ConcurrentExecutor {
                                inner: Arc::clone(&self.inner),
                                user: item.user.clone(),
                            };
                            item.out = Some(exec.execute(request));
                        }
                    }
                    return;
                }
            };
            let clone = shard.load_snapshot();
            if shard.is_retired() {
                continue;
            }
            break clone;
        };
        let mut poisoned = false;
        for item in items.iter_mut() {
            let Some(request) = item.request.take() else {
                continue;
            };
            if poisoned {
                item.out = Some(Err(CoreError::WorkerPanicked {
                    shard: key.label().to_string(),
                }));
                continue;
            }
            let user = item.user.clone();
            let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                maybe_injected_panic(&request);
                match request {
                    Request::Run(run) => {
                        match under_identity(&mut db, &user, |odb| shard_sql(odb, &user, &run.sql))
                        {
                            Err(CoreError::Engine(EngineError::TableNotFound(_))) => {
                                // The statement references tables outside
                                // this shard: retry on a merged snapshot.
                                let keys: BTreeSet<String> = if cat_key == AUX_KEY {
                                    BTreeSet::new()
                                } else {
                                    std::iter::once(cat_key.clone()).collect()
                                };
                                self.sql_on_snapshot_as(&user, &keys, &run.sql, true)
                            }
                            other => other,
                        }
                        .map(Response::Rows)
                    }
                    other => under_identity(&mut db, &user, |odb| odb.execute(other)),
                }
            }));
            let result = executed.unwrap_or_else(|_| {
                // A panic mid-read leaves the private clone's integrity
                // unknown; poison the rest of the sub-batch rather than
                // serving from it, mirroring the locked path.
                poisoned = true;
                Err(CoreError::WorkerPanicked {
                    shard: key.label().to_string(),
                })
            });
            item.out = Some(result);
        }
    }

    // -- catalog-level requests ----------------------------------------------

    /// `init` / `init -f`: create a new CVD as a fresh shard. The shard is
    /// built *outside* any lock — loading a large CSV must not stall
    /// routing for unrelated CVDs — and published under a brief catalog
    /// write, re-checking the name (a lost race surfaces as `CvdExists`).
    fn create_cvd(&self, name: &str, request: Request) -> Result<Response> {
        let key = name.to_ascii_lowercase();
        let (config, access, wal_armed) = {
            let cat = self.inner.catalog_read();
            // Refuse up front while degraded: building the shard is real
            // work, and the append below would refuse it anyway.
            cat.ensure_writable()?;
            if cat.shards.contains_key(&key) {
                return Err(CoreError::CvdExists(name.to_string()));
            }
            (cat.config.clone(), cat.access.clone(), cat.wal.is_some())
        };
        let mut odb = OrpheusDB::with_config(config);
        odb.access = access;
        // The fresh shard is built WAL-less: if the publish below loses
        // its race, nothing must have been logged. The record is
        // appended under the catalog write lock, after the re-check and
        // before the shard becomes reachable.
        let logged = wal_armed.then(|| request.clone());
        let response = under_identity(&mut odb, &self.user, |odb| odb.execute(request))?;
        let mut cat = self.inner.catalog_write();
        if cat.shards.contains_key(&key) {
            return Err(CoreError::CvdExists(name.to_string()));
        }
        if let (Some(wal), Some(request)) = (&cat.wal, logged) {
            // A fresh shard's clock starts at 0 (see OrpheusDB::with_config).
            wal.append(&self.user, 0, &WalOp::Request(request))?;
        }
        odb.wal = cat.wal.clone();
        cat.shards.insert(key, Shard::new(odb));
        Ok(response)
    }

    /// `drop`: remove a CVD's shard (and with it the CVD's backing tables
    /// and staged artifacts) and its staged-index entries.
    fn drop_cvd(&self, name: &str) -> Result<Response> {
        let mut cat = self.inner.catalog_write();
        cat.ensure_writable()?;
        let key = name.to_ascii_lowercase();
        let shard = cat
            .shards
            .remove(&key)
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))?;
        shard.retire();
        cat.staged.retain(|_, cvd| cvd != &key);
        if let Some(wal) = &cat.wal {
            wal.append(
                &self.user,
                0,
                &WalOp::Request(Request::Drop(crate::request::DropCvd {
                    cvd: name.to_string(),
                })),
            )?;
        }
        Ok(Response::Dropped {
            cvd: name.to_string(),
        })
    }
}

impl Executor for ConcurrentExecutor {
    fn execute(&mut self, request: Request) -> Result<Response> {
        match request {
            // Session-scoped identity: Login rebinds this executor without
            // touching the instance identity other sessions see.
            Request::Login(login) => {
                {
                    let cat = self.inner.catalog_read();
                    if !cat.access.has_user(&login.user) {
                        return Err(CoreError::Invalid(format!("unknown user {}", login.user)));
                    }
                }
                self.user = login.user.clone();
                Ok(Response::LoggedIn { user: login.user })
            }
            Request::Whoami => Ok(Response::CurrentUser {
                user: self.user.clone(),
            }),
            Request::CreateUser(r) => {
                let mut cat = self.inner.catalog_write();
                cat.ensure_writable()?;
                cat.access.create_user(&r.user)?;
                if let Some(wal) = &cat.wal {
                    wal.append(
                        &self.user,
                        0,
                        &WalOp::Request(Request::CreateUser(r.clone())),
                    )?;
                }
                Ok(Response::UserCreated { user: r.user })
            }
            Request::Ls => Ok(Response::CvdList(self.ls())),
            Request::Init(ref r) => {
                let name = r.cvd.clone();
                self.create_cvd(&name, request)
            }
            Request::InitFromCsv(ref r) => {
                let name = r.cvd.clone();
                self.create_cvd(&name, request)
            }
            Request::Drop(r) => self.drop_cvd(&r.cvd),
            // Run goes through the guarded session path: the bus must not
            // be a way around the Section 2.3 staged-table access rule.
            Request::Run(run) => Ok(Response::Rows(self.run(&run.sql)?)),
            // Log only reads the version graph: served from the CVD's
            // MVCC snapshot, so history inspection never waits on a
            // writer.
            Request::Log(l) => self.on_snapshot(
                |cat| cat.shard(&l.cvd),
                |odb| {
                    let entries = odb.log_entries(&l.cvd)?;
                    Ok(Response::Log {
                        cvd: l.cvd.clone(),
                        entries,
                    })
                },
            ),
            // Diff likewise reads two immutable versions: snapshot-served.
            Request::Diff(d) => {
                let cvd = d.cvd.clone();
                self.on_snapshot(
                    move |cat| cat.shard(&cvd),
                    move |odb| odb.execute(Request::Diff(d)),
                )
            }
            // Everything else routes to one CVD's lock, delegating to the
            // single-threaded executor under the session identity.
            other => {
                enum Route {
                    Cvd(String),
                    Reserve(String, StagedKind, String),
                    Staged(StagedKind, String),
                }
                let route = match other.target() {
                    Target::Cvd(cvd) => match &other {
                        Request::Checkout(c) => {
                            Route::Reserve(cvd.to_string(), StagedKind::Table, c.table.clone())
                        }
                        Request::CheckoutCsv(c) => {
                            Route::Reserve(cvd.to_string(), StagedKind::Csv, c.path.clone())
                        }
                        _ => Route::Cvd(cvd.to_string()),
                    },
                    Target::StagedTable(name) => Route::Staged(StagedKind::Table, name.to_string()),
                    Target::StagedCsv(path) => Route::Staged(StagedKind::Csv, path.to_string()),
                    Target::Catalog(_) | Target::Sql(_) => {
                        unreachable!("catalog and SQL requests handled above")
                    }
                };
                match route {
                    Route::Cvd(cvd) => {
                        self.locked(|cat| cat.shard(&cvd), move |odb| odb.execute(other))
                    }
                    Route::Reserve(cvd, kind, name) => {
                        self.park_checkout(&cvd, kind, &name, move |odb| odb.execute(other.clone()))
                    }
                    Route::Staged(kind, name) => {
                        self.with_staged(kind, &name, move |odb| odb.execute(other))
                    }
                }
            }
        }
    }

    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        self.execute_batch(requests.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Sessions.
// ---------------------------------------------------------------------------

/// One user's handle on a [`SharedOrpheusDB`].
///
/// Every operation routes through the per-CVD locking scheme (see
/// [`ConcurrentExecutor`]): writes acquire the owning CVD's lock, while
/// reads — [`Session::checkout`], [`Session::diff`],
/// [`Session::version_rows`], single-CVD SELECTs — resolve against the
/// shard's MVCC snapshot without blocking on any writer. Either way the
/// operation runs under this session's identity (switched in, then
/// restored) — so sessions on different threads interleave without
/// identity leaks, ownership checks (commit, discard) apply per session,
/// and sessions working on *different* CVDs execute in parallel.
#[derive(Debug, Clone)]
pub struct Session {
    exec: ConcurrentExecutor,
}

impl Session {
    /// The identity this session operates under.
    pub fn user(&self) -> &str {
        self.exec.user()
    }

    /// The routing executor behind this session.
    pub fn executor(&self) -> &ConcurrentExecutor {
        &self.exec
    }

    /// `checkout` into a private staged table owned by this session's user.
    pub fn checkout(&self, cvd: &str, vids: &[Vid], table: &str) -> Result<()> {
        self.exec.checkout(cvd, vids, table)
    }

    /// `commit` a staged table (must be owned by this session's user).
    pub fn commit(&self, table: &str, message: &str) -> Result<Vid> {
        self.exec.commit(table, message)
    }

    /// Abandon a staged table without committing.
    pub fn discard(&self, table: &str) -> Result<()> {
        self.exec.discard(table)
    }

    /// Versioned SQL (`VERSION n OF CVD x`, `CVD x`); read-only access to
    /// CVDs needs no ownership, but statements referencing another user's
    /// staged table are rejected just like [`Session::sql`] — `run` passes
    /// plain SQL through untranslated, so it is the same surface.
    pub fn run(&self, sql: &str) -> Result<QueryResult> {
        self.exec.run(sql)
    }

    /// Plain SQL against staged tables. Statements referencing a staged
    /// table owned by a *different* user are rejected — the access rule of
    /// Section 2.3 ("only the user who performed the checkout operation is
    /// permitted access to the materialized table"). (Named `sql` so the
    /// bus-level [`Executor::execute`] keeps the `execute` name.)
    pub fn sql(&self, sql: &str) -> Result<QueryResult> {
        self.exec.sql(sql)
    }

    /// `diff` two versions of a CVD.
    pub fn diff(&self, cvd: &str, a: Vid, b: Vid) -> Result<VersionDiff> {
        self.exec.diff(cvd, a, b)
    }

    /// The `(rid, row)` pairs of one version, resolved against the CVD
    /// shard's MVCC snapshot — never blocks on a writer.
    pub fn version_rows(&self, cvd: &str, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
        self.exec.version_rows(cvd, vid)
    }

    /// List CVDs.
    pub fn ls(&self) -> Vec<String> {
        self.exec.ls()
    }

    /// Run the partition optimizer.
    pub fn optimize(&self, cvd: &str) -> Result<OptimizeReport> {
        self.exec.optimize(cvd)
    }

    /// A table name namespaced to this session's user, the conventional way
    /// to avoid staged-table name collisions between users.
    pub fn private_table(&self, name: &str) -> String {
        format!("{}__{}", self.user().to_ascii_lowercase(), name)
    }
}

/// Sessions execute the typed bus by delegating to their
/// [`ConcurrentExecutor`].
impl Executor for Session {
    fn execute(&mut self, request: Request) -> Result<Response> {
        self.exec.execute(request)
    }

    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        self.exec.execute_batch(requests.into_iter().collect())
    }
}

/// Reject SQL that references another user's staged table. The check
/// tokenizes the statement and compares identifiers against the staging
/// registry, which catches direct reads, writes, joins, and subqueries.
fn guard_sql(odb: &OrpheusDB, user: &str, sql: &str) -> Result<()> {
    let foreign: Vec<&crate::staging::StagedEntry> = odb
        .staged()
        .into_iter()
        .filter(|e| e.owner != user && matches!(e.kind, crate::staging::StagedKind::Table))
        .collect();
    if foreign.is_empty() {
        return Ok(());
    }
    let tokens = tokenize(sql).map_err(CoreError::from)?;
    for t in &tokens {
        if let Token::Ident(name) = t {
            if let Some(entry) = foreign.iter().find(|e| e.name.eq_ignore_ascii_case(name)) {
                return Err(CoreError::PermissionDenied(format!(
                    "{} belongs to {}, not {user}",
                    entry.name, entry.owner
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::{Column, DataType, Schema, Value};

    fn shared_with_cvd() -> SharedOrpheusDB {
        let mut odb = OrpheusDB::new();
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
        .with_primary_key(&["k"])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i), Value::Int(0)])
            .collect();
        odb.init_cvd("data", schema, rows, None).unwrap();
        SharedOrpheusDB::new(odb)
    }

    #[test]
    fn sessions_have_independent_identities() {
        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let bob = shared.session("bob").unwrap();
        assert_eq!(alice.user(), "alice");
        assert_eq!(bob.user(), "bob");
        // Registering the same user twice is fine.
        let alice2 = shared.session("alice").unwrap();
        assert_eq!(alice2.user(), "alice");
        // The instance-level identity is untouched by session creation.
        assert_eq!(
            shared.read(|odb| odb.access.whoami().to_string()),
            "default"
        );
    }

    #[test]
    fn ownership_is_enforced_across_sessions() {
        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let bob = shared.session("bob").unwrap();

        alice.checkout("data", &[Vid(1)], "alice_work").unwrap();
        // Bob cannot commit, discard, or run SQL against Alice's table.
        let err = bob.commit("alice_work", "steal").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob.discard("alice_work").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob.sql("SELECT count(*) FROM alice_work").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob.sql("UPDATE alice_work SET v = 9").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

        // Alice can do all of the above.
        alice
            .sql("UPDATE alice_work SET v = 1 WHERE k = 0")
            .unwrap();
        let vid = alice.commit("alice_work", "mine").unwrap();
        assert_eq!(vid, Vid(2));
    }

    #[test]
    fn identity_is_restored_after_each_operation() {
        let shared = shared_with_cvd();
        shared.write(|odb| {
            odb.access.create_user("root").unwrap();
            odb.access.login("root").unwrap();
        });
        let alice = shared.session("alice").unwrap();
        alice.checkout("data", &[Vid(1)], "w").unwrap();
        // The session operation must not leak alice as the global identity.
        assert_eq!(shared.read(|odb| odb.access.whoami().to_string()), "root");
    }

    #[test]
    fn concurrent_commits_from_many_users_are_all_recorded() {
        let shared = shared_with_cvd();
        const USERS: usize = 8;

        std::thread::scope(|scope| {
            for u in 0..USERS {
                let shared = shared.clone();
                scope.spawn(move || {
                    let session = shared.session(&format!("user{u}")).unwrap();
                    let table = session.private_table("work");
                    session.checkout("data", &[Vid(1)], &table).unwrap();
                    session
                        .sql(&format!("UPDATE {table} SET v = {u} WHERE k = {u}"))
                        .unwrap();
                    let vid = session.commit(&table, &format!("edit by user{u}")).unwrap();
                    // Each commit yields a distinct, valid version readable
                    // by anyone.
                    let n = session
                        .run(&format!(
                            "SELECT count(*) FROM VERSION {} OF CVD data",
                            vid.0
                        ))
                        .unwrap();
                    assert_eq!(n.scalar(), Some(&Value::Int(20)));
                });
            }
        });

        // All commits landed: v1 + one per user, each with 20 records and
        // a distinct message.
        shared.read(|odb| {
            let cvd = odb.cvd("data").unwrap();
            assert_eq!(cvd.num_versions(), 1 + USERS);
            let mut messages: Vec<&str> = cvd
                .versions
                .iter()
                .skip(1)
                .map(|m| m.message.as_str())
                .collect();
            messages.sort();
            let expected: Vec<String> = (0..USERS).map(|u| format!("edit by user{u}")).collect();
            assert_eq!(
                messages,
                expected.iter().map(|s| s.as_str()).collect::<Vec<_>>()
            );
            // No staged tables leak.
            assert!(odb.staged().is_empty());
        });
    }

    #[test]
    fn concurrent_readers_and_writers_interleave_safely() {
        let shared = shared_with_cvd();
        std::thread::scope(|scope| {
            // Writers: each commits 3 versions sequentially.
            for u in 0..3 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let s = shared.session(&format!("w{u}")).unwrap();
                    for i in 0..3 {
                        let t = s.private_table(&format!("t{i}"));
                        s.checkout("data", &[Vid(1)], &t).unwrap();
                        s.commit(&t, "tick").unwrap();
                    }
                });
            }
            // Readers: poll versioned queries while commits happen.
            for _ in 0..3 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let s = shared.session("reader").unwrap();
                    for _ in 0..10 {
                        let n = s.run("SELECT count(*) FROM VERSION 1 OF CVD data").unwrap();
                        assert_eq!(n.scalar(), Some(&Value::Int(20)));
                    }
                });
            }
        });
        shared.read(|odb| {
            assert_eq!(odb.cvd("data").unwrap().num_versions(), 10);
        });
    }

    #[test]
    fn sessions_execute_typed_requests() {
        use crate::request::{Checkout, Commit, Executor, Login, Request, Run};

        let shared = shared_with_cvd();
        let mut alice = shared.session("alice").unwrap();
        let response = alice
            .dispatch(Checkout::of("data").version(1u64).into_table("alice_bus"))
            .unwrap();
        assert_eq!(response.summary(), "checked out v1 into table alice_bus");
        alice.sql("UPDATE alice_bus SET v = 5 WHERE k = 1").unwrap();
        let response = alice
            .dispatch(Commit::table("alice_bus").message("via bus"))
            .unwrap();
        assert_eq!(response.version(), Some(Vid(2)));

        // The commit is attributed to the session user, and other sessions
        // are still denied.
        let mut bob = shared.session("bob").unwrap();
        alice
            .dispatch(Checkout::of("data").version(1u64).into_table("alice_bus2"))
            .unwrap();
        let err = bob
            .dispatch(Commit::table("alice_bus2").message("steal"))
            .unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

        // Whoami reports the session identity; Login rebinds the session
        // without touching the shared instance identity.
        let who = bob.execute(Request::Whoami).unwrap();
        assert_eq!(who.summary(), "bob");
        assert!(bob
            .execute(Request::Login(Login::as_user("nobody")))
            .is_err());
        bob.execute(Request::Login(Login::as_user("alice")))
            .unwrap();
        assert_eq!(bob.user(), "alice");
        bob.dispatch(Commit::table("alice_bus2").message("now allowed"))
            .unwrap();
        assert_eq!(
            shared.read(|odb| odb.access.whoami().to_string()),
            "default"
        );

        // Versioned queries flow through the same bus.
        let rows = alice
            .dispatch(Run::sql("SELECT count(*) FROM VERSION 2 OF CVD data"))
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn run_cannot_touch_foreign_staged_tables() {
        use crate::request::{Executor, Run};

        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let mut bob = shared.session("bob").unwrap();
        alice.checkout("data", &[Vid(1)], "alice_work").unwrap();

        // Neither the inherent `run` nor the bus `Run` request lets bob
        // read or write alice's staged table with plain pass-through SQL.
        let err = bob.run("UPDATE alice_work SET v = 9").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob
            .dispatch(Run::sql("SELECT count(*) FROM alice_work"))
            .unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

        // Versioned queries on the shared CVD remain open to everyone.
        let n = bob
            .dispatch(Run::sql("SELECT count(*) FROM VERSION 1 OF CVD data"))
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(20)));
        // And the owner can still run SQL against their own checkout.
        let n = alice.run("SELECT count(*) FROM alice_work").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn name_collisions_between_users_error_cleanly() {
        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let bob = shared.session("bob").unwrap();
        alice.checkout("data", &[Vid(1)], "work").unwrap();
        let err = bob.checkout("data", &[Vid(1)], "work").unwrap_err();
        assert!(
            err.to_string().contains("staged") || err.to_string().contains("exists"),
            "{err}"
        );
        // private_table sidesteps the collision.
        bob.checkout("data", &[Vid(1)], &bob.private_table("work"))
            .unwrap();
    }

    // -- per-CVD locking behavior ------------------------------------------

    /// Two CVDs under one shared instance, 10 rows each.
    fn shared_with_two_cvds() -> SharedOrpheusDB {
        let mut odb = OrpheusDB::new();
        for name in ["left", "right"] {
            let schema = Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ])
            .with_primary_key(&["k"])
            .unwrap();
            let rows: Vec<Vec<Value>> = (0..10)
                .map(|i| vec![Value::Int(i), Value::Int(0)])
                .collect();
            odb.init_cvd(name, schema, rows, None).unwrap();
        }
        SharedOrpheusDB::new(odb)
    }

    #[test]
    fn disjoint_cvd_commits_run_concurrently_and_land() {
        let shared = shared_with_two_cvds();
        std::thread::scope(|scope| {
            for (u, cvd) in [("alice", "left"), ("bob", "right")] {
                let shared = shared.clone();
                scope.spawn(move || {
                    let s = shared.session(u).unwrap();
                    for i in 0..4 {
                        let t = s.private_table(&format!("{cvd}_{i}"));
                        s.checkout(cvd, &[Vid(1)], &t).unwrap();
                        s.sql(&format!("UPDATE {t} SET v = {i} WHERE k = 0"))
                            .unwrap();
                        s.commit(&t, &format!("{u} {i}")).unwrap();
                    }
                });
            }
        });
        shared.read(|odb| {
            assert_eq!(odb.cvd("left").unwrap().num_versions(), 5);
            assert_eq!(odb.cvd("right").unwrap().num_versions(), 5);
            assert!(odb.staged().is_empty());
        });
    }

    #[test]
    fn cross_cvd_selects_and_writes_both_work() {
        let shared = shared_with_two_cvds();
        let session = shared.session("ana").unwrap();

        // A read-only SELECT spanning both CVDs runs on a merged snapshot.
        let n = session
            .run(
                "SELECT count(*) FROM VERSION 1 OF CVD left AS a, \
                 VERSION 1 OF CVD right AS b WHERE a.k = b.k",
            )
            .unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(10)));

        // A write spanning CVDs runs as a cross-CVD write transaction:
        // sorted shard locks, one execution, atomically visible.
        session.checkout("left", &[Vid(1)], "lw").unwrap();
        session.checkout("right", &[Vid(1)], "rw").unwrap();
        session.sql("UPDATE rw SET v = 1 WHERE k < 3").unwrap();
        session
            .sql("UPDATE lw SET v = (SELECT count(*) FROM rw WHERE rw.v = 1)")
            .unwrap();
        let n = session.sql("SELECT sum(v) FROM lw").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(30)));
        // Both staged tables commit back to their own CVDs afterwards.
        assert_eq!(session.commit("lw", "cross write").unwrap(), Vid(2));
        assert_eq!(session.commit("rw", "edited").unwrap(), Vid(2));
        shared.read(|odb| {
            assert_eq!(odb.cvd("left").unwrap().num_versions(), 2);
            assert_eq!(odb.cvd("right").unwrap().num_versions(), 2);
            assert!(odb.staged().is_empty());
        });
    }

    #[test]
    fn staged_names_stay_globally_unique_across_cvds() {
        let shared = shared_with_two_cvds();
        let s = shared.session("u").unwrap();
        s.checkout("left", &[Vid(1)], "work").unwrap();
        // The same table name cannot be staged from another CVD.
        let err = s.checkout("right", &[Vid(1)], "work").unwrap_err();
        assert!(err.to_string().contains("staged"), "{err}");
        // After a discard the name is free again, for any CVD.
        s.discard("work").unwrap();
        s.checkout("right", &[Vid(1)], "work").unwrap();
        s.commit("work", "reused name").unwrap();
        shared.read(|odb| {
            assert_eq!(odb.cvd("right").unwrap().num_versions(), 2);
        });
    }

    #[test]
    fn checkout_names_cannot_collide_with_side_tables_or_other_shards() {
        let shared = shared_with_two_cvds();
        let s = shared.session("u").unwrap();
        // A plain-SQL side table occupies its name globally: a checkout
        // into it is rejected up front (not discovered as a merge panic
        // later).
        s.sql("CREATE TABLE occupied (k INT)").unwrap();
        let err = s.checkout("left", &[Vid(1)], "occupied").unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        // Another CVD's backing-table namespace is off limits...
        let err = s.checkout("left", &[Vid(1)], "right__data").unwrap_err();
        assert!(err.to_string().contains("namespace"), "{err}");
        // ...while a checkout inside the *target* CVD's namespace that
        // collides with a real backing table still errors in the shard.
        assert!(s.checkout("left", &[Vid(1)], "left__data").is_err());
        // The snapshot paths stay collision-free afterwards.
        shared.read(|odb| assert_eq!(odb.ls().len(), 2));
        shared
            .save_to(
                &std::env::temp_dir()
                    .join(format!("orpheus-collision-{}.orpheus", std::process::id())),
            )
            .unwrap();
    }

    #[test]
    fn writes_joining_shard_and_side_tables_run_as_cross_cvd_transactions() {
        let shared = shared_with_two_cvds();
        let s = shared.session("u").unwrap();
        s.sql("CREATE TABLE side (k INT)").unwrap();
        s.sql("INSERT INTO side VALUES (7)").unwrap();
        s.checkout("left", &[Vid(1)], "work").unwrap();
        // A writing statement mixing a staged table (CVD shard) with a
        // side table (auxiliary shard) cannot run under one CVD lock; it
        // retries as a cross-CVD write transaction that merges the routed
        // shard with the auxiliary shard.
        s.sql("UPDATE work SET v = (SELECT count(*) FROM side)")
            .unwrap();
        let n = s.sql("SELECT count(*) FROM work WHERE v = 1").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(10)));
        // The side table stays in the auxiliary shard and the staged table
        // in its CVD's shard: both remain usable afterwards.
        s.sql("INSERT INTO side VALUES (8)").unwrap();
        s.sql("UPDATE work SET v = 7 WHERE k = 0").unwrap();
        s.commit("work", "fine").unwrap();
    }

    #[test]
    fn sql_joining_shard_and_side_tables_falls_back_to_snapshot() {
        let shared = shared_with_two_cvds();
        // A side table that belongs to no CVD lives in the auxiliary shard.
        let s = shared.session("u").unwrap();
        s.sql("CREATE TABLE side (k INT)").unwrap();
        s.sql("INSERT INTO side VALUES (1)").unwrap();
        s.sql("INSERT INTO side VALUES (2)").unwrap();
        // Joining it with a CVD's version routes to the CVD shard first,
        // then falls back to the merged snapshot.
        let n = s
            .run(
                "SELECT count(*) FROM VERSION 1 OF CVD left AS a, side \
                 WHERE a.k = side.k",
            )
            .unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn executor_routes_requests_by_target() {
        use crate::request::{Checkout, Commit, Diff, Log, Run};

        let shared = shared_with_two_cvds();
        let mut exec = shared.executor("driver").unwrap();
        exec.dispatch(Checkout::of("left").version(1u64).into_table("t"))
            .unwrap();
        let response = exec.dispatch(Commit::table("t").message("m")).unwrap();
        assert_eq!(response.version(), Some(Vid(2)));
        let response = exec.dispatch(Diff::of("left").between(1u64, 2u64)).unwrap();
        assert_eq!(
            response.summary(),
            "0 record(s) only in v1, 0 record(s) only in v2"
        );
        let response = exec.dispatch(Log::of("right")).unwrap();
        assert!(matches!(response, Response::Log { ref entries, .. } if entries.len() == 1));
        let rows = exec
            .dispatch(Run::sql("SELECT count(*) FROM VERSION 2 OF CVD left"))
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.scalar(), Some(&Value::Int(10)));
        // Unknown CVDs surface as CvdNotFound through every route.
        assert!(matches!(
            exec.dispatch(Log::of("nope")).unwrap_err(),
            CoreError::CvdNotFound(_)
        ));
        assert!(matches!(
            exec.dispatch(Checkout::of("nope").version(1u64).into_table("x"))
                .unwrap_err(),
            CoreError::CvdNotFound(_)
        ));
        assert!(matches!(
            exec.dispatch(Commit::table("never_staged")).unwrap_err(),
            CoreError::NotStaged(_)
        ));
    }

    #[test]
    fn snapshot_roundtrips_through_persistence() {
        let shared = shared_with_two_cvds();
        let s = shared.session("u").unwrap();
        s.checkout("left", &[Vid(1)], "w").unwrap();
        s.commit("w", "v2").unwrap();

        let path = std::env::temp_dir().join(format!(
            "orpheus-concurrent-snapshot-{}.orpheus",
            std::process::id()
        ));
        shared.save_to(&path).unwrap();
        let restored = SharedOrpheusDB::load_from(&path).unwrap();
        restored.read(|odb| {
            assert_eq!(odb.ls(), vec!["left", "right"]);
            assert_eq!(odb.cvd("left").unwrap().num_versions(), 2);
        });
        // The restored instance is fully operational, per CVD.
        let s = restored.session("u").unwrap();
        s.checkout("right", &[Vid(1)], "w2").unwrap();
        s.commit("w2", "after reload").unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_requests_coalesce_per_shard_and_preserve_order() {
        use crate::request::{Checkout, Commit, Run};

        let shared = shared_with_two_cvds();
        let mut session = shared.session("batcher").unwrap();
        let requests: Vec<Request> = vec![
            Checkout::of("left").version(1u64).into_table("l0").into(),
            Checkout::of("right").version(1u64).into_table("r0").into(),
            Commit::table("l0").message("left edit").into(),
            Checkout::of("left").version(1u64).into_table("l1").into(),
            Commit::table("r0").message("right edit").into(),
            Commit::table("l1").message("left second").into(),
            Run::sql("SELECT count(*) FROM VERSION 1 OF CVD left").into(),
        ];
        let results = session.batch(requests);
        assert_eq!(results.len(), 7);
        for (i, r) in results.iter().enumerate() {
            assert!(r.is_ok(), "request {i}: {r:?}");
        }
        // Responses answer their submission positions, even though the
        // sub-batches grouped per CVD.
        assert_eq!(results[2].as_ref().unwrap().version(), Some(Vid(2)));
        assert_eq!(results[4].as_ref().unwrap().version(), Some(Vid(2)));
        assert_eq!(results[5].as_ref().unwrap().version(), Some(Vid(3)));
        assert_eq!(
            results[6].as_ref().unwrap().rows().unwrap().scalar(),
            Some(&Value::Int(10))
        );
        shared.read(|odb| {
            assert_eq!(odb.cvd("left").unwrap().num_versions(), 3);
            assert_eq!(odb.cvd("right").unwrap().num_versions(), 2);
            assert!(odb.staged().is_empty());
        });
    }

    #[test]
    fn batch_failures_release_reservations_and_later_requests_run() {
        use crate::request::{Checkout, Commit};

        let shared = shared_with_cvd();
        let mut session = shared.session("u").unwrap();
        let requests: Vec<Request> = vec![
            // Fails inside the shard (unknown version) after its name was
            // reserved in the catalog.
            Checkout::of("data").version(99u64).into_table("bad").into(),
            Checkout::of("data").version(1u64).into_table("good").into(),
            Commit::table("good").message("fine").into(),
        ];
        let results = session.batch(requests);
        assert!(
            matches!(results[0], Err(CoreError::VersionNotFound { .. })),
            "{:?}",
            results[0]
        );
        assert!(results[1].is_ok());
        assert_eq!(results[2].as_ref().unwrap().version(), Some(Vid(2)));
        // The failed checkout's reservation was released: the name is free
        // again for the very next request.
        session.checkout("data", &[Vid(1)], "bad").unwrap();
        session.discard("bad").unwrap();
        shared.read(|odb| assert!(odb.staged().is_empty()));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn reentering_the_catalog_from_a_write_closure_panics_loudly() {
        let shared = shared_with_cvd();
        let reentrant = shared.clone();
        // `write` holds the catalog lock for the closure's duration;
        // calling back into the shared instance would deadlock silently in
        // release builds — the guard panics instead.
        shared.write(move |_| {
            reentrant.read(|_| ());
        });
    }
}
