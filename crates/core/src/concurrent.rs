//! Multi-user sessions over one shared OrpheusDB instance.
//!
//! The paper's deployment has many data scientists talking to one
//! PostgreSQL through the middleware; each user sees their own identity
//! (for the access controller's only-the-owner-may-touch-a-checkout rule,
//! Section 2.3) while commits and checkouts interleave safely. This module
//! provides that: [`SharedOrpheusDB`] wraps an instance in a reader-writer
//! lock, and [`Session`] binds a user identity to it.
//!
//! Concurrency model: operations are serialized by the lock — the
//! middleware guarantees *isolation and safety*, not parallel scaling of a
//! single instance (the paper's concurrency story is the same: PostgreSQL
//! serializes conflicting writes; checkout tables are private by access
//! control, not by separate storage). Session identity is swapped under
//! the lock, so interleaved sessions can never observe or act under each
//! other's identity.

use std::sync::Arc;

use parking_lot::RwLock;

use orpheus_engine::sql::lexer::{tokenize, Token};
use orpheus_engine::QueryResult;

use crate::db::{OrpheusDB, VersionDiff};
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::partition_store::OptimizeReport;
use crate::request::{Executor, Request};
use crate::response::Response;

/// A thread-safe, shareable OrpheusDB instance.
#[derive(Debug, Clone, Default)]
pub struct SharedOrpheusDB {
    inner: Arc<RwLock<OrpheusDB>>,
}

impl SharedOrpheusDB {
    /// Wrap an instance for shared use.
    pub fn new(odb: OrpheusDB) -> SharedOrpheusDB {
        SharedOrpheusDB {
            inner: Arc::new(RwLock::new(odb)),
        }
    }

    /// Open a session for `user`, registering the account if it does not
    /// exist yet (the `create_user` + `config` flow in one step).
    pub fn session(&self, user: &str) -> Result<Session> {
        {
            let mut odb = self.inner.write();
            if !odb.access.users().iter().any(|u| u == user) {
                odb.access.create_user(user)?;
            }
        }
        Ok(Session {
            db: Arc::clone(&self.inner),
            user: user.to_string(),
        })
    }

    /// Run a closure with shared (read) access to the instance.
    pub fn read<T>(&self, f: impl FnOnce(&OrpheusDB) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a closure with exclusive access to the instance (administrative
    /// escape hatch; sessions are the normal path).
    pub fn write<T>(&self, f: impl FnOnce(&mut OrpheusDB) -> T) -> T {
        f(&mut self.inner.write())
    }

    /// Persist the instance snapshot (see [`crate::persist`]).
    pub fn save_to(&self, path: &std::path::Path) -> Result<()> {
        self.inner.read().save_to(path)
    }
}

/// One user's handle on a [`SharedOrpheusDB`].
///
/// Every operation acquires the instance lock, switches the access
/// controller to this session's user, runs, and restores the previous
/// identity — so sessions on different threads interleave without identity
/// leaks, and ownership checks (commit, discard) apply per session.
#[derive(Debug, Clone)]
pub struct Session {
    db: Arc<RwLock<OrpheusDB>>,
    user: String,
}

impl Session {
    /// The identity this session operates under.
    pub fn user(&self) -> &str {
        &self.user
    }

    fn with<T>(&self, f: impl FnOnce(&mut OrpheusDB) -> Result<T>) -> Result<T> {
        let mut odb = self.db.write();
        let prior = odb.access.whoami().to_string();
        odb.access.login(&self.user)?;
        let result = f(&mut odb);
        // Restore the instance-level identity regardless of the outcome.
        let _ = odb.access.login(&prior);
        result
    }

    /// `checkout` into a private staged table owned by this session's user.
    pub fn checkout(&self, cvd: &str, vids: &[Vid], table: &str) -> Result<()> {
        self.with(|odb| odb.checkout(cvd, vids, table))
    }

    /// `commit` a staged table (must be owned by this session's user).
    pub fn commit(&self, table: &str, message: &str) -> Result<Vid> {
        self.with(|odb| odb.commit(table, message))
    }

    /// Abandon a staged table without committing.
    pub fn discard(&self, table: &str) -> Result<()> {
        self.with(|odb| odb.discard(table))
    }

    /// Versioned SQL (`VERSION n OF CVD x`, `CVD x`); read-only access to
    /// CVDs needs no ownership, but statements referencing another user's
    /// staged table are rejected just like [`Session::sql`] — `run` passes
    /// plain SQL through untranslated, so it is the same surface.
    pub fn run(&self, sql: &str) -> Result<QueryResult> {
        self.with(|odb| {
            guard_sql(odb, &self.user, sql)?;
            odb.run(sql)
        })
    }

    /// Plain SQL against staged tables. Statements referencing a staged
    /// table owned by a *different* user are rejected — the access rule of
    /// Section 2.3 ("only the user who performed the checkout operation is
    /// permitted access to the materialized table"). (Named `sql` so the
    /// bus-level [`Executor::execute`] keeps the `execute` name.)
    pub fn sql(&self, sql: &str) -> Result<QueryResult> {
        self.with(|odb| {
            guard_sql(odb, &self.user, sql)?;
            Ok(odb.engine.execute(sql)?)
        })
    }

    /// `diff` two versions of a CVD.
    pub fn diff(&self, cvd: &str, a: Vid, b: Vid) -> Result<VersionDiff> {
        self.with(|odb| odb.diff(cvd, a, b))
    }

    /// List CVDs.
    pub fn ls(&self) -> Vec<String> {
        self.db.read().ls()
    }

    /// Run the partition optimizer.
    pub fn optimize(&self, cvd: &str) -> Result<OptimizeReport> {
        self.with(|odb| odb.optimize(cvd))
    }

    /// A table name namespaced to this session's user, the conventional way
    /// to avoid staged-table name collisions between users.
    pub fn private_table(&self, name: &str) -> String {
        format!("{}__{}", self.user.to_ascii_lowercase(), name)
    }
}

/// The shared, multi-user executor: each request runs under this session's
/// identity (acquired-lock identity swap, as for the inherent methods), so
/// ownership checks apply per session while many sessions share one
/// instance.
///
/// Two variants get session-level semantics instead of instance-level
/// ones: `Whoami` reports the session's user, and `Login` rebinds *this
/// session* to another existing user without touching the instance
/// identity other sessions see.
impl Executor for Session {
    fn execute(&mut self, request: Request) -> Result<Response> {
        match request {
            Request::Login(login) => {
                {
                    let odb = self.db.read();
                    if !odb.access.users().contains(&login.user) {
                        return Err(CoreError::Invalid(format!("unknown user {}", login.user)));
                    }
                }
                self.user = login.user.clone();
                Ok(Response::LoggedIn { user: login.user })
            }
            Request::Whoami => Ok(Response::CurrentUser {
                user: self.user.clone(),
            }),
            // Run goes through the guarded session path: the bus must not
            // be a way around the Section 2.3 staged-table access rule.
            Request::Run(run) => Ok(Response::Rows(self.run(&run.sql)?)),
            other => self.with(|odb| odb.execute(other)),
        }
    }
}

/// Reject SQL that references another user's staged table. The check
/// tokenizes the statement and compares identifiers against the staging
/// registry, which catches direct reads, writes, joins, and subqueries.
fn guard_sql(odb: &OrpheusDB, user: &str, sql: &str) -> Result<()> {
    let foreign: Vec<&crate::staging::StagedEntry> = odb
        .staged()
        .into_iter()
        .filter(|e| e.owner != user && matches!(e.kind, crate::staging::StagedKind::Table))
        .collect();
    if foreign.is_empty() {
        return Ok(());
    }
    let tokens = tokenize(sql).map_err(CoreError::from)?;
    for t in &tokens {
        if let Token::Ident(name) = t {
            if let Some(entry) = foreign.iter().find(|e| e.name.eq_ignore_ascii_case(name)) {
                return Err(CoreError::PermissionDenied(format!(
                    "{} belongs to {}, not {user}",
                    entry.name, entry.owner
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::{Column, DataType, Schema, Value};

    fn shared_with_cvd() -> SharedOrpheusDB {
        let mut odb = OrpheusDB::new();
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
        .with_primary_key(&["k"])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Int(i), Value::Int(0)])
            .collect();
        odb.init_cvd("data", schema, rows, None).unwrap();
        SharedOrpheusDB::new(odb)
    }

    #[test]
    fn sessions_have_independent_identities() {
        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let bob = shared.session("bob").unwrap();
        assert_eq!(alice.user(), "alice");
        assert_eq!(bob.user(), "bob");
        // Registering the same user twice is fine.
        let alice2 = shared.session("alice").unwrap();
        assert_eq!(alice2.user(), "alice");
        // The instance-level identity is untouched by session creation.
        assert_eq!(
            shared.read(|odb| odb.access.whoami().to_string()),
            "default"
        );
    }

    #[test]
    fn ownership_is_enforced_across_sessions() {
        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let bob = shared.session("bob").unwrap();

        alice.checkout("data", &[Vid(1)], "alice_work").unwrap();
        // Bob cannot commit, discard, or run SQL against Alice's table.
        let err = bob.commit("alice_work", "steal").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob.discard("alice_work").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob.sql("SELECT count(*) FROM alice_work").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob.sql("UPDATE alice_work SET v = 9").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

        // Alice can do all of the above.
        alice
            .sql("UPDATE alice_work SET v = 1 WHERE k = 0")
            .unwrap();
        let vid = alice.commit("alice_work", "mine").unwrap();
        assert_eq!(vid, Vid(2));
    }

    #[test]
    fn identity_is_restored_after_each_operation() {
        let shared = shared_with_cvd();
        shared.write(|odb| {
            odb.access.create_user("root").unwrap();
            odb.access.login("root").unwrap();
        });
        let alice = shared.session("alice").unwrap();
        alice.checkout("data", &[Vid(1)], "w").unwrap();
        // The session operation must not leak alice as the global identity.
        assert_eq!(shared.read(|odb| odb.access.whoami().to_string()), "root");
    }

    #[test]
    fn concurrent_commits_from_many_users_are_all_recorded() {
        let shared = shared_with_cvd();
        const USERS: usize = 8;

        std::thread::scope(|scope| {
            for u in 0..USERS {
                let shared = shared.clone();
                scope.spawn(move || {
                    let session = shared.session(&format!("user{u}")).unwrap();
                    let table = session.private_table("work");
                    session.checkout("data", &[Vid(1)], &table).unwrap();
                    session
                        .sql(&format!("UPDATE {table} SET v = {u} WHERE k = {u}"))
                        .unwrap();
                    let vid = session.commit(&table, &format!("edit by user{u}")).unwrap();
                    // Each commit yields a distinct, valid version readable
                    // by anyone.
                    let n = session
                        .run(&format!(
                            "SELECT count(*) FROM VERSION {} OF CVD data",
                            vid.0
                        ))
                        .unwrap();
                    assert_eq!(n.scalar(), Some(&Value::Int(20)));
                });
            }
        });

        // All commits landed: v1 + one per user, each with 20 records and
        // a distinct message.
        shared.read(|odb| {
            let cvd = odb.cvd("data").unwrap();
            assert_eq!(cvd.num_versions(), 1 + USERS);
            let mut messages: Vec<&str> = cvd
                .versions
                .iter()
                .skip(1)
                .map(|m| m.message.as_str())
                .collect();
            messages.sort();
            let expected: Vec<String> = (0..USERS).map(|u| format!("edit by user{u}")).collect();
            assert_eq!(
                messages,
                expected.iter().map(|s| s.as_str()).collect::<Vec<_>>()
            );
            // No staged tables leak.
            assert!(odb.staged().is_empty());
        });
    }

    #[test]
    fn concurrent_readers_and_writers_interleave_safely() {
        let shared = shared_with_cvd();
        std::thread::scope(|scope| {
            // Writers: each commits 3 versions sequentially.
            for u in 0..3 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let s = shared.session(&format!("w{u}")).unwrap();
                    for i in 0..3 {
                        let t = s.private_table(&format!("t{i}"));
                        s.checkout("data", &[Vid(1)], &t).unwrap();
                        s.commit(&t, "tick").unwrap();
                    }
                });
            }
            // Readers: poll versioned queries while commits happen.
            for _ in 0..3 {
                let shared = shared.clone();
                scope.spawn(move || {
                    let s = shared.session("reader").unwrap();
                    for _ in 0..10 {
                        let n = s.run("SELECT count(*) FROM VERSION 1 OF CVD data").unwrap();
                        assert_eq!(n.scalar(), Some(&Value::Int(20)));
                    }
                });
            }
        });
        shared.read(|odb| {
            assert_eq!(odb.cvd("data").unwrap().num_versions(), 10);
        });
    }

    #[test]
    fn sessions_execute_typed_requests() {
        use crate::request::{Checkout, Commit, Executor, Login, Request, Run};

        let shared = shared_with_cvd();
        let mut alice = shared.session("alice").unwrap();
        let response = alice
            .dispatch(Checkout::of("data").version(1u64).into_table("alice_bus"))
            .unwrap();
        assert_eq!(response.summary(), "checked out v1 into table alice_bus");
        alice.sql("UPDATE alice_bus SET v = 5 WHERE k = 1").unwrap();
        let response = alice
            .dispatch(Commit::table("alice_bus").message("via bus"))
            .unwrap();
        assert_eq!(response.version(), Some(Vid(2)));

        // The commit is attributed to the session user, and other sessions
        // are still denied.
        let mut bob = shared.session("bob").unwrap();
        alice
            .dispatch(Checkout::of("data").version(1u64).into_table("alice_bus2"))
            .unwrap();
        let err = bob
            .dispatch(Commit::table("alice_bus2").message("steal"))
            .unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

        // Whoami reports the session identity; Login rebinds the session
        // without touching the shared instance identity.
        let who = bob.execute(Request::Whoami).unwrap();
        assert_eq!(who.summary(), "bob");
        assert!(bob
            .execute(Request::Login(Login::as_user("nobody")))
            .is_err());
        bob.execute(Request::Login(Login::as_user("alice")))
            .unwrap();
        assert_eq!(bob.user(), "alice");
        bob.dispatch(Commit::table("alice_bus2").message("now allowed"))
            .unwrap();
        assert_eq!(
            shared.read(|odb| odb.access.whoami().to_string()),
            "default"
        );

        // Versioned queries flow through the same bus.
        let rows = alice
            .dispatch(Run::sql("SELECT count(*) FROM VERSION 2 OF CVD data"))
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(rows.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn run_cannot_touch_foreign_staged_tables() {
        use crate::request::{Executor, Run};

        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let mut bob = shared.session("bob").unwrap();
        alice.checkout("data", &[Vid(1)], "alice_work").unwrap();

        // Neither the inherent `run` nor the bus `Run` request lets bob
        // read or write alice's staged table with plain pass-through SQL.
        let err = bob.run("UPDATE alice_work SET v = 9").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
        let err = bob
            .dispatch(Run::sql("SELECT count(*) FROM alice_work"))
            .unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

        // Versioned queries on the shared CVD remain open to everyone.
        let n = bob
            .dispatch(Run::sql("SELECT count(*) FROM VERSION 1 OF CVD data"))
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(20)));
        // And the owner can still run SQL against their own checkout.
        let n = alice.run("SELECT count(*) FROM alice_work").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(20)));
    }

    #[test]
    fn name_collisions_between_users_error_cleanly() {
        let shared = shared_with_cvd();
        let alice = shared.session("alice").unwrap();
        let bob = shared.session("bob").unwrap();
        alice.checkout("data", &[Vid(1)], "work").unwrap();
        let err = bob.checkout("data", &[Vid(1)], "work").unwrap_err();
        assert!(
            err.to_string().contains("staged") || err.to_string().contains("exists"),
            "{err}"
        );
        // private_table sidesteps the collision.
        bob.checkout("data", &[Vid(1)], &bob.private_table("work"))
            .unwrap();
    }
}
