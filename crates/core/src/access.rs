//! Access controller (Section 2.3): user registry plus the rule that only
//! the user who checked a table out may read, modify, or commit it.

use std::collections::HashSet;

use crate::error::{CoreError, Result};

/// User accounts and the current session identity.
#[derive(Debug, Clone)]
pub struct AccessController {
    users: HashSet<String>,
    current: String,
}

impl Default for AccessController {
    fn default() -> Self {
        let mut users = HashSet::new();
        users.insert("default".to_string());
        AccessController {
            users,
            current: "default".to_string(),
        }
    }
}

impl AccessController {
    /// `create_user`: register a new account.
    pub fn create_user(&mut self, name: &str) -> Result<()> {
        if name.is_empty() {
            return Err(CoreError::Invalid("user name cannot be empty".into()));
        }
        if !self.users.insert(name.to_string()) {
            return Err(CoreError::Invalid(format!("user {name} already exists")));
        }
        Ok(())
    }

    /// `config`: switch the session to an existing user.
    pub fn login(&mut self, name: &str) -> Result<()> {
        if !self.users.contains(name) {
            return Err(CoreError::Invalid(format!("unknown user {name}")));
        }
        self.current = name.to_string();
        Ok(())
    }

    /// `whoami`.
    pub fn whoami(&self) -> &str {
        &self.current
    }

    /// Whether an account exists (cheaper than scanning [`Self::users`]).
    pub fn has_user(&self, name: &str) -> bool {
        self.users.contains(name)
    }

    /// Register `name` if it is not already an account. Used by the
    /// session layer, where opening a session doubles as registration.
    pub fn ensure_user(&mut self, name: &str) -> Result<()> {
        if self.has_user(name) {
            Ok(())
        } else {
            self.create_user(name)
        }
    }

    pub fn users(&self) -> Vec<String> {
        let mut v: Vec<String> = self.users.iter().cloned().collect();
        v.sort();
        v
    }

    /// Enforce that the current user owns a staged artifact.
    pub fn check_owner(&self, owner: &str, artifact: &str) -> Result<()> {
        if owner == self.current {
            Ok(())
        } else {
            Err(CoreError::PermissionDenied(format!(
                "{} belongs to {owner}, not {}",
                artifact, self.current
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_lifecycle() {
        let mut a = AccessController::default();
        assert_eq!(a.whoami(), "default");
        a.create_user("alice").unwrap();
        assert!(a.create_user("alice").is_err());
        assert!(a.login("bob").is_err());
        a.login("alice").unwrap();
        assert_eq!(a.whoami(), "alice");
        assert_eq!(a.users(), vec!["alice", "default"]);
    }

    #[test]
    fn ownership_enforced() {
        let mut a = AccessController::default();
        a.create_user("alice").unwrap();
        a.login("alice").unwrap();
        assert!(a.check_owner("alice", "t1").is_ok());
        let err = a.check_owner("default", "t1").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)));
    }
}
