//! The query translator (Section 2.2): rewrites versioned SQL into plain
//! SQL the engine understands.
//!
//! Supported constructs:
//! * `... FROM VERSION n OF CVD x [AS alias] ...` — query one version as a
//!   relation (joins across versions work by listing several).
//! * `... FROM CVD x [AS alias] ...` — the whole CVD as a relation with an
//!   extra `vid` column, enabling aggregates grouped by version and
//!   version-selection predicates (`HAVING count(*) > 50` etc.).
//!
//! Rewrites are model-specific. The delta model cannot express these
//! queries without reconstructing every version — exactly the drawback the
//! paper cites for delta storage — so translation reports an error for it.

use orpheus_engine::sql::lexer::{tokenize, Token};

use crate::cvd::Cvd;
use crate::db::OrpheusDB;
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::ModelKind;

/// Whether a statement is a plain `SELECT`. Batching executors use this to
/// decide when a statement can be retried on a read snapshot and when it
/// may invalidate cached version scans (a non-SELECT can write anywhere,
/// including a model's backing tables). Unparsable SQL reports `false` —
/// callers treat it as potentially writing and let execution surface the
/// parse error. `SELECT ... INTO t` materializes a table, so it reports
/// `false` too: serving it from an MVCC snapshot would silently discard
/// the created table.
pub fn is_select(sql: &str) -> bool {
    tokenize(sql)
        .map(|tokens| {
            tokens.first().is_some_and(|t| t.is_kw("select"))
                && !tokens.iter().any(|t| t.is_kw("into"))
        })
        .unwrap_or(false)
}

/// Translate versioned SQL into engine SQL.
pub fn translate(odb: &OrpheusDB, sql: &str) -> Result<String> {
    let tokens = tokenize(sql).map_err(CoreError::from)?;
    let mut out = String::new();
    let mut i = 0;
    let mut fresh = 0usize;
    while i < tokens.len() {
        // Pattern: VERSION <n> OF CVD <name> [AS alias | alias]
        if tokens[i].is_kw("version") {
            if let (Some(Token::Number(n)), Some(of), Some(cvd_kw), Some(Token::Ident(name))) = (
                tokens.get(i + 1),
                tokens.get(i + 2),
                tokens.get(i + 3),
                tokens.get(i + 4),
            ) {
                if of.is_kw("of") && cvd_kw.is_kw("cvd") {
                    let vid = Vid(n.parse::<u64>().map_err(|_| {
                        CoreError::bad_request(
                            crate::request::CommandKind::Run,
                            format!("bad version number {n}"),
                        )
                    })?);
                    let cvd = odb.cvd(name)?;
                    cvd.check_version(vid)?;
                    let (alias, consumed) = parse_alias(&tokens, i + 5, &cvd.name);
                    out.push_str(&version_subquery(cvd, vid, &alias, &mut fresh)?);
                    out.push(' ');
                    i += 5 + consumed;
                    continue;
                }
            }
        }
        // Pattern: CVD <name> [AS alias | alias]
        if tokens[i].is_kw("cvd") {
            if let Some(Token::Ident(name)) = tokens.get(i + 1) {
                let cvd = odb.cvd(name)?;
                let (alias, consumed) = parse_alias(&tokens, i + 2, &cvd.name);
                out.push_str(&whole_cvd_subquery(cvd, &alias, &mut fresh)?);
                out.push(' ');
                i += 2 + consumed;
                continue;
            }
        }
        if tokens[i] == Token::Eof {
            break;
        }
        out.push_str(&token_text(&tokens[i]));
        out.push(' ');
        i += 1;
    }
    Ok(out.trim_end().to_string())
}

/// Parse an optional `[AS] alias` following a versioned relation.
fn parse_alias(tokens: &[Token], start: usize, default: &str) -> (String, usize) {
    if let Some(t) = tokens.get(start) {
        if t.is_kw("as") {
            if let Some(Token::Ident(a)) = tokens.get(start + 1) {
                return (a.clone(), 2);
            }
        }
        if let Token::Ident(a) = t {
            if !is_clause_keyword(a) {
                return (a.clone(), 1);
            }
        }
    }
    (default.to_string(), 0)
}

fn is_clause_keyword(word: &str) -> bool {
    [
        "where", "group", "having", "order", "limit", "join", "inner", "on", "as", "select",
        "from", "union",
    ]
    .iter()
    .any(|k| word.eq_ignore_ascii_case(k))
}

fn attr_list(cvd: &Cvd) -> String {
    cvd.schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Subquery exposing one version's records under `alias`.
fn version_subquery(cvd: &Cvd, vid: Vid, alias: &str, fresh: &mut usize) -> Result<String> {
    *fresh += 1;
    let k = *fresh;
    // Partitioned CVDs route to the version's partition tables.
    let (data, rlist) = match &cvd.partition {
        Some(state) if cvd.model == ModelKind::SplitByRlist => {
            let p = state.assignment[vid.index()];
            (
                format!("{}__g{}p{}_data", cvd.name, state.generation, p),
                format!("{}__g{}p{}_rlist", cvd.name, state.generation, p),
            )
        }
        _ => (cvd.data_table(), cvd.rlist_table()),
    };
    match cvd.model {
        ModelKind::SplitByRlist => Ok(format!(
            "(SELECT d.* FROM {data} AS d, \
             (SELECT unnest(rlist) AS __rid{k} FROM {rlist} WHERE vid = {v}) AS __t{k} \
             WHERE d.rid = __rid{k}) AS {alias}",
            v = vid.0
        )),
        ModelKind::SplitByVlist => Ok(format!(
            "(SELECT d.* FROM {data} AS d, \
             (SELECT rid AS __rid{k} FROM {vt} WHERE ARRAY[{v}] <@ vlist) AS __t{k} \
             WHERE d.rid = __rid{k}) AS {alias}",
            vt = cvd.vlist_table(),
            v = vid.0
        )),
        ModelKind::CombinedTable => Ok(format!(
            "(SELECT rid, {attrs} FROM {t} WHERE ARRAY[{v}] <@ vlist) AS {alias}",
            attrs = attr_list(cvd),
            t = cvd.combined_table(),
            v = vid.0
        )),
        ModelKind::TablePerVersion => Ok(format!(
            "(SELECT * FROM {t}) AS {alias}",
            t = cvd.version_table(vid)
        )),
        ModelKind::DeltaBased => Err(CoreError::Invalid(
            "the delta-based model cannot answer versioned queries directly; \
             checkout the version first (Section 3.1)"
                .into(),
        )),
    }
}

/// Subquery exposing the whole CVD (all versions) with a `vid` column.
fn whole_cvd_subquery(cvd: &Cvd, alias: &str, fresh: &mut usize) -> Result<String> {
    *fresh += 1;
    let k = *fresh;
    match cvd.model {
        ModelKind::SplitByRlist => Ok(format!(
            "(SELECT d.*, __t{k}.vid FROM {data} AS d, \
             (SELECT vid, unnest(rlist) AS __rid{k} FROM {rlist}) AS __t{k} \
             WHERE d.rid = __t{k}.__rid{k}) AS {alias}",
            data = cvd.data_table(),
            rlist = cvd.rlist_table()
        )),
        ModelKind::SplitByVlist => Ok(format!(
            "(SELECT d.*, __t{k}.vid FROM {data} AS d, \
             (SELECT rid AS __rid{k}, unnest(vlist) AS vid FROM {vt}) AS __t{k} \
             WHERE d.rid = __t{k}.__rid{k}) AS {alias}",
            data = cvd.data_table(),
            vt = cvd.vlist_table()
        )),
        ModelKind::CombinedTable => Ok(format!(
            "(SELECT rid, {attrs}, unnest(vlist) AS vid FROM {t}) AS {alias}",
            attrs = attr_list(cvd),
            t = cvd.combined_table()
        )),
        ModelKind::TablePerVersion => Err(CoreError::Invalid(
            "a-table-per-version requires a UNION across per-version tables \
             for whole-CVD queries; use the split-by-rlist model"
                .into(),
        )),
        ModelKind::DeltaBased => Err(CoreError::Invalid(
            "the delta-based model cannot answer whole-CVD queries directly \
             (Section 3.1)"
                .into(),
        )),
    }
}

fn token_text(t: &Token) -> String {
    match t {
        Token::Ident(s) => s.clone(),
        Token::Number(n) => n.clone(),
        Token::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Token::LParen => "(".into(),
        Token::RParen => ")".into(),
        Token::LBracket => "[".into(),
        Token::RBracket => "]".into(),
        Token::Comma => ",".into(),
        Token::Dot => ".".into(),
        Token::Semicolon => ";".into(),
        Token::Star => "*".into(),
        Token::Plus => "+".into(),
        Token::Minus => "-".into(),
        Token::Slash => "/".into(),
        Token::Percent => "%".into(),
        Token::Eq => "=".into(),
        Token::NotEq => "<>".into(),
        Token::Lt => "<".into(),
        Token::LtEq => "<=".into(),
        Token::Gt => ">".into(),
        Token::GtEq => ">=".into(),
        Token::Concat => "||".into(),
        Token::ContainedBy => "<@".into(),
        Token::Contains => "@>".into(),
        Token::Eof => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::{Column, DataType, Schema, Value};

    fn setup() -> OrpheusDB {
        let schema = Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("score", DataType::Int),
        ])
        .with_primary_key(&["protein1", "protein2"])
        .unwrap();
        let rows = vec![
            vec!["a".into(), "b".into(), Value::Int(10)],
            vec!["a".into(), "c".into(), Value::Int(95)],
        ];
        let mut odb = OrpheusDB::new();
        odb.init_cvd("protein", schema, rows, None).unwrap();
        // v2 adds one high-scoring record.
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("INSERT INTO w VALUES (NULL, 'x', 'y', 99)")
            .unwrap();
        odb.commit("w", "v2").unwrap();
        odb
    }

    #[test]
    fn version_of_cvd_queries_one_version() {
        let mut odb = setup();
        let r = odb
            .run("SELECT count(*) FROM VERSION 1 OF CVD protein")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        let r = odb
            .run("SELECT count(*) FROM VERSION 2 OF CVD protein")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn joins_across_versions_via_aliases() {
        let mut odb = setup();
        let r = odb
            .run(
                "SELECT count(*) FROM VERSION 1 OF CVD protein AS v1, \
                 VERSION 2 OF CVD protein AS v2 \
                 WHERE v1.protein1 = v2.protein1 AND v1.protein2 = v2.protein2",
            )
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn whole_cvd_aggregate_grouped_by_vid() {
        let mut odb = setup();
        // The motivating query of the introduction: per-version aggregate.
        let r = odb
            .run("SELECT vid, count(*) AS n FROM CVD protein GROUP BY vid ORDER BY vid")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(r.rows[1], vec![Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn version_selection_by_predicate() {
        let mut odb = setup();
        // "versions with at least 3 records".
        let r = odb
            .run("SELECT vid FROM CVD protein GROUP BY vid HAVING count(*) >= 3")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn plain_sql_passes_through() {
        let mut odb = setup();
        odb.engine.execute("CREATE TABLE side (x INT)").unwrap();
        odb.run("INSERT INTO side VALUES (1)").unwrap();
        let r = odb.run("SELECT count(*) FROM side").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn delta_model_reports_unsupported() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut odb = OrpheusDB::new();
        odb.init_cvd(
            "d",
            schema,
            vec![vec![Value::Int(1)]],
            Some(ModelKind::DeltaBased),
        )
        .unwrap();
        let err = odb.run("SELECT * FROM VERSION 1 OF CVD d").unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)));
    }

    #[test]
    fn works_for_all_array_models() {
        for model in [
            ModelKind::CombinedTable,
            ModelKind::SplitByVlist,
            ModelKind::SplitByRlist,
        ] {
            let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
            let mut odb = OrpheusDB::new();
            odb.init_cvd(
                "d",
                schema,
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
                Some(model),
            )
            .unwrap();
            let r = odb.run("SELECT count(*) FROM VERSION 1 OF CVD d").unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(2)), "model {}", model.name());
            let r = odb
                .run("SELECT vid, count(*) FROM CVD d GROUP BY vid")
                .unwrap();
            assert_eq!(r.rows.len(), 1, "model {}", model.name());
        }
    }

    #[test]
    fn partitioned_version_query_uses_partition_tables() {
        let mut odb = setup();
        odb.optimize("protein").unwrap();
        let r = odb
            .run("SELECT count(*) FROM VERSION 2 OF CVD protein")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn unknown_cvd_or_version_errors() {
        let mut odb = setup();
        assert!(odb.run("SELECT * FROM VERSION 1 OF CVD nope").is_err());
        assert!(odb.run("SELECT * FROM VERSION 99 OF CVD protein").is_err());
    }

    /// One CVD named `d` under `model`, with a single int column and one
    /// committed version.
    fn odb_with_model(model: ModelKind) -> OrpheusDB {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut odb = OrpheusDB::new();
        odb.init_cvd("d", schema, vec![vec![Value::Int(1)]], Some(model))
            .unwrap();
        odb
    }

    /// Table-driven: the exact shape `VERSION 1 OF CVD d` translates to
    /// under every data model.
    #[test]
    fn version_translation_per_model() {
        struct Case {
            model: ModelKind,
            // Substrings the translated SQL must contain, in order.
            expect: &'static [&'static str],
        }
        let cases = [
            Case {
                model: ModelKind::SplitByRlist,
                expect: &[
                    "d__data",
                    "unnest(rlist)",
                    "FROM d__rlist WHERE vid = 1",
                    "AS d",
                ],
            },
            Case {
                model: ModelKind::SplitByVlist,
                expect: &["d__data", "FROM d__vlist", "ARRAY[1] <@ vlist", "AS d"],
            },
            Case {
                model: ModelKind::CombinedTable,
                expect: &[
                    "SELECT rid, x FROM d__combined",
                    "ARRAY[1] <@ vlist",
                    "AS d",
                ],
            },
            Case {
                model: ModelKind::TablePerVersion,
                expect: &["SELECT * FROM d__v1", "AS d"],
            },
        ];
        for case in cases {
            let odb = odb_with_model(case.model);
            let sql = translate(&odb, "SELECT count(*) FROM VERSION 1 OF CVD d").unwrap();
            let mut cursor = 0;
            for needle in case.expect {
                let at = sql[cursor..]
                    .find(needle)
                    .unwrap_or_else(|| panic!("{}: {needle:?} not in {sql:?}", case.model.name()));
                cursor += at + needle.len();
            }
            // The translated SQL actually executes.
            let mut odb = odb_with_model(case.model);
            let r = odb.run("SELECT count(*) FROM VERSION 1 OF CVD d").unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(1)), "{}", case.model.name());
        }

        // The delta model refuses versioned queries with a structured error.
        let odb = odb_with_model(ModelKind::DeltaBased);
        let err = translate(&odb, "SELECT count(*) FROM VERSION 1 OF CVD d").unwrap_err();
        assert!(matches!(err, CoreError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("delta"), "{err}");
    }

    /// Table-driven: whole-CVD translation (`FROM CVD d`) per model,
    /// including the two models that cannot answer it.
    #[test]
    fn whole_cvd_translation_per_model() {
        for (model, expect) in [
            (ModelKind::SplitByRlist, "FROM d__rlist"),
            (ModelKind::SplitByVlist, "unnest(vlist)"),
            (ModelKind::CombinedTable, "unnest(vlist) AS vid"),
        ] {
            let odb = odb_with_model(model);
            let sql = translate(&odb, "SELECT vid, count(*) FROM CVD d GROUP BY vid").unwrap();
            assert!(sql.contains(expect), "{}: {sql:?}", model.name());
        }
        for model in [ModelKind::TablePerVersion, ModelKind::DeltaBased] {
            let odb = odb_with_model(model);
            let err = translate(&odb, "SELECT vid FROM CVD d GROUP BY vid").unwrap_err();
            assert!(
                matches!(err, CoreError::Invalid(_)),
                "{}: {err}",
                model.name()
            );
        }
    }

    /// Error paths of the translator itself (not the engine): unknown CVD,
    /// unknown version, malformed version number.
    #[test]
    fn translate_error_paths() {
        let odb = odb_with_model(ModelKind::SplitByRlist);
        let err = translate(&odb, "SELECT * FROM VERSION 1 OF CVD nope").unwrap_err();
        assert!(
            matches!(err, CoreError::CvdNotFound(ref n) if n == "nope"),
            "{err}"
        );
        let err = translate(&odb, "SELECT * FROM VERSION 99 OF CVD d").unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::VersionNotFound {
                    version: Vid(99),
                    ..
                }
            ),
            "{err}"
        );
        let err = translate(&odb, "SELECT * FROM CVD nope").unwrap_err();
        assert!(matches!(err, CoreError::CvdNotFound(_)), "{err}");
        // A version number too large for u64 is a bad `run` request.
        let err = translate(
            &odb,
            "SELECT * FROM VERSION 99999999999999999999999 OF CVD d",
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::BadRequest {
                    command: crate::request::CommandKind::Run,
                    ..
                }
            ),
            "{err}"
        );
    }
}
