//! The typed command bus: every paper command (Section 2.2) as a
//! [`Request`] variant with an ergonomic builder, executed by anything
//! implementing [`Executor`].
//!
//! The bus is the single public path for issuing commands: the CLI and
//! REPL parse text into `Request`s ([`crate::commands`]), programs build
//! them directly (`Checkout::of("protein").versions([1, 2]).into_table("w")`),
//! and [`crate::OrpheusDB`] (single-threaded), [`crate::Session`]
//! (shared, multi-user), and [`crate::AsyncExecutor`] (coordinator +
//! per-shard worker pool) all execute them. Because requests are plain
//! data, they can be queued, logged, replayed, batched
//! ([`Executor::batch`]), and dispatched asynchronously
//! ([`crate::async_exec`]) without touching any front-end.
//!
//! File I/O never appears on the bus: CSV-flavored requests carry file
//! *contents*, and [`crate::response::Response::CheckedOutCsv`] carries the
//! text to write back, so executors stay deterministic and testable.

use orpheus_engine::{Schema, Value};

use crate::error::Result;
use crate::ids::Vid;
use crate::model::ModelKind;
use crate::response::Response;

/// Anything that can execute typed commands: `OrpheusDB` directly, or a
/// `Session` over a shared instance.
pub trait Executor {
    /// Execute one typed request.
    fn execute(&mut self, request: Request) -> Result<Response>;

    /// Execute anything convertible into a [`Request`] — command structs
    /// and finished builders in particular.
    fn dispatch<R: Into<Request>>(&mut self, request: R) -> Result<Response>
    where
        Self: Sized,
    {
        self.execute(request.into())
    }

    /// Execute a batch of requests, collecting per-request outcomes.
    ///
    /// The contract, kept by every implementation:
    /// * **submission order** — entry `i` of the returned vector answers
    ///   request `i`;
    /// * **independent failures** — a failing request never aborts the
    ///   requests after it.
    ///
    /// The default runs the requests sequentially. Executors override it
    /// to coalesce work along a [`crate::batch::BatchPlan`]:
    /// [`crate::OrpheusDB`] shares one version-row scan across checkouts
    /// of the same version, [`crate::ConcurrentExecutor`] /
    /// [`crate::Session`] take each shard lock once per sub-batch instead
    /// of once per request, and [`crate::AsyncHandle`] pipelines the
    /// whole vector through the async worker pool (sub-batches of
    /// different CVDs may interleave; within one CVD, submission order is
    /// preserved).
    ///
    /// ```
    /// use orpheus_core::{Checkout, Commit, Executor, Init, OrpheusDB, Request, Vid};
    /// use orpheus_engine::{Column, DataType, Schema, Value};
    ///
    /// let mut odb = OrpheusDB::new();
    /// let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
    /// let results = odb.batch(vec![
    ///     Init::cvd("data").schema(schema).rows(vec![vec![Value::Int(1)]]).into(),
    ///     Checkout::of("data").version(1u64).into_table("w").into(),
    ///     Checkout::of("data").version(9u64).into_table("bad").into(), // fails
    ///     Commit::table("w").message("batched").into(),                // still runs
    /// ]);
    /// assert_eq!(results.len(), 4);
    /// assert!(results[0].is_ok() && results[1].is_ok());
    /// assert!(results[2].is_err());
    /// assert_eq!(results[3].as_ref().unwrap().version(), Some(Vid(2)));
    /// ```
    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        requests.into_iter().map(|r| self.execute(r)).collect()
    }
}

/// One typed command (Section 2.2's command set plus CSV variants).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Init(Init),
    InitFromCsv(InitFromCsv),
    Checkout(Checkout),
    CheckoutCsv(CheckoutCsv),
    Commit(Commit),
    CommitCsv(CommitCsv),
    Diff(Diff),
    Run(Run),
    Ls,
    Log(Log),
    Drop(DropCvd),
    Optimize(Optimize),
    CreateUser(CreateUser),
    Login(Login),
    Whoami,
    Discard(Discard),
}

impl Request {
    /// Which command family this request belongs to (used for structured
    /// errors and per-command accounting).
    pub fn kind(&self) -> CommandKind {
        match self {
            Request::Init(_) | Request::InitFromCsv(_) => CommandKind::Init,
            Request::Checkout(_) | Request::CheckoutCsv(_) => CommandKind::Checkout,
            Request::Commit(_) | Request::CommitCsv(_) => CommandKind::Commit,
            Request::Diff(_) => CommandKind::Diff,
            Request::Run(_) => CommandKind::Run,
            Request::Ls => CommandKind::Ls,
            Request::Log(_) => CommandKind::Log,
            Request::Drop(_) => CommandKind::Drop,
            Request::Optimize(_) => CommandKind::Optimize,
            Request::CreateUser(_) => CommandKind::CreateUser,
            Request::Login(_) => CommandKind::Login,
            Request::Whoami => CommandKind::Whoami,
            Request::Discard(_) => CommandKind::Discard,
        }
    }

    /// The lock granularity a request needs under per-CVD locking: which
    /// state it must pin exclusively before executing. Concurrent
    /// executors dispatch on this (together with [`Request::kind`]) to
    /// decide between the instance-wide catalog lock and one CVD's lock.
    pub fn target(&self) -> Target<'_> {
        match self {
            // Catalog mutations: CVD create/drop and the user registry.
            Request::Init(r) => Target::Catalog(Some(&r.cvd)),
            Request::InitFromCsv(r) => Target::Catalog(Some(&r.cvd)),
            Request::Drop(r) => Target::Catalog(Some(&r.cvd)),
            Request::CreateUser(_) | Request::Login(_) | Request::Whoami | Request::Ls => {
                Target::Catalog(None)
            }
            // Operations addressed to one CVD by name.
            Request::Checkout(r) => Target::Cvd(&r.cvd),
            Request::CheckoutCsv(r) => Target::Cvd(&r.cvd),
            Request::Diff(r) => Target::Cvd(&r.cvd),
            Request::Log(r) => Target::Cvd(&r.cvd),
            Request::Optimize(r) => Target::Cvd(&r.cvd),
            // Operations addressed to a staged artifact, whose CVD is
            // found through the staging index.
            Request::Commit(r) => Target::StagedTable(&r.table),
            Request::Discard(r) => Target::StagedTable(&r.table),
            Request::CommitCsv(r) => Target::StagedCsv(&r.path),
            // SQL needs analysis to discover which CVDs it touches.
            Request::Run(r) => Target::Sql(&r.sql),
        }
    }

    /// The CVD a request addresses directly by name, when it names one.
    /// `None` for catalog-wide requests without a CVD payload, staged-table
    /// requests (resolved through the staging index), and SQL.
    pub fn target_cvd(&self) -> Option<&str> {
        match self.target() {
            Target::Catalog(cvd) => cvd,
            Target::Cvd(cvd) => Some(cvd),
            Target::StagedTable(_) | Target::StagedCsv(_) | Target::Sql(_) => None,
        }
    }
}

/// What a request must lock before it can run (see [`Request::target`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target<'a> {
    /// Instance-wide state behind the catalog lock: the user registry and
    /// the CVD registry itself. Carries the CVD name for create/drop.
    Catalog(Option<&'a str>),
    /// One CVD's lock, addressed by name.
    Cvd(&'a str),
    /// One CVD's lock, found by resolving a staged table name.
    StagedTable(&'a str),
    /// One CVD's lock, found by resolving a staged CSV path.
    StagedCsv(&'a str),
    /// SQL text: the executor analyzes it for CVD and staged-table
    /// references to pick a lock (or a read-only multi-CVD snapshot).
    Sql(&'a str),
}

/// The command families of the bus, independent of request payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    Init,
    Checkout,
    Commit,
    Diff,
    Run,
    Ls,
    Log,
    Drop,
    Optimize,
    CreateUser,
    Login,
    Whoami,
    Discard,
}

impl CommandKind {
    pub const ALL: [CommandKind; 13] = [
        CommandKind::Init,
        CommandKind::Checkout,
        CommandKind::Commit,
        CommandKind::Diff,
        CommandKind::Run,
        CommandKind::Ls,
        CommandKind::Log,
        CommandKind::Drop,
        CommandKind::Optimize,
        CommandKind::CreateUser,
        CommandKind::Login,
        CommandKind::Whoami,
        CommandKind::Discard,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CommandKind::Init => "init",
            CommandKind::Checkout => "checkout",
            CommandKind::Commit => "commit",
            CommandKind::Diff => "diff",
            CommandKind::Run => "run",
            CommandKind::Ls => "ls",
            CommandKind::Log => "log",
            CommandKind::Drop => "drop",
            CommandKind::Optimize => "optimize",
            CommandKind::CreateUser => "create_user",
            CommandKind::Login => "config",
            CommandKind::Whoami => "whoami",
            CommandKind::Discard => "discard",
        }
    }
}

impl std::fmt::Display for CommandKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// -- init ---------------------------------------------------------------------

/// `init`: create a CVD from typed rows (version 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Init {
    pub cvd: String,
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
    pub model: Option<ModelKind>,
}

impl Init {
    /// Start building: `Init::cvd("protein").schema(s).rows(r)`.
    pub fn cvd(name: impl Into<String>) -> Init {
        Init {
            cvd: name.into(),
            schema: Schema::new(Vec::new()),
            rows: Vec::new(),
            model: None,
        }
    }

    pub fn schema(mut self, schema: Schema) -> Init {
        self.schema = schema;
        self
    }

    pub fn rows(mut self, rows: Vec<Vec<Value>>) -> Init {
        self.rows = rows;
        self
    }

    pub fn row(mut self, row: Vec<Value>) -> Init {
        self.rows.push(row);
        self
    }

    pub fn model(mut self, model: ModelKind) -> Init {
        self.model = Some(model);
        self
    }
}

/// `init -f data.csv -s schema.txt`: create a CVD from CSV text plus a
/// schema description (contents, not paths — I/O stays off the bus).
#[derive(Debug, Clone, PartialEq)]
pub struct InitFromCsv {
    pub cvd: String,
    pub csv: String,
    pub schema_text: String,
    pub model: Option<ModelKind>,
}

impl InitFromCsv {
    pub fn cvd(name: impl Into<String>) -> InitFromCsv {
        InitFromCsv {
            cvd: name.into(),
            csv: String::new(),
            schema_text: String::new(),
            model: None,
        }
    }

    pub fn csv(mut self, text: impl Into<String>) -> InitFromCsv {
        self.csv = text.into();
        self
    }

    pub fn schema_text(mut self, text: impl Into<String>) -> InitFromCsv {
        self.schema_text = text.into();
        self
    }

    pub fn model(mut self, model: ModelKind) -> InitFromCsv {
        self.model = Some(model);
        self
    }
}

// -- checkout -----------------------------------------------------------------

/// `checkout <cvd> -v <vids> -t <table>`: materialize version(s) into a
/// staged table.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkout {
    pub cvd: String,
    pub versions: Vec<Vid>,
    pub table: String,
}

impl Checkout {
    /// Start building: `Checkout::of("protein").versions([1, 2]).into_table("w")`.
    pub fn of(cvd: impl Into<String>) -> CheckoutBuilder {
        CheckoutBuilder {
            cvd: cvd.into(),
            versions: Vec::new(),
        }
    }
}

/// `checkout <cvd> -v <vids> -f <file>`: export version(s) as CSV; the
/// response carries the text, the caller owns the file.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckoutCsv {
    pub cvd: String,
    pub versions: Vec<Vid>,
    pub path: String,
}

/// Builder for [`Checkout`] / [`CheckoutCsv`].
#[derive(Debug, Clone)]
pub struct CheckoutBuilder {
    cvd: String,
    versions: Vec<Vid>,
}

impl CheckoutBuilder {
    pub fn version(mut self, vid: impl Into<Vid>) -> CheckoutBuilder {
        self.versions.push(vid.into());
        self
    }

    pub fn versions<I>(mut self, vids: I) -> CheckoutBuilder
    where
        I: IntoIterator,
        I::Item: Into<Vid>,
    {
        self.versions.extend(vids.into_iter().map(Into::into));
        self
    }

    /// Finish as a table checkout.
    pub fn into_table(self, table: impl Into<String>) -> Checkout {
        Checkout {
            cvd: self.cvd,
            versions: self.versions,
            table: table.into(),
        }
    }

    /// Finish as a CSV export registered under `path`.
    pub fn into_csv(self, path: impl Into<String>) -> CheckoutCsv {
        CheckoutCsv {
            cvd: self.cvd,
            versions: self.versions,
            path: path.into(),
        }
    }
}

// -- commit -------------------------------------------------------------------

/// `commit -t <table> -m <msg>`: commit a staged table as a new version.
#[derive(Debug, Clone, PartialEq)]
pub struct Commit {
    pub table: String,
    pub message: String,
}

impl Commit {
    /// Start building: `Commit::table("w").message("tweak scores")`.
    pub fn table(table: impl Into<String>) -> Commit {
        Commit {
            table: table.into(),
            message: String::new(),
        }
    }

    pub fn message(mut self, message: impl Into<String>) -> Commit {
        self.message = message.into();
        self
    }
}

/// `commit -f <file> [-s <schema>] -m <msg>`: commit edited CSV text
/// previously exported with a [`CheckoutCsv`] under the same `path`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitCsv {
    pub path: String,
    pub csv: String,
    pub message: String,
    pub schema_text: Option<String>,
}

impl CommitCsv {
    pub fn path(path: impl Into<String>) -> CommitCsv {
        CommitCsv {
            path: path.into(),
            csv: String::new(),
            message: String::new(),
            schema_text: None,
        }
    }

    pub fn csv(mut self, text: impl Into<String>) -> CommitCsv {
        self.csv = text.into();
        self
    }

    pub fn message(mut self, message: impl Into<String>) -> CommitCsv {
        self.message = message.into();
        self
    }

    pub fn schema_text(mut self, text: impl Into<String>) -> CommitCsv {
        self.schema_text = Some(text.into());
        self
    }
}

// -- the rest of the command set ---------------------------------------------

/// `diff <cvd> -v <a> <b>`: records in one version but not the other.
#[derive(Debug, Clone, PartialEq)]
pub struct Diff {
    pub cvd: String,
    pub from: Vid,
    pub to: Vid,
}

impl Diff {
    /// Start building: `Diff::of("protein").between(1, 4)`.
    pub fn of(cvd: impl Into<String>) -> DiffBuilder {
        DiffBuilder { cvd: cvd.into() }
    }
}

/// Builder for [`Diff`].
#[derive(Debug, Clone)]
pub struct DiffBuilder {
    cvd: String,
}

impl DiffBuilder {
    pub fn between(self, from: impl Into<Vid>, to: impl Into<Vid>) -> Diff {
        Diff {
            cvd: self.cvd,
            from: from.into(),
            to: to.into(),
        }
    }
}

/// `run <sql>`: versioned SQL (`VERSION n OF CVD x`, `CVD x`) or plain SQL.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    pub sql: String,
}

impl Run {
    pub fn sql(sql: impl Into<String>) -> Run {
        Run { sql: sql.into() }
    }
}

/// `log <cvd>`: the version history with parents and messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Log {
    pub cvd: String,
}

impl Log {
    pub fn of(cvd: impl Into<String>) -> Log {
        Log { cvd: cvd.into() }
    }
}

/// `drop <cvd>`: remove a CVD and its backing tables. (Named `DropCvd` so
/// importing it never shadows `std::ops::Drop`.)
#[derive(Debug, Clone, PartialEq)]
pub struct DropCvd {
    pub cvd: String,
}

impl DropCvd {
    pub fn named(cvd: impl Into<String>) -> DropCvd {
        DropCvd { cvd: cvd.into() }
    }
}

/// `optimize <cvd> [-gamma g] [-mu m] [-weights v:f,...]`: run the
/// partition optimizer. `None` parameters fall back to the instance
/// configuration; non-empty `weights` selects the workload-aware
/// optimizer (Appendix C.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Optimize {
    pub cvd: String,
    pub gamma: Option<f64>,
    pub mu: Option<f64>,
    pub weights: Vec<(Vid, u64)>,
}

impl Optimize {
    /// Start building: `Optimize::cvd("protein").gamma(2.0).mu(1.5)`.
    pub fn cvd(name: impl Into<String>) -> Optimize {
        Optimize {
            cvd: name.into(),
            gamma: None,
            mu: None,
            weights: Vec::new(),
        }
    }

    pub fn gamma(mut self, gamma: f64) -> Optimize {
        self.gamma = Some(gamma);
        self
    }

    pub fn mu(mut self, mu: f64) -> Optimize {
        self.mu = Some(mu);
        self
    }

    pub fn weight(mut self, vid: impl Into<Vid>, frequency: u64) -> Optimize {
        self.weights.push((vid.into(), frequency));
        self
    }

    pub fn weights<I>(mut self, weights: I) -> Optimize
    where
        I: IntoIterator<Item = (Vid, u64)>,
    {
        self.weights.extend(weights);
        self
    }
}

/// `create_user <name>`: register an account.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateUser {
    pub user: String,
}

impl CreateUser {
    pub fn named(user: impl Into<String>) -> CreateUser {
        CreateUser { user: user.into() }
    }
}

/// `config <name>`: switch identity. On an `OrpheusDB` this switches the
/// instance identity; on a `Session` it rebinds the session's user.
#[derive(Debug, Clone, PartialEq)]
pub struct Login {
    pub user: String,
}

impl Login {
    pub fn as_user(user: impl Into<String>) -> Login {
        Login { user: user.into() }
    }
}

/// `discard <table>`: abandon a staged checkout without committing.
#[derive(Debug, Clone, PartialEq)]
pub struct Discard {
    pub table: String,
}

impl Discard {
    pub fn table(table: impl Into<String>) -> Discard {
        Discard {
            table: table.into(),
        }
    }
}

macro_rules! impl_into_request {
    ($($ty:ident => $variant:ident),* $(,)?) => {$(
        impl From<$ty> for Request {
            fn from(r: $ty) -> Request {
                Request::$variant(r)
            }
        }
    )*};
}

impl_into_request!(
    Init => Init,
    InitFromCsv => InitFromCsv,
    Checkout => Checkout,
    CheckoutCsv => CheckoutCsv,
    Commit => Commit,
    CommitCsv => CommitCsv,
    Diff => Diff,
    Run => Run,
    Log => Log,
    DropCvd => Drop,
    Optimize => Optimize,
    CreateUser => CreateUser,
    Login => Login,
    Discard => Discard,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_the_expected_requests() {
        let req: Request = Checkout::of("protein")
            .versions([1u64, 2])
            .into_table("my_table")
            .into();
        assert_eq!(
            req,
            Request::Checkout(Checkout {
                cvd: "protein".into(),
                versions: vec![Vid(1), Vid(2)],
                table: "my_table".into(),
            })
        );

        let req: Request = Commit::table("my_table").message("fix scores").into();
        assert_eq!(
            req,
            Request::Commit(Commit {
                table: "my_table".into(),
                message: "fix scores".into(),
            })
        );

        let req: Request = Checkout::of("p").version(3u64).into_csv("out.csv").into();
        assert_eq!(
            req,
            Request::CheckoutCsv(CheckoutCsv {
                cvd: "p".into(),
                versions: vec![Vid(3)],
                path: "out.csv".into(),
            })
        );

        let req: Request = Diff::of("p").between(1u64, 4u64).into();
        assert_eq!(
            req,
            Request::Diff(Diff {
                cvd: "p".into(),
                from: Vid(1),
                to: Vid(4),
            })
        );

        let opt = Optimize::cvd("p").gamma(2.0).mu(1.5).weight(2u64, 50);
        assert_eq!(opt.weights, vec![(Vid(2), 50)]);
        assert_eq!(opt.gamma, Some(2.0));
    }

    #[test]
    fn request_kinds_cover_every_variant() {
        let reqs: Vec<Request> = vec![
            Init::cvd("a").into(),
            InitFromCsv::cvd("a").into(),
            Checkout::of("a").version(1u64).into_table("t").into(),
            Checkout::of("a").version(1u64).into_csv("f").into(),
            Commit::table("t").into(),
            CommitCsv::path("f").into(),
            Diff::of("a").between(1u64, 2u64).into(),
            Run::sql("SELECT 1").into(),
            Request::Ls,
            Log::of("a").into(),
            DropCvd::named("a").into(),
            Optimize::cvd("a").into(),
            CreateUser::named("u").into(),
            Login::as_user("u").into(),
            Request::Whoami,
            Discard::table("t").into(),
        ];
        let kinds: std::collections::HashSet<CommandKind> =
            reqs.iter().map(Request::kind).collect();
        assert_eq!(kinds.len(), CommandKind::ALL.len());
        for kind in CommandKind::ALL {
            assert!(kinds.contains(&kind), "missing {kind}");
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn targets_route_every_variant_to_the_right_lock() {
        use Target::*;

        let cases: Vec<(Request, Target<'static>)> = vec![
            (Init::cvd("a").into(), Catalog(Some("a"))),
            (InitFromCsv::cvd("a").into(), Catalog(Some("a"))),
            (DropCvd::named("a").into(), Catalog(Some("a"))),
            (CreateUser::named("u").into(), Catalog(None)),
            (Login::as_user("u").into(), Catalog(None)),
            (Request::Whoami, Catalog(None)),
            (Request::Ls, Catalog(None)),
            (
                Checkout::of("a").version(1u64).into_table("t").into(),
                Cvd("a"),
            ),
            (
                Checkout::of("a").version(1u64).into_csv("f").into(),
                Cvd("a"),
            ),
            (Diff::of("a").between(1u64, 2u64).into(), Cvd("a")),
            (Log::of("a").into(), Cvd("a")),
            (Optimize::cvd("a").into(), Cvd("a")),
            (Commit::table("t").into(), StagedTable("t")),
            (Discard::table("t").into(), StagedTable("t")),
            (CommitCsv::path("f").into(), StagedCsv("f")),
            (Run::sql("SELECT 1").into(), Sql("SELECT 1")),
        ];
        for (req, want) in &cases {
            assert_eq!(&req.target(), want, "{req:?}");
        }

        // target_cvd surfaces the direct CVD name where one is present.
        assert_eq!(Request::from(Init::cvd("a")).target_cvd(), Some("a"));
        assert_eq!(
            Request::from(Checkout::of("a").version(1u64).into_table("t")).target_cvd(),
            Some("a")
        );
        assert_eq!(Request::from(Commit::table("t")).target_cvd(), None);
        assert_eq!(Request::Ls.target_cvd(), None);
        assert_eq!(Request::from(Run::sql("SELECT 1")).target_cvd(), None);
    }
}
