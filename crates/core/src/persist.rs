//! Whole-instance snapshots: persist an [`OrpheusDB`] — the backing engine
//! database *and* all middleware state (CVD catalog, version graphs,
//! attribute registries, staging provenance, users, partition layouts) —
//! to a single file, and restore it.
//!
//! The paper assumes PostgreSQL's durability; this module supplies the
//! equivalent for the from-scratch substrate so the `orpheus` command-line
//! client can span process invocations. The file reuses the engine
//! snapshot envelope (magic / format version / length / CRC-32, see
//! [`orpheus_engine::storage`]): the payload begins with a middleware
//! section marker followed by the embedded engine snapshot and the
//! serialized middleware state. Corruption anywhere is detected by the
//! envelope checksum before any state is reconstructed.

use std::collections::HashMap;
use std::path::Path;

use orpheus_engine::storage::{
    self, verify_envelope, wrap_envelope, write_atomically, ByteReader, ByteWriter,
};
use orpheus_engine::{Column, DataType, Schema};

use crate::cvd::{AttrEntry, AttributeRegistry, Cvd, VersionMeta};
use crate::db::{OrpheusConfig, OrpheusDB};
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::ModelKind;
use crate::partition_store::PartitionState;
use crate::staging::{StagedEntry, StagedKind, StagingArea};

/// Marker distinguishing middleware snapshots from bare engine snapshots.
const SECTION: &str = "orpheus-core";
/// Version of the middleware section layout.
const CORE_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Encoding helpers.
// ---------------------------------------------------------------------------

fn model_tag(m: ModelKind) -> u8 {
    match m {
        ModelKind::TablePerVersion => 0,
        ModelKind::CombinedTable => 1,
        ModelKind::SplitByVlist => 2,
        ModelKind::SplitByRlist => 3,
        ModelKind::DeltaBased => 4,
    }
}

fn model_from_tag(tag: u8) -> Result<ModelKind> {
    match tag {
        0 => Ok(ModelKind::TablePerVersion),
        1 => Ok(ModelKind::CombinedTable),
        2 => Ok(ModelKind::SplitByVlist),
        3 => Ok(ModelKind::SplitByRlist),
        4 => Ok(ModelKind::DeltaBased),
        t => Err(corrupt(format!("unknown data model tag {t}"))),
    }
}

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Storage(format!("snapshot corrupt: {}", msg.into()))
}

fn put_vids(w: &mut ByteWriter, vids: &[Vid]) {
    w.put_u32(vids.len() as u32);
    for v in vids {
        w.put_u64(v.0);
    }
}

fn get_vids(r: &mut ByteReader<'_>) -> Result<Vec<Vid>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(Vid(r.get_u64()?));
    }
    Ok(out)
}

fn put_u64s(w: &mut ByteWriter, xs: &[u64]) {
    w.put_u32(xs.len() as u32);
    for &x in xs {
        w.put_u64(x);
    }
}

fn get_u64s(r: &mut ByteReader<'_>) -> Result<Vec<u64>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

fn put_i64s(w: &mut ByteWriter, xs: &[i64]) {
    w.put_u64(xs.len() as u64);
    for &x in xs {
        w.put_i64(x);
    }
}

fn get_i64s(r: &mut ByteReader<'_>) -> Result<Vec<i64>> {
    let n = r.get_u64()? as usize;
    if n.saturating_mul(8) > r.remaining() {
        return Err(corrupt(format!(
            "rid list length {n} exceeds remaining bytes"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_i64()?);
    }
    Ok(out)
}

fn put_opt_u64(w: &mut ByteWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.put_u8(1);
            w.put_u64(x);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_u64(r: &mut ByteReader<'_>) -> Result<Option<u64>> {
    Ok(if r.get_u8()? != 0 {
        Some(r.get_u64()?)
    } else {
        None
    })
}

fn put_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u32(schema.columns.len() as u32);
    for c in &schema.columns {
        w.put_str(&c.name);
        w.put_str(c.dtype.sql_name());
        w.put_u8(c.nullable as u8);
    }
    w.put_u32(schema.primary_key.len() as u32);
    for &i in &schema.primary_key {
        w.put_u32(i as u32);
    }
}

fn get_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let ncols = r.get_u32()? as usize;
    let mut cols = Vec::with_capacity(ncols.min(r.remaining()));
    for _ in 0..ncols {
        let name = r.get_str()?;
        let dtype = DataType::parse(&r.get_str()?).map_err(CoreError::from)?;
        let nullable = r.get_u8()? != 0;
        let mut c = Column::new(name, dtype);
        if !nullable {
            c = c.not_null();
        }
        cols.push(c);
    }
    let npk = r.get_u32()? as usize;
    let mut pk = Vec::with_capacity(npk.min(r.remaining()));
    for _ in 0..npk {
        let i = r.get_u32()? as usize;
        if i >= cols.len() {
            return Err(corrupt(format!("primary-key index {i} out of range")));
        }
        pk.push(i);
    }
    let mut s = Schema::new(cols);
    s.primary_key = pk;
    Ok(s)
}

// ---------------------------------------------------------------------------
// Section writers.
// ---------------------------------------------------------------------------

fn put_version_meta(w: &mut ByteWriter, m: &VersionMeta) {
    w.put_u64(m.vid.0);
    put_vids(w, &m.parents);
    put_u64s(w, &m.parent_weights);
    put_opt_u64(w, m.checkout_t);
    w.put_u64(m.commit_t);
    w.put_str(&m.message);
    w.put_u32(m.attributes.len() as u32);
    for &a in &m.attributes {
        w.put_u32(a);
    }
    w.put_u64(m.num_records);
    put_opt_u64(w, m.base.map(|b| b.0));
}

fn get_version_meta(r: &mut ByteReader<'_>) -> Result<VersionMeta> {
    let vid = Vid(r.get_u64()?);
    let parents = get_vids(r)?;
    let parent_weights = get_u64s(r)?;
    if parent_weights.len() != parents.len() {
        return Err(corrupt("parent weight list length mismatch"));
    }
    let checkout_t = get_opt_u64(r)?;
    let commit_t = r.get_u64()?;
    let message = r.get_str()?;
    let nattrs = r.get_u32()? as usize;
    let mut attributes = Vec::with_capacity(nattrs.min(r.remaining()));
    for _ in 0..nattrs {
        attributes.push(r.get_u32()?);
    }
    let num_records = r.get_u64()?;
    let base = get_opt_u64(r)?.map(Vid);
    Ok(VersionMeta {
        vid,
        parents,
        parent_weights,
        checkout_t,
        commit_t,
        message,
        attributes,
        num_records,
        base,
    })
}

fn put_partition_state(w: &mut ByteWriter, p: &PartitionState) {
    w.put_u32(p.assignment.len() as u32);
    for &a in &p.assignment {
        w.put_u32(a as u32);
    }
    w.put_u32(p.num_partitions as u32);
    w.put_u32(p.generation as u32);
    w.put_f64(p.delta_star);
    w.put_f64(p.cavg_star);
    w.put_f64(p.gamma_factor);
    w.put_f64(p.mu);
    w.put_u32(p.migrations as u32);
}

fn get_partition_state(r: &mut ByteReader<'_>) -> Result<PartitionState> {
    let n = r.get_u32()? as usize;
    let mut assignment = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        assignment.push(r.get_u32()? as usize);
    }
    Ok(PartitionState {
        assignment,
        num_partitions: r.get_u32()? as usize,
        generation: r.get_u32()? as usize,
        delta_star: r.get_f64()?,
        cavg_star: r.get_f64()?,
        gamma_factor: r.get_f64()?,
        mu: r.get_f64()?,
        migrations: r.get_u32()? as usize,
    })
}

fn put_cvd(w: &mut ByteWriter, cvd: &Cvd) {
    w.put_str(&cvd.name);
    put_schema(w, &cvd.schema);
    w.put_u8(model_tag(cvd.model));
    w.put_u32(cvd.versions.len() as u32);
    for m in &cvd.versions {
        put_version_meta(w, m);
    }
    for rids in &cvd.version_rids {
        put_i64s(w, rids);
    }
    w.put_u64(cvd.next_rid);
    w.put_u32(cvd.attrs.entries().len() as u32);
    for e in cvd.attrs.entries() {
        w.put_u32(e.id);
        w.put_str(&e.name);
        w.put_str(e.dtype.sql_name());
    }
    match &cvd.partition {
        Some(p) => {
            w.put_u8(1);
            put_partition_state(w, p);
        }
        None => w.put_u8(0),
    }
}

fn get_cvd(r: &mut ByteReader<'_>) -> Result<Cvd> {
    let name = r.get_str()?;
    let schema = get_schema(r)?;
    let model = model_from_tag(r.get_u8()?)?;
    let nvers = r.get_u32()? as usize;
    let mut versions = Vec::with_capacity(nvers.min(r.remaining()));
    for _ in 0..nvers {
        versions.push(get_version_meta(r)?);
    }
    let mut version_rids = Vec::with_capacity(nvers.min(r.remaining()));
    for _ in 0..nvers {
        version_rids.push(std::sync::Arc::new(get_i64s(r)?));
    }
    let next_rid = r.get_u64()?;
    let nattrs = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(nattrs.min(r.remaining()));
    for _ in 0..nattrs {
        let id = r.get_u32()?;
        let name = r.get_str()?;
        let dtype = DataType::parse(&r.get_str()?).map_err(CoreError::from)?;
        entries.push(AttrEntry { id, name, dtype });
    }
    let partition = if r.get_u8()? != 0 {
        Some(get_partition_state(r)?)
    } else {
        None
    };
    let mut cvd = Cvd::new(&name, schema, model);
    cvd.versions = versions;
    cvd.version_rids = version_rids;
    cvd.next_rid = next_rid;
    cvd.attrs = AttributeRegistry::from_entries(entries);
    cvd.partition = partition;
    Ok(cvd)
}

fn put_staged(w: &mut ByteWriter, e: &StagedEntry) {
    w.put_str(&e.name);
    w.put_str(&e.cvd);
    put_vids(w, &e.parents);
    w.put_str(&e.owner);
    w.put_u64(e.created_at);
    w.put_u8(matches!(e.kind, StagedKind::Csv) as u8);
}

fn get_staged(r: &mut ByteReader<'_>) -> Result<StagedEntry> {
    Ok(StagedEntry {
        name: r.get_str()?,
        cvd: r.get_str()?,
        parents: get_vids(r)?,
        owner: r.get_str()?,
        created_at: r.get_u64()?,
        kind: if r.get_u8()? != 0 {
            StagedKind::Csv
        } else {
            StagedKind::Table
        },
    })
}

// ---------------------------------------------------------------------------
// Top-level serialize / deserialize.
// ---------------------------------------------------------------------------

/// Serialize a full OrpheusDB instance into a checksummed snapshot.
pub fn serialize(odb: &OrpheusDB) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(SECTION);
    w.put_u32(CORE_VERSION);

    // Embedded engine snapshot (with its own envelope; integrity of the
    // whole file is still guaranteed by the outer CRC).
    let engine_bytes = storage::serialize_database(&odb.engine);
    w.put_u64(engine_bytes.len() as u64);
    w.put_raw(&engine_bytes);

    // Config + logical clock.
    w.put_u8(model_tag(odb.config.default_model));
    w.put_f64(odb.config.gamma_factor);
    w.put_f64(odb.config.mu);
    w.put_u64(odb.clock);

    // Users and session identity.
    let users = odb.access.users();
    w.put_u32(users.len() as u32);
    for u in &users {
        w.put_str(u);
    }
    w.put_str(odb.access.whoami());

    // Staging provenance.
    let staged = odb.staging.list();
    w.put_u32(staged.len() as u32);
    for e in staged {
        put_staged(&mut w, e);
    }

    // CVD catalog, in sorted order for deterministic bytes.
    let mut names: Vec<&String> = odb.cvds.keys().collect();
    names.sort();
    w.put_u32(names.len() as u32);
    for name in names {
        put_cvd(&mut w, &odb.cvds[name]);
    }

    wrap_envelope(&w.into_bytes())
}

/// Reconstruct an OrpheusDB instance from snapshot bytes.
pub fn deserialize(bytes: &[u8]) -> Result<OrpheusDB> {
    let payload = verify_envelope(bytes).map_err(CoreError::from)?;
    let mut r = ByteReader::new(payload);

    // A bare engine snapshot shares the envelope but its payload does not
    // begin with the middleware section marker; fail with guidance rather
    // than a generic corruption error.
    if r.get_str().ok().as_deref() != Some(SECTION) {
        return Err(CoreError::Storage(
            "not an OrpheusDB instance snapshot (bare engine snapshots \
             load via orpheus_engine::storage::load_database)"
                .into(),
        ));
    }
    let version = r.get_u32()?;
    if version > CORE_VERSION {
        return Err(CoreError::Storage(format!(
            "middleware section version {version} is newer than supported {CORE_VERSION}"
        )));
    }

    let engine_len = r.get_u64()? as usize;
    if engine_len > r.remaining() {
        return Err(corrupt("embedded engine snapshot length exceeds payload"));
    }
    let engine = storage::deserialize_database(r.get_raw(engine_len)?)?;

    let default_model = model_from_tag(r.get_u8()?)?;
    let gamma_factor = r.get_f64()?;
    let mu = r.get_f64()?;
    let clock = r.get_u64()?;

    let nusers = r.get_u32()? as usize;
    let mut users = Vec::with_capacity(nusers.min(r.remaining()));
    for _ in 0..nusers {
        users.push(r.get_str()?);
    }
    let current = r.get_str()?;

    let nstaged = r.get_u32()? as usize;
    let mut staging = StagingArea::default();
    for _ in 0..nstaged {
        staging.register(get_staged(&mut r)?)?;
    }

    let ncvds = r.get_u32()? as usize;
    let mut cvds = HashMap::with_capacity(ncvds.min(r.remaining()));
    for _ in 0..ncvds {
        let cvd = get_cvd(&mut r)?;
        if cvd.versions.len() != cvd.version_rids.len() {
            return Err(corrupt(format!(
                "CVD {}: version metadata and rid lists disagree",
                cvd.name
            )));
        }
        cvds.insert(cvd.name.clone(), cvd);
    }
    if !r.is_exhausted() {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }

    let mut odb = OrpheusDB::with_config(OrpheusConfig {
        default_model,
        gamma_factor,
        mu,
    });
    odb.engine = engine;
    for u in users {
        if u != "default" {
            odb.access.create_user(&u)?;
        }
    }
    odb.access.login(&current)?;
    odb.staging = staging;
    odb.clock = clock;

    // Validate that every CVD's backing tables exist in the engine before
    // accepting the catalog (a corrupt snapshot must not half-load).
    for cvd in cvds.values() {
        for t in crate::model::backing_tables(cvd) {
            if !odb.engine.has_table(&t) {
                return Err(corrupt(format!(
                    "CVD {} references missing backing table {t}",
                    cvd.name
                )));
            }
        }
    }
    odb.cvds = cvds;
    Ok(odb)
}

/// Save an OrpheusDB snapshot to `path` atomically.
pub fn save(odb: &OrpheusDB, path: &Path) -> Result<()> {
    write_atomically(path, &serialize(odb)).map_err(CoreError::from)
}

/// Load an OrpheusDB snapshot from `path`.
pub fn load(path: &Path) -> Result<OrpheusDB> {
    let bytes = std::fs::read(path)
        .map_err(|e| CoreError::Storage(format!("cannot read {}: {e}", path.display())))?;
    deserialize(&bytes)
}

/// Load a snapshot straight into a [`crate::SharedOrpheusDB`], splitting
/// it into per-CVD shards for concurrent sessions. Snapshots are one flat
/// format either way: a file saved by [`OrpheusDB::save_to`] and one saved
/// by [`crate::SharedOrpheusDB::save_to`] (which merges its shards first)
/// are interchangeable.
pub fn load_shared(path: &Path) -> Result<crate::SharedOrpheusDB> {
    Ok(crate::SharedOrpheusDB::new(load(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("score", DataType::Int),
        ])
        .with_primary_key(&["protein1", "protein2"])
        .unwrap()
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec!["a".into(), "b".into(), 1.into()],
            vec!["a".into(), "c".into(), 2.into()],
            vec!["b".into(), "c".into(), 3.into()],
        ]
    }

    /// Build an instance exercising every persisted feature: two CVDs under
    /// different models, a branch + merge history, an open staged table, a
    /// CSV export, extra users, and a partitioned layout.
    fn populated() -> OrpheusDB {
        let mut odb = OrpheusDB::new();
        odb.access.create_user("alice").unwrap();
        odb.access.login("alice").unwrap();

        odb.init_cvd("protein", schema(), rows(), Some(ModelKind::SplitByRlist))
            .unwrap();
        odb.checkout("protein", &[Vid(1)], "w1").unwrap();
        odb.engine
            .execute("UPDATE w1 SET score = 10 WHERE protein1 = 'a' AND protein2 = 'b'")
            .unwrap();
        let v2 = odb.commit("w1", "bump score").unwrap();
        odb.checkout("protein", &[Vid(1)], "w2").unwrap();
        odb.engine
            .execute("DELETE FROM w2 WHERE score = 3")
            .unwrap();
        let v3 = odb.commit("w2", "drop c").unwrap();
        odb.checkout("protein", &[v2, v3], "w3").unwrap();
        odb.commit("w3", "merge").unwrap();

        odb.init_cvd(
            "notes",
            Schema::new(vec![Column::new("k", DataType::Int)]),
            vec![vec![1.into()], vec![2.into()]],
            Some(ModelKind::DeltaBased),
        )
        .unwrap();

        // Leave one staged table open across the snapshot.
        odb.checkout("protein", &[Vid(4)], "open_work").unwrap();
        // And a CSV export.
        odb.checkout_csv("protein", &[Vid(1)], "/tmp/export.csv")
            .unwrap();
        // Partition the CVD so PartitionState roundtrips.
        odb.optimize("protein").unwrap();
        odb
    }

    #[test]
    fn full_instance_roundtrip() {
        let odb = populated();
        let bytes = serialize(&odb);
        let back = deserialize(&bytes).unwrap();

        assert_eq!(back.ls(), odb.ls());
        assert_eq!(back.access.whoami(), "alice");
        assert_eq!(back.access.users(), odb.access.users());
        assert_eq!(back.config.gamma_factor, odb.config.gamma_factor);

        // Version graph and contents identical.
        let orig = odb.cvd("protein").unwrap();
        let loaded = back.cvd("protein").unwrap();
        assert_eq!(loaded.num_versions(), orig.num_versions());
        assert_eq!(loaded.next_rid, orig.next_rid);
        for v in 1..=orig.num_versions() as u64 {
            assert_eq!(
                loaded.rids_of(Vid(v)).unwrap(),
                orig.rids_of(Vid(v)).unwrap()
            );
            let a = loaded.meta(Vid(v)).unwrap();
            let b = orig.meta(Vid(v)).unwrap();
            assert_eq!(a.parents, b.parents);
            assert_eq!(a.message, b.message);
            assert_eq!(a.commit_t, b.commit_t);
        }
        // Attribute registry and partition state survive.
        assert_eq!(loaded.attrs.entries(), orig.attrs.entries());
        let lp = loaded.partition.as_ref().unwrap();
        let op = orig.partition.as_ref().unwrap();
        assert_eq!(lp.assignment, op.assignment);
        assert_eq!(lp.num_partitions, op.num_partitions);
        // Staged artifacts preserved.
        assert_eq!(back.staged().len(), odb.staged().len());
    }

    #[test]
    fn load_shared_splits_the_snapshot_into_working_shards() {
        let odb = populated();
        let path = std::env::temp_dir().join(format!(
            "orpheus-persist-shared-{}.orpheus",
            std::process::id()
        ));
        save(&odb, &path).unwrap();

        let shared = load_shared(&path).unwrap();
        shared.read(|back| {
            assert_eq!(back.ls(), odb.ls());
            assert_eq!(back.staged().len(), odb.staged().len());
        });
        // The open staged table survived the split and commits under its
        // owner's session; the partitioned CVD still checks out.
        let alice = shared.session("alice").unwrap();
        let v5 = alice.commit("open_work", "post-restore commit").unwrap();
        assert_eq!(v5, Vid(5));
        alice.checkout("protein", &[Vid(2)], "reload_co").unwrap();
        let res = alice
            .run("SELECT count(*) FROM VERSION 5 OF CVD protein")
            .unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(3)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reloaded_instance_keeps_working() {
        let odb = populated();
        let mut back = deserialize(&serialize(&odb)).unwrap();

        // The open staged table can still be committed by its owner.
        back.engine
            .execute("UPDATE open_work SET score = 99 WHERE protein1 = 'a' AND protein2 = 'c'")
            .unwrap();
        let v5 = back.commit("open_work", "post-restore commit").unwrap();
        assert_eq!(v5, Vid(5));

        // Fresh rids continue after the saved next_rid (no collisions): the
        // updated record must have received a brand-new rid.
        let max_rid_before = odb.cvd("protein").unwrap().next_rid;
        assert!(back.cvd("protein").unwrap().next_rid > max_rid_before);

        // Versioned queries still work after restore.
        let res = back
            .run("SELECT count(*) FROM VERSION 5 OF CVD protein")
            .unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(3)));

        // Logical clock advanced past all persisted commit times.
        let (latest, t) = back.cvd("protein").unwrap().last_modified().unwrap();
        assert_eq!(latest, Vid(5));
        assert!(t > 0);
    }

    #[test]
    fn checkout_from_reloaded_partitioned_cvd() {
        let odb = populated();
        let mut back = deserialize(&serialize(&odb)).unwrap();
        // The partitioned layout's physical tables came back through the
        // engine snapshot; a partition-served checkout must agree with the
        // logical version contents.
        back.checkout("protein", &[Vid(2)], "replay").unwrap();
        let n = back.engine.query("SELECT count(*) FROM replay").unwrap();
        assert_eq!(n.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join(format!("orpheus-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("instance.orpheus");
        let odb = populated();
        save(&odb, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.ls(), odb.ls());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected_before_state_is_built() {
        let bytes = serialize(&populated());
        for pos in [17, 40, bytes.len() / 2, bytes.len() - 6] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let err = deserialize(&bad).unwrap_err();
            assert!(
                matches!(err, CoreError::Storage(_) | CoreError::Engine(_)),
                "flip at {pos}: {err}"
            );
        }
    }

    #[test]
    fn bare_engine_snapshot_is_rejected_with_guidance() {
        let engine_only = storage::serialize_database(&populated().engine);
        let err = deserialize(&engine_only).unwrap_err();
        assert!(err.to_string().contains("bare engine"), "{err}");
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let bytes = serialize(&populated());
        for cut in [0, 10, 16, bytes.len() / 3, bytes.len() - 1] {
            assert!(deserialize(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_instance_roundtrip() {
        let odb = OrpheusDB::new();
        let back = deserialize(&serialize(&odb)).unwrap();
        assert!(back.ls().is_empty());
        assert_eq!(back.access.whoami(), "default");
    }
}
