//! Value and type system.
//!
//! The engine supports the types OrpheusDB needs: 64-bit integers, doubles
//! (the paper's `decimal`), text, booleans, and **integer arrays** — the
//! array type used for the `vlist`/`rlist` versioning attributes in the
//! combined-table and split-by-\* data models (Figure 1 of the paper).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{EngineError, Result};

/// Logical column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`DOUBLE`, `DECIMAL`, `FLOAT`).
    Double,
    /// UTF-8 string (`TEXT`, `VARCHAR`, `STRING`).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
    /// Array of 64-bit integers (`INT[]`) — used for `vlist`/`rlist`.
    IntArray,
}

impl DataType {
    /// Parse a SQL type name.
    pub fn parse(name: &str) -> Result<DataType> {
        let up = name.to_ascii_uppercase();
        match up.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "INT4" | "INT8" | "SMALLINT" => Ok(DataType::Int),
            "DOUBLE" | "DECIMAL" | "FLOAT" | "REAL" | "NUMERIC" | "DOUBLE PRECISION" => {
                Ok(DataType::Double)
            }
            "TEXT" | "VARCHAR" | "STRING" | "CHAR" => Ok(DataType::Text),
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT[]" | "INTEGER[]" | "BIGINT[]" | "INTARRAY" => Ok(DataType::IntArray),
            _ => Err(EngineError::Parse(format!("unknown type: {name}"))),
        }
    }

    /// Canonical SQL spelling of the type.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::IntArray => "INT[]",
        }
    }

    /// The "more general" of two types, following the schema-evolution rule
    /// of Section 3.3 (e.g. integer widens to decimal, anything widens to
    /// string). Returns `None` when no generalization exists (arrays only
    /// generalize to themselves).
    pub fn generalize(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        if self == other {
            return Some(self);
        }
        match (self, other) {
            (Int, Double) | (Double, Int) => Some(Double),
            (Int, Text) | (Text, Int) => Some(Text),
            (Double, Text) | (Text, Double) => Some(Text),
            (Bool, Text) | (Text, Bool) => Some(Text),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// A runtime value. `Null` inhabits every type.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Text(String),
    Bool(bool),
    IntArray(Vec<i64>),
}

/// A tuple of values; the unit of storage and execution.
pub type Row = Vec<Value>;

impl Value {
    /// The value's type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::IntArray(_) => Some(DataType::IntArray),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, accepting exact doubles.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Double(d) if d.fract() == 0.0 => Ok(*d as i64),
            other => Err(EngineError::TypeMismatch(format!(
                "expected INT, got {other}"
            ))),
        }
    }

    /// Extract a double, widening integers.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Double(d) => Ok(*d),
            other => Err(EngineError::TypeMismatch(format!(
                "expected DOUBLE, got {other}"
            ))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EngineError::TypeMismatch(format!(
                "expected BOOL, got {other}"
            ))),
        }
    }

    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(EngineError::TypeMismatch(format!(
                "expected TEXT, got {other}"
            ))),
        }
    }

    pub fn as_int_array(&self) -> Result<&[i64]> {
        match self {
            Value::IntArray(a) => Ok(a),
            other => Err(EngineError::TypeMismatch(format!(
                "expected INT[], got {other}"
            ))),
        }
    }

    /// Coerce this value to `target`, applying the widening rules used both
    /// by INSERT and by schema evolution (int → double → text).
    pub fn coerce_to(&self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Double) => Ok(Value::Double(*i as f64)),
            (Value::Int(i), DataType::Text) => Ok(Value::Text(i.to_string())),
            (Value::Double(d), DataType::Text) => Ok(Value::Text(format_double(*d))),
            (Value::Double(d), DataType::Int) if d.fract() == 0.0 => Ok(Value::Int(*d as i64)),
            (Value::Bool(b), DataType::Text) => Ok(Value::Text(b.to_string())),
            (v, t) => Err(EngineError::TypeMismatch(format!(
                "cannot coerce {v} to {t}"
            ))),
        }
    }

    /// SQL-style three-valued equality: any comparison with NULL is NULL
    /// (represented as `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                Some((*a as f64) == *b)
            }
            (a, b) => Some(a.total_cmp(b) == Ordering::Equal),
        }
    }

    /// SQL-style three-valued ordering comparison.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order over all values, used for sorting, BTree index keys and
    /// merge joins. NULL sorts first; numeric types compare numerically;
    /// heterogeneous values order by a fixed type rank.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Double(_) => 2,
                Text(_) => 3,
                IntArray(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (IntArray(a), IntArray(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Approximate on-disk footprint in bytes, used by the storage accounting
    /// that backs the paper's storage-size experiments (Figures 3a, 12b, 13b).
    pub fn storage_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Double(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => 4 + s.len(),
            Value::IntArray(a) => 8 + 8 * a.len(),
        }
    }
}

/// Format a double the way we print and coerce it to text: integral values
/// render without a trailing `.0` ambiguity (`1` stays `1`).
fn format_double(d: f64) -> String {
    if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{}", format_double(*d)),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::IntArray(a) => {
                write!(f, "{{")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and exactly-integral doubles must hash identically because
            // they compare equal (1 == 1.0 under total_cmp's numeric rule).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                let norm = if *d == 0.0 { 0.0 } else { *d };
                norm.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::IntArray(a) => {
                4u8.hash(state);
                a.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::IntArray(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_parsing_roundtrip() {
        for t in [
            DataType::Int,
            DataType::Double,
            DataType::Text,
            DataType::Bool,
            DataType::IntArray,
        ] {
            assert_eq!(DataType::parse(t.sql_name()).unwrap(), t);
        }
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn generalization_follows_single_pool_rule() {
        assert_eq!(
            DataType::Int.generalize(DataType::Double),
            Some(DataType::Double)
        );
        assert_eq!(
            DataType::Double.generalize(DataType::Text),
            Some(DataType::Text)
        );
        assert_eq!(DataType::Int.generalize(DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::IntArray.generalize(DataType::Int), None);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3).sql_eq(&Value::Double(3.0)), Some(true));
        assert_eq!(Value::Int(3).sql_eq(&Value::Double(3.5)), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Int(3)), None);
    }

    #[test]
    fn equal_values_hash_equal_across_numeric_types() {
        assert_eq!(Value::Int(7), Value::Double(7.0));
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Double(7.0)));
        assert_eq!(hash_of(&Value::Double(0.0)), hash_of(&Value::Double(-0.0)));
    }

    #[test]
    fn total_order_sorts_nulls_first_and_types_by_rank() {
        let mut vs = [
            Value::Text("a".into()),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::IntArray(vec![1]),
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(1));
        assert_eq!(vs[3], Value::Text("a".into()));
        assert_eq!(vs[4], Value::IntArray(vec![1]));
    }

    #[test]
    fn coercion_widens_and_rejects() {
        assert_eq!(
            Value::Int(2).coerce_to(DataType::Double).unwrap(),
            Value::Double(2.0)
        );
        assert_eq!(
            Value::Double(2.5).coerce_to(DataType::Text).unwrap(),
            Value::Text("2.5".into())
        );
        assert_eq!(
            Value::Double(2.0).coerce_to(DataType::Text).unwrap(),
            Value::Text("2".into())
        );
        assert!(Value::Text("x".into()).coerce_to(DataType::Int).is_err());
        assert!(Value::Double(2.5).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn storage_bytes_accounting() {
        assert_eq!(Value::Int(1).storage_bytes(), 8);
        assert_eq!(Value::Text("abcd".into()).storage_bytes(), 8);
        assert_eq!(Value::IntArray(vec![1, 2, 3]).storage_bytes(), 8 + 24);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::IntArray(vec![1, 2]).to_string(), "{1,2}");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Double(1.5).to_string(), "1.5");
        assert_eq!(Value::Double(3.0).to_string(), "3");
    }
}
