//! Table schemas: named, typed columns plus an optional composite primary
//! key — e.g. the paper's protein table with PK `<protein1, protein2>`.

use crate::error::{EngineError, Result};
use crate::types::{DataType, Row, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }
}

/// An ordered list of columns with an optional composite primary key
/// (indices into `columns`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<Column>,
    pub primary_key: Vec<usize>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema {
            columns,
            primary_key: Vec::new(),
        }
    }

    /// Set the primary key by column names.
    pub fn with_primary_key(mut self, names: &[&str]) -> Result<Schema> {
        let mut pk = Vec::with_capacity(names.len());
        for n in names {
            pk.push(self.column_index(n)?);
        }
        self.primary_key = pk;
        Ok(self)
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| EngineError::ColumnNotFound(name.to_string()))
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.column_index(name).is_ok()
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Names of the primary-key columns in key order.
    pub fn primary_key_names(&self) -> Vec<String> {
        self.primary_key
            .iter()
            .map(|&i| self.columns[i].name.clone())
            .collect()
    }

    /// Extract the primary-key values of a row (empty if no PK).
    pub fn pk_values(&self, row: &Row) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validate a row against the schema, coercing values to declared types
    /// (e.g. INT literals into DOUBLE columns). Returns the coerced row.
    pub fn check_row(&self, row: &Row) -> Result<Row> {
        if row.len() != self.columns.len() {
            return Err(EngineError::Arity(format!(
                "row has {} values, schema {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, c) in row.iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(EngineError::Invalid(format!(
                        "null value in non-nullable column {}",
                        c.name
                    )));
                }
                out.push(Value::Null);
            } else {
                out.push(v.coerce_to(c.dtype)?);
            }
        }
        Ok(out)
    }

    /// Schema of a projection of this schema.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Concatenate two schemas (used by joins). Primary keys do not survive.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protein_schema() -> Schema {
        Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("neighborhood", DataType::Int),
            Column::new("cooccurrence", DataType::Int),
            Column::new("coexpression", DataType::Int),
        ])
        .with_primary_key(&["protein1", "protein2"])
        .unwrap()
    }

    #[test]
    fn composite_primary_key_lookup() {
        let s = protein_schema();
        assert_eq!(s.primary_key, vec![0, 1]);
        assert_eq!(s.primary_key_names(), vec!["protein1", "protein2"]);
        let row: Row = vec![
            "a".into(),
            "b".into(),
            Value::Int(0),
            Value::Int(53),
            Value::Int(0),
        ];
        assert_eq!(
            s.pk_values(&row),
            vec![Value::Text("a".into()), Value::Text("b".into())]
        );
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = protein_schema();
        assert_eq!(s.column_index("Protein1").unwrap(), 0);
        assert!(s.column_index("nope").is_err());
    }

    #[test]
    fn check_row_coerces_and_rejects() {
        let s = Schema::new(vec![
            Column::new("a", DataType::Double),
            Column::new("b", DataType::Text).not_null(),
        ]);
        let ok = s.check_row(&vec![Value::Int(1), "x".into()]).unwrap();
        assert_eq!(ok[0], Value::Double(1.0));
        assert!(s.check_row(&vec![Value::Int(1), Value::Null]).is_err());
        assert!(s.check_row(&vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn project_and_join_schemas() {
        let s = protein_schema();
        let p = s.project(&[0, 2]);
        assert_eq!(p.column_names(), vec!["protein1", "neighborhood"]);
        let j = p.join(&p);
        assert_eq!(j.arity(), 4);
        assert!(j.primary_key.is_empty());
    }
}
