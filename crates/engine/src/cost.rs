//! Page-based I/O cost model (Appendix D.1 of the paper).
//!
//! The paper validates that the checkout cost of a version is linear in the
//! number of records of its partition, `Ci ∝ |Rk|`, by studying three join
//! strategies under two physical layouts (data table clustered on `rid` vs.
//! clustered on the relation primary key). Wall-clock time of a purely
//! in-memory engine hides the sequential/random distinction that drives
//! those plots, so the engine additionally *models* page I/O with
//! PostgreSQL-like constants: 8KB pages, sequential page cost 1.0, random
//! page cost 4.0.
//!
//! The key modeling device is [`expected_pages_touched`]: fetching `k`
//! random rows from a table of `p` pages touches
//! `p · (1 − (1 − 1/p)^k)` distinct pages in expectation (the classic
//! Cardenas/Yao approximation). As `k` approaches the table size the
//! expression saturates at `p`, which reproduces the paper's observation
//! that "hundreds of thousands of random accesses are eventually reduced to
//! a full table scan" (Appendix D.1, index-nested-loop on a clustered
//! table).

/// Bytes per page, matching PostgreSQL's default block size.
pub const PAGE_SIZE: usize = 8192;

/// Cost of reading one page sequentially (PostgreSQL `seq_page_cost`).
pub const SEQ_PAGE_COST: f64 = 1.0;

/// Cost of reading one page randomly (PostgreSQL `random_page_cost`).
pub const RANDOM_PAGE_COST: f64 = 4.0;

/// CPU cost charged per row processed, so that cost never degenerates to
/// zero for tiny tables (PostgreSQL `cpu_tuple_cost`).
pub const CPU_TUPLE_COST: f64 = 0.01;

/// Number of heap pages occupied by `n_rows` rows of `row_bytes` bytes each.
pub fn pages_for(n_rows: usize, row_bytes: usize) -> f64 {
    if n_rows == 0 {
        return 0.0;
    }
    let rows_per_page = (PAGE_SIZE / row_bytes.max(1)).max(1);
    (n_rows as f64 / rows_per_page as f64).ceil()
}

/// Expected number of distinct pages touched when probing `k` uniformly
/// random rows in a heap of `pages` pages (Cardenas' formula).
pub fn expected_pages_touched(k: u64, pages: f64) -> f64 {
    if pages <= 0.0 || k == 0 {
        return 0.0;
    }
    let p = pages;
    // (1 - 1/p)^k via exp/ln for numerical stability with large k.
    let frac_missed = ((1.0 - 1.0 / p).ln() * k as f64).exp();
    p * (1.0 - frac_missed)
}

/// Modeled cost of a full sequential scan.
pub fn seq_scan_cost(n_rows: usize, row_bytes: usize) -> f64 {
    pages_for(n_rows, row_bytes) * SEQ_PAGE_COST + n_rows as f64 * CPU_TUPLE_COST
}

/// Modeled cost of `k` index point-lookups into a heap of `n_rows` rows.
///
/// * If the heap is `clustered` on the lookup key, matching rows are
///   physically adjacent; lookups touch `expected_pages_touched` pages but
///   the access pattern degrades gracefully to sequential cost once most
///   pages are hit (the paper's |rlist|/|Rk| ≥ 1/300 observation).
/// * If not clustered, every lookup is an independent random page read.
pub fn index_lookup_cost(k: u64, n_rows: usize, row_bytes: usize, clustered: bool) -> f64 {
    let pages = pages_for(n_rows, row_bytes);
    if clustered {
        let touched = expected_pages_touched(k, pages);
        // Once we are touching nearly every page the OS readahead makes the
        // access sequential; interpolate between random and sequential cost
        // by the fraction of pages touched.
        let frac = if pages > 0.0 { touched / pages } else { 0.0 };
        let per_page = RANDOM_PAGE_COST * (1.0 - frac) + SEQ_PAGE_COST * frac;
        touched * per_page + k as f64 * CPU_TUPLE_COST
    } else {
        k as f64 * RANDOM_PAGE_COST + k as f64 * CPU_TUPLE_COST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_round_up() {
        assert_eq!(pages_for(0, 100), 0.0);
        assert_eq!(pages_for(1, 100), 1.0);
        // 81 rows of 100 bytes fit per 8192-byte page.
        assert_eq!(pages_for(81, 100), 1.0);
        assert_eq!(pages_for(82, 100), 2.0);
    }

    #[test]
    fn cardenas_saturates_at_page_count() {
        let p = 100.0;
        assert_eq!(expected_pages_touched(0, p), 0.0);
        let one = expected_pages_touched(1, p);
        assert!((one - 1.0).abs() < 1e-9);
        let many = expected_pages_touched(1_000_000, p);
        assert!(many <= p + 1e-9);
        assert!(many > p * 0.999);
    }

    #[test]
    fn cardenas_is_monotone_in_k() {
        let p = 500.0;
        let mut prev = 0.0;
        for k in [1u64, 10, 100, 1000, 10_000] {
            let t = expected_pages_touched(k, p);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn seq_scan_cost_linear_in_rows() {
        let c1 = seq_scan_cost(10_000, 100);
        let c2 = seq_scan_cost(20_000, 100);
        let ratio = c2 / c1;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn unclustered_lookups_cost_linear_in_k() {
        let a = index_lookup_cost(100, 1_000_000, 100, false);
        let b = index_lookup_cost(200, 1_000_000, 100, false);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clustered_lookup_saturates_to_seq_scan_shape() {
        // Small probe set: roughly flat, near k random pages.
        let n = 1_000_000;
        let small = index_lookup_cost(100, n, 100, true);
        assert!(small < 100.0 * RANDOM_PAGE_COST + 100.0);
        // Probe set comparable to the table: cost close to a seq scan of the
        // heap pages (plus CPU), never wildly above it.
        let big = index_lookup_cost(n as u64, n, 100, true);
        let seq = seq_scan_cost(n, 100);
        assert!(big < seq * 1.5, "big={big} seq={seq}");
        assert!(big > seq * 0.5, "big={big} seq={seq}");
    }
}
