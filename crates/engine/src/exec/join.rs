//! Equi-join algorithms: hash join, sort-merge join, and index-nested-loop
//! join — the three strategies whose cost behaviour the paper validates in
//! Appendix D.1 (Figure 19).
//!
//! Conventions:
//! * the **left** input is the probe/outer side (in checkout plans this is
//!   the `rlist`-derived rid set or the data table, depending on direction);
//! * the **right** input is the build/inner side;
//! * index-nested-loop requires the right side to be a bare table scan with
//!   an index covering the join columns; otherwise it degrades to hash.

use crate::cost;
use crate::error::{EngineError, Result};
use crate::exec::{execute, Chunk, ExecContext, Plan};
use crate::types::{Row, Value};
use std::collections::HashMap;

/// Join algorithm selection. `Auto` lets the engine choose (hash join, the
/// paper's finding of the most efficient strategy for checkout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    #[default]
    Auto,
    Hash,
    Merge,
    IndexNestedLoop,
}

impl JoinStrategy {
    pub fn parse(s: &str) -> Option<JoinStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(JoinStrategy::Auto),
            "hash" => Some(JoinStrategy::Hash),
            "merge" => Some(JoinStrategy::Merge),
            "inl" | "index" | "index_nested_loop" => Some(JoinStrategy::IndexNestedLoop),
            _ => None,
        }
    }
}

/// Dispatch an equi-join on positional keys.
pub fn execute_join(
    left: &Plan,
    right: &Plan,
    left_keys: &[usize],
    right_keys: &[usize],
    strategy: JoinStrategy,
    ctx: &ExecContext,
) -> Result<Chunk> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::Plan(format!(
            "join keys malformed: {left_keys:?} vs {right_keys:?}"
        )));
    }
    match strategy {
        JoinStrategy::Auto | JoinStrategy::Hash => {
            hash_join(left, right, left_keys, right_keys, ctx)
        }
        JoinStrategy::Merge => merge_join(left, right, left_keys, right_keys, ctx),
        JoinStrategy::IndexNestedLoop => {
            // The inner side must be a plain table scan with a usable index.
            if let Plan::SeqScan {
                table,
                filter: None,
            } = right
            {
                let t = ctx.table(table)?;
                if t.index_on(right_keys).is_some() {
                    return index_nested_loop_join(left, table, left_keys, right_keys, ctx);
                }
            }
            // If only the left side is an indexed base table, probe it with
            // the right input and rotate the output columns back into
            // (left ++ right) order.
            if let Plan::SeqScan {
                table,
                filter: None,
            } = left
            {
                let t = ctx.table(table)?;
                if t.index_on(left_keys).is_some() {
                    let left_width = t.schema.arity();
                    let mut chunk =
                        index_nested_loop_join(right, table, right_keys, left_keys, ctx)?;
                    let right_width = chunk.schema.arity() - left_width;
                    for row in &mut chunk.rows {
                        row.rotate_left(right_width);
                    }
                    let mut cols = chunk.schema.columns.split_off(right_width);
                    cols.append(&mut chunk.schema.columns);
                    chunk.schema = crate::schema::Schema::new(cols);
                    return Ok(chunk);
                }
            }
            hash_join(left, right, left_keys, right_keys, ctx)
        }
    }
}

fn key_of(row: &Row, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// Classic build/probe hash join. The build side is the **right** input —
/// matching the paper's plan where "a hash table on rids is first built,
/// followed by a sequential scan on the data table probing each record".
pub fn hash_join(
    left: &Plan,
    right: &Plan,
    left_keys: &[usize],
    right_keys: &[usize],
    ctx: &ExecContext,
) -> Result<Chunk> {
    let l = execute(left, ctx)?;
    let r = execute(right, ctx)?;
    let schema = l.schema.join(&r.schema);

    let mut build: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(r.rows.len());
    for (i, row) in r.rows.iter().enumerate() {
        let k = key_of(row, right_keys);
        if k.iter().any(|v| v.is_null()) {
            continue; // NULL keys never join.
        }
        build.entry(k).or_default().push(i);
    }
    ctx.stats.add_hash_build_rows(r.rows.len() as u64);

    let mut out = Vec::new();
    for lrow in &l.rows {
        let k = key_of(lrow, left_keys);
        if k.iter().any(|v| v.is_null()) {
            continue;
        }
        if let Some(matches) = build.get(&k) {
            for &ri in matches {
                let mut row = lrow.clone();
                row.extend(r.rows[ri].iter().cloned());
                out.push(row);
            }
        }
    }
    ctx.stats.add_join_rows(out.len() as u64);
    Ok(Chunk::new(schema, out))
}

/// Sort-merge join: sorts both inputs on the key columns, then merges,
/// producing the cross product of equal-key runs.
pub fn merge_join(
    left: &Plan,
    right: &Plan,
    left_keys: &[usize],
    right_keys: &[usize],
    ctx: &ExecContext,
) -> Result<Chunk> {
    let mut l = execute(left, ctx)?;
    let mut r = execute(right, ctx)?;
    let schema = l.schema.join(&r.schema);

    let cmp_keys = |a: &Row, ak: &[usize], b: &Row, bk: &[usize]| -> std::cmp::Ordering {
        for (&ca, &cb) in ak.iter().zip(bk) {
            let ord = a[ca].total_cmp(&b[cb]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };

    l.rows.sort_by(|a, b| cmp_keys(a, left_keys, b, left_keys));
    r.rows
        .sort_by(|a, b| cmp_keys(a, right_keys, b, right_keys));
    ctx.stats
        .add_merge_rows((l.rows.len() + r.rows.len()) as u64);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.rows.len() && j < r.rows.len() {
        let lk = key_of(&l.rows[i], left_keys);
        let rk = key_of(&r.rows[j], right_keys);
        if lk.iter().any(|v| v.is_null()) {
            i += 1;
            continue;
        }
        if rk.iter().any(|v| v.is_null()) {
            j += 1;
            continue;
        }
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the extents of the equal runs on both sides.
                let i_end = run_end(&l.rows, i, left_keys, &lk);
                let j_end = run_end(&r.rows, j, right_keys, &rk);
                for li in i..i_end {
                    for rj in j..j_end {
                        let mut row = l.rows[li].clone();
                        row.extend(r.rows[rj].iter().cloned());
                        out.push(row);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    ctx.stats.add_join_rows(out.len() as u64);
    Ok(Chunk::new(schema, out))
}

fn run_end(rows: &[Row], start: usize, keys: &[usize], key: &[Value]) -> usize {
    let mut end = start + 1;
    while end < rows.len() && key_of(&rows[end], keys) == key {
        end += 1;
    }
    end
}

/// Index-nested-loop join: probe the inner table's index once per outer
/// row. The modeled I/O cost distinguishes clustered vs. unclustered inner
/// heaps, reproducing Figure 19(c) vs. 19(f).
pub fn index_nested_loop_join(
    left: &Plan,
    right_table: &str,
    left_keys: &[usize],
    right_keys: &[usize],
    ctx: &ExecContext,
) -> Result<Chunk> {
    let l = execute(left, ctx)?;
    let t = ctx.table(right_table)?;
    let idx = t
        .index_on(right_keys)
        .ok_or_else(|| EngineError::IndexNotFound(format!("{right_table} on {right_keys:?}")))?;
    let schema = l.schema.join(&t.schema);

    ctx.stats.add_index_lookups(l.rows.len() as u64);
    let clustered = t.is_clustered_on(right_keys);
    let io = cost::index_lookup_cost(l.rows.len() as u64, t.len(), t.avg_row_bytes(), clustered);
    ctx.stats
        .add_random_pages(io / cost::RANDOM_PAGE_COST, cost::RANDOM_PAGE_COST);

    let mut out = Vec::new();
    for lrow in &l.rows {
        let k = key_of(lrow, left_keys);
        if k.iter().any(|v| v.is_null()) {
            continue;
        }
        for &slot in idx.lookup(&k) {
            let mut row = lrow.clone();
            row.extend(t.row(slot).iter().cloned());
            out.push(row);
        }
    }
    ctx.stats.add_join_rows(out.len() as u64);
    Ok(Chunk::new(schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::stats::ExecStats;
    use crate::table::Table;
    use crate::types::DataType;
    use std::collections::HashMap as Map;

    fn setup() -> Map<String, Table> {
        let data_schema = Schema::new(vec![
            Column::new("rid", DataType::Int),
            Column::new("val", DataType::Text),
        ])
        .with_primary_key(&["rid"])
        .unwrap();
        let mut data = Table::new("data", data_schema);
        for i in 0..100i64 {
            data.insert(vec![Value::Int(i), Value::Text(format!("v{i}"))])
                .unwrap();
        }

        let rl_schema = Schema::new(vec![Column::new("rid_tmp", DataType::Int)]);
        let mut rlist = Table::new("rlist", rl_schema);
        for i in (0..100i64).step_by(3) {
            rlist.insert(vec![Value::Int(i)]).unwrap();
        }

        let mut tables = Map::new();
        tables.insert("data".to_string(), data);
        tables.insert("rlist".to_string(), rlist);
        tables
    }

    fn scan(t: &str) -> Plan {
        Plan::SeqScan {
            table: t.into(),
            filter: None,
        }
    }

    fn run(strategy: JoinStrategy, tables: &Map<String, Table>) -> (Chunk, ExecStats) {
        let stats = ExecStats::default();
        let chunk = {
            let ctx = ExecContext {
                tables,
                stats: &stats,
            };
            // data JOIN rlist ON data.rid = rlist.rid_tmp — but for INL we
            // want the indexed table on the right: rlist JOIN data.
            execute_join(&scan("rlist"), &scan("data"), &[0], &[0], strategy, &ctx).unwrap()
        };
        (chunk, stats)
    }

    #[test]
    fn all_strategies_agree() {
        let tables = setup();
        let (h, _) = run(JoinStrategy::Hash, &tables);
        let (m, _) = run(JoinStrategy::Merge, &tables);
        let (i, _) = run(JoinStrategy::IndexNestedLoop, &tables);
        let norm = |c: &Chunk| {
            let mut rows: Vec<String> = c.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(h.rows.len(), 34);
        assert_eq!(norm(&h), norm(&m));
        assert_eq!(norm(&h), norm(&i));
    }

    #[test]
    fn hash_join_counts_build_rows() {
        let tables = setup();
        let (_, stats) = run(JoinStrategy::Hash, &tables);
        // Build side is the right input (data, 100 rows).
        assert_eq!(stats.hash_build_rows(), 100);
        assert_eq!(stats.join_rows(), 34);
    }

    #[test]
    fn inl_join_uses_index_lookups() {
        let tables = setup();
        let (_, stats) = run(JoinStrategy::IndexNestedLoop, &tables);
        assert_eq!(stats.index_lookups(), 34);
        // Only the outer side is seq-scanned.
        assert_eq!(stats.rows_scanned(), 34);
    }

    #[test]
    fn inl_swaps_sides_when_only_left_is_indexed() {
        let tables = setup();
        let stats = ExecStats::default();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        // Inner (right) side has no index, but the left is an indexed base
        // table: the executor probes the left and restores column order.
        let chunk = execute_join(
            &scan("data"),
            &scan("rlist"),
            &[0],
            &[0],
            JoinStrategy::IndexNestedLoop,
            &ctx,
        )
        .unwrap();
        assert_eq!(chunk.rows.len(), 34);
        assert!(stats.index_lookups() > 0);
        // Column order is still data ++ rlist.
        assert_eq!(chunk.schema.column_names(), vec!["rid", "val", "rid_tmp"]);
        for row in &chunk.rows {
            assert_eq!(row[0], row[2]);
            assert!(matches!(row[1], Value::Text(_)));
        }
    }

    #[test]
    fn inl_falls_back_to_hash_when_neither_side_indexed() {
        let tables = setup();
        let stats = ExecStats::default();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        // Self-join of the unindexed rlist table: no index path exists.
        let chunk = execute_join(
            &scan("rlist"),
            &scan("rlist"),
            &[0],
            &[0],
            JoinStrategy::IndexNestedLoop,
            &ctx,
        )
        .unwrap();
        assert_eq!(chunk.rows.len(), 34);
        assert!(stats.hash_build_rows() > 0);
        assert_eq!(stats.index_lookups(), 0);
    }

    #[test]
    fn null_keys_never_match() {
        let mut tables = setup();
        tables
            .get_mut("rlist")
            .unwrap()
            .insert(vec![Value::Null])
            .unwrap();
        let (h, _) = run(JoinStrategy::Hash, &tables);
        let (m, _) = run(JoinStrategy::Merge, &tables);
        assert_eq!(h.rows.len(), 34);
        assert_eq!(m.rows.len(), 34);
    }

    #[test]
    fn merge_join_handles_duplicate_runs() {
        let mut tables = Map::new();
        let s = Schema::new(vec![Column::new("k", DataType::Int)]);
        let mut a = Table::new("a", s.clone());
        let mut b = Table::new("b", s);
        for _ in 0..3 {
            a.insert(vec![Value::Int(1)]).unwrap();
        }
        for _ in 0..2 {
            b.insert(vec![Value::Int(1)]).unwrap();
        }
        tables.insert("a".into(), a);
        tables.insert("b".into(), b);
        let stats = ExecStats::default();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let chunk = execute_join(
            &scan("a"),
            &scan("b"),
            &[0],
            &[0],
            JoinStrategy::Merge,
            &ctx,
        )
        .unwrap();
        assert_eq!(chunk.rows.len(), 6);
    }
}
