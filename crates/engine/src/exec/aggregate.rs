//! Hash aggregation with GROUP BY.
//!
//! OrpheusDB's versioned analytics — "the aggregate count of protein-protein
//! tuples with confidence > 0.9, for each version" — compile down to GROUP
//! BY queries over the versioning/data tables, so the engine supports the
//! standard aggregate set plus `array_agg` (used to build `rlist` values
//! during commit).

use std::collections::HashMap;

use crate::error::{EngineError, Result};
use crate::exec::{execute, Chunk, ExecContext, Plan};
use crate::expr::Expr;
use crate::schema::Schema;
use crate::types::{Row, Value};

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Collect int values into an `INT[]` in input order.
    ArrayAgg,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "array_agg" => Some(AggFunc::ArrayAgg),
            _ => None,
        }
    }
}

/// One aggregate in the SELECT list.
#[derive(Debug, Clone)]
pub struct Aggregate {
    pub func: AggFunc,
    /// Argument expression; ignored for `CountStar`.
    pub arg: Option<Expr>,
    pub distinct: bool,
}

/// Running accumulator for one aggregate within one group.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum {
        total: f64,
        all_int: bool,
        seen: bool,
    },
    Avg {
        total: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    ArrayAgg(Vec<i64>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                total: 0.0,
                all_int: true,
                seen: false,
            },
            AggFunc::Avg => Acc::Avg { total: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::ArrayAgg => Acc::ArrayAgg(Vec::new()),
        }
    }

    fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            Acc::Count(c) => {
                // CountStar passes Some(dummy); Count passes the arg value
                // and skips NULLs.
                match v {
                    Some(val) if !val.is_null() => *c += 1,
                    _ => {}
                }
            }
            Acc::Sum {
                total,
                all_int,
                seen,
            } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if matches!(val, Value::Double(_)) {
                            *all_int = false;
                        }
                        *total += val.as_double()?;
                        *seen = true;
                    }
                }
            }
            Acc::Avg { total, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *total += val.as_double()?;
                        *n += 1;
                    }
                }
            }
            Acc::Min(best) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match best {
                            None => true,
                            Some(b) => val.total_cmp(b).is_lt(),
                        };
                        if replace {
                            *best = Some(val);
                        }
                    }
                }
            }
            Acc::Max(best) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match best {
                            None => true,
                            Some(b) => val.total_cmp(b).is_gt(),
                        };
                        if replace {
                            *best = Some(val);
                        }
                    }
                }
            }
            Acc::ArrayAgg(items) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        items.push(val.as_int()?);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(c),
            Acc::Sum {
                total,
                all_int,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if all_int && total.fract() == 0.0 {
                    Value::Int(total as i64)
                } else {
                    Value::Double(total)
                }
            }
            Acc::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(total / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::ArrayAgg(items) => Value::IntArray(items),
        }
    }
}

/// Execute hash aggregation. Output rows are `group_by values ++ aggregate
/// values`, in first-seen group order (deterministic given input order).
pub fn execute_aggregate(
    input: &Plan,
    group_by: &[Expr],
    aggregates: &[Aggregate],
    schema: &Schema,
    ctx: &ExecContext,
) -> Result<Chunk> {
    let chunk = execute(input, ctx)?;

    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut distinct_seen: HashMap<(Vec<Value>, usize), std::collections::HashSet<Value>> =
        HashMap::new();

    // With no GROUP BY the whole input forms a single (possibly empty) group.
    let implicit_single_group = group_by.is_empty();
    if implicit_single_group {
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|a| Acc::new(a.func)).collect(),
        );
        order.push(Vec::new());
    }

    for row in &chunk.rows {
        let key: Vec<Value> = group_by
            .iter()
            .map(|e| e.eval(row))
            .collect::<Result<_>>()?;
        ctx.stats.add_hash_build_rows(1);
        if !groups.contains_key(&key) {
            groups.insert(
                key.clone(),
                aggregates.iter().map(|a| Acc::new(a.func)).collect(),
            );
            order.push(key.clone());
        }
        let accs = groups.get_mut(&key).expect("group just inserted");
        for (i, (agg, acc)) in aggregates.iter().zip(accs.iter_mut()).enumerate() {
            let v = match agg.func {
                AggFunc::CountStar => Some(Value::Bool(true)),
                _ => {
                    let arg = agg
                        .arg
                        .as_ref()
                        .ok_or_else(|| {
                            EngineError::Plan(format!("aggregate {:?} missing argument", agg.func))
                        })?
                        .eval(row)?;
                    if agg.distinct && !arg.is_null() {
                        let seen = distinct_seen.entry((key.clone(), i)).or_default();
                        if !seen.insert(arg.clone()) {
                            continue;
                        }
                    }
                    Some(arg)
                }
            };
            acc.update(v)?;
        }
    }

    let mut rows: Vec<Row> = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group exists");
        let mut row = key;
        for acc in accs {
            row.push(acc.finish());
        }
        rows.push(row);
    }
    Ok(Chunk::new(schema.clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::stats::ExecStats;
    use crate::table::Table;
    use crate::types::DataType;
    use std::collections::HashMap as Map;

    fn setup() -> Map<String, Table> {
        let schema = Schema::new(vec![
            Column::new("grp", DataType::Int),
            Column::new("x", DataType::Int),
        ]);
        let mut t = Table::new("t", schema);
        for (g, x) in [(1, 10), (1, 20), (2, 5), (2, 5), (2, 7)] {
            t.insert(vec![Value::Int(g), Value::Int(x)]).unwrap();
        }
        let mut m = Map::new();
        m.insert("t".into(), t);
        m
    }

    fn agg_schema(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| Column::new(format!("c{i}"), DataType::Int))
                .collect(),
        )
    }

    fn run(group_by: Vec<Expr>, aggs: Vec<Aggregate>) -> Chunk {
        let tables = setup();
        let stats = ExecStats::default();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let width = group_by.len() + aggs.len();
        let plan = Plan::Aggregate {
            input: Box::new(Plan::SeqScan {
                table: "t".into(),
                filter: None,
            }),
            group_by,
            aggregates: aggs,
            schema: agg_schema(width),
        };
        execute(&plan, &ctx).unwrap()
    }

    #[test]
    fn group_by_count_sum_avg() {
        let chunk = run(
            vec![Expr::col(0)],
            vec![
                Aggregate {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                },
                Aggregate {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(1)),
                    distinct: false,
                },
                Aggregate {
                    func: AggFunc::Avg,
                    arg: Some(Expr::col(1)),
                    distinct: false,
                },
            ],
        );
        assert_eq!(chunk.rows.len(), 2);
        // Groups appear in first-seen order: 1 then 2.
        assert_eq!(chunk.rows[0][0], Value::Int(1));
        assert_eq!(chunk.rows[0][1], Value::Int(2));
        assert_eq!(chunk.rows[0][2], Value::Int(30));
        assert_eq!(chunk.rows[0][3], Value::Double(15.0));
        assert_eq!(chunk.rows[1][1], Value::Int(3));
        assert_eq!(chunk.rows[1][2], Value::Int(17));
    }

    #[test]
    fn min_max_and_distinct_count() {
        let chunk = run(
            vec![Expr::col(0)],
            vec![
                Aggregate {
                    func: AggFunc::Min,
                    arg: Some(Expr::col(1)),
                    distinct: false,
                },
                Aggregate {
                    func: AggFunc::Max,
                    arg: Some(Expr::col(1)),
                    distinct: false,
                },
                Aggregate {
                    func: AggFunc::Count,
                    arg: Some(Expr::col(1)),
                    distinct: true,
                },
            ],
        );
        assert_eq!(chunk.rows[1][0], Value::Int(2));
        assert_eq!(chunk.rows[1][1], Value::Int(5));
        assert_eq!(chunk.rows[1][2], Value::Int(7));
        assert_eq!(chunk.rows[1][3], Value::Int(2)); // distinct {5, 7}
    }

    #[test]
    fn array_agg_collects_in_order() {
        let chunk = run(
            vec![Expr::col(0)],
            vec![Aggregate {
                func: AggFunc::ArrayAgg,
                arg: Some(Expr::col(1)),
                distinct: false,
            }],
        );
        assert_eq!(chunk.rows[0][1], Value::IntArray(vec![10, 20]));
        assert_eq!(chunk.rows[1][1], Value::IntArray(vec![5, 5, 7]));
    }

    #[test]
    fn global_aggregate_on_empty_group_by() {
        let chunk = run(
            vec![],
            vec![Aggregate {
                func: AggFunc::CountStar,
                arg: None,
                distinct: false,
            }],
        );
        assert_eq!(chunk.rows.len(), 1);
        assert_eq!(chunk.rows[0][0], Value::Int(5));
    }
}
