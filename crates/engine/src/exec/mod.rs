//! Physical query plans and their (materialized) execution.
//!
//! The planner lowers SQL into a small tree of [`Plan`] nodes; execution is
//! bottom-up and fully materialized — each node consumes and produces a
//! [`Chunk`] (schema + row vector). Scans and index lookups account rows and
//! modeled page I/O into [`crate::stats::ExecStats`], which is how the
//! benchmark harness observes the cost behaviour studied in Appendix D.1.

pub mod aggregate;
pub mod explain;
pub mod join;

use std::collections::HashMap;

use crate::cost;
use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::index::IndexKey;
use crate::schema::Schema;
use crate::stats::ExecStats;
use crate::table::Table;
use crate::types::{Row, Value};

pub use aggregate::{AggFunc, Aggregate};
pub use join::JoinStrategy;

/// A materialized intermediate result.
#[derive(Debug, Clone)]
pub struct Chunk {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl Chunk {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Chunk {
        Chunk { schema, rows }
    }

    pub fn empty(schema: Schema) -> Chunk {
        Chunk {
            schema,
            rows: Vec::new(),
        }
    }
}

/// One projection item; `unnest` marks a set-returning `unnest(array)`
/// column that expands each input row into one row per array element.
#[derive(Debug, Clone)]
pub struct ProjItem {
    pub expr: Expr,
    pub unnest: bool,
}

/// Sort key: expression plus direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    pub expr: Expr,
    pub desc: bool,
}

/// Physical plan tree.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Full scan of a base table with an optional residual filter.
    SeqScan {
        table: String,
        filter: Option<Expr>,
    },
    /// Point lookup(s) through an index on `cols`, with optional residual.
    IndexLookup {
        table: String,
        cols: Vec<usize>,
        keys: Vec<IndexKey>,
        filter: Option<Expr>,
    },
    /// Inline constant rows.
    Values {
        schema: Schema,
        rows: Vec<Row>,
    },
    Filter {
        input: Box<Plan>,
        predicate: Expr,
    },
    /// Projection; may contain at most one unnest item.
    Project {
        input: Box<Plan>,
        items: Vec<ProjItem>,
        schema: Schema,
    },
    /// Equi-join on positional keys with a selectable algorithm.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        strategy: JoinStrategy,
    },
    /// Cross join with optional predicate (fallback for non-equi joins).
    NestedLoop {
        left: Box<Plan>,
        right: Box<Plan>,
        predicate: Option<Expr>,
    },
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<Expr>,
        aggregates: Vec<Aggregate>,
        schema: Schema,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
    },
    Limit {
        input: Box<Plan>,
        limit: usize,
    },
}

/// Everything execution needs: the table catalog and the stats sink.
pub struct ExecContext<'a> {
    pub tables: &'a HashMap<String, Table>,
    pub stats: &'a ExecStats,
}

impl<'a> ExecContext<'a> {
    pub fn table(&self, name: &str) -> Result<&'a Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }
}

impl Plan {
    /// Output schema of the plan (resolving base tables through `ctx`).
    pub fn output_schema(&self, ctx: &ExecContext) -> Result<Schema> {
        match self {
            Plan::SeqScan { table, .. } | Plan::IndexLookup { table, .. } => {
                Ok(ctx.table(table)?.schema.clone())
            }
            Plan::Values { schema, .. } => Ok(schema.clone()),
            Plan::Filter { input, .. } => input.output_schema(ctx),
            Plan::Project { schema, .. } => Ok(schema.clone()),
            Plan::Join { left, right, .. } | Plan::NestedLoop { left, right, .. } => {
                Ok(left.output_schema(ctx)?.join(&right.output_schema(ctx)?))
            }
            Plan::Aggregate { schema, .. } => Ok(schema.clone()),
            Plan::Sort { input, .. } | Plan::Limit { input, .. } => input.output_schema(ctx),
        }
    }
}

/// Execute a plan to a materialized chunk.
pub fn execute(plan: &Plan, ctx: &ExecContext) -> Result<Chunk> {
    match plan {
        Plan::SeqScan { table, filter } => seq_scan(table, filter.as_ref(), ctx),
        Plan::IndexLookup {
            table,
            cols,
            keys,
            filter,
        } => index_lookup(table, cols, keys, filter.as_ref(), ctx),
        Plan::Values { schema, rows } => Ok(Chunk::new(schema.clone(), rows.clone())),
        Plan::Filter { input, predicate } => {
            let mut chunk = execute(input, ctx)?;
            let mut out = Vec::new();
            for row in chunk.rows.drain(..) {
                if predicate.eval_predicate(&row)? {
                    out.push(row);
                }
            }
            Ok(Chunk::new(chunk.schema, out))
        }
        Plan::Project {
            input,
            items,
            schema,
        } => project(input, items, schema, ctx),
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            strategy,
        } => join::execute_join(left, right, left_keys, right_keys, *strategy, ctx),
        Plan::NestedLoop {
            left,
            right,
            predicate,
        } => nested_loop(left, right, predicate.as_ref(), ctx),
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
            schema,
        } => aggregate::execute_aggregate(input, group_by, aggregates, schema, ctx),
        Plan::Sort { input, keys } => sort(input, keys, ctx),
        Plan::Limit { input, limit } => {
            let mut chunk = execute(input, ctx)?;
            chunk.rows.truncate(*limit);
            Ok(chunk)
        }
    }
}

fn seq_scan(table: &str, filter: Option<&Expr>, ctx: &ExecContext) -> Result<Chunk> {
    let t = ctx.table(table)?;
    let n = t.len();
    ctx.stats.add_rows_scanned(n as u64);
    ctx.stats
        .add_seq_pages(cost::pages_for(n, t.avg_row_bytes()), cost::SEQ_PAGE_COST);
    let mut rows = Vec::new();
    match filter {
        None => rows.extend(t.rows().iter().cloned()),
        Some(pred) => {
            for row in t.rows() {
                if pred.eval_predicate(row)? {
                    rows.push(row.clone());
                }
            }
        }
    }
    Ok(Chunk::new(t.schema.clone(), rows))
}

fn index_lookup(
    table: &str,
    cols: &[usize],
    keys: &[IndexKey],
    filter: Option<&Expr>,
    ctx: &ExecContext,
) -> Result<Chunk> {
    let t = ctx.table(table)?;
    let idx = t
        .index_on(cols)
        .ok_or_else(|| EngineError::IndexNotFound(format!("{table} on columns {cols:?}")))?;
    ctx.stats.add_index_lookups(keys.len() as u64);
    let clustered = t.is_clustered_on(cols);
    let io = cost::index_lookup_cost(keys.len() as u64, t.len(), t.avg_row_bytes(), clustered);
    // Charge the modeled cost as random pages (the cost fn already blends).
    ctx.stats
        .add_random_pages(io / cost::RANDOM_PAGE_COST, cost::RANDOM_PAGE_COST);
    let mut rows = Vec::new();
    for key in keys {
        for &slot in idx.lookup(key) {
            let row = t.row(slot);
            match filter {
                Some(pred) if !pred.eval_predicate(row)? => {}
                _ => rows.push(row.clone()),
            }
        }
    }
    Ok(Chunk::new(t.schema.clone(), rows))
}

fn project(input: &Plan, items: &[ProjItem], schema: &Schema, ctx: &ExecContext) -> Result<Chunk> {
    let chunk = execute(input, ctx)?;
    let unnest_count = items.iter().filter(|i| i.unnest).count();
    if unnest_count > 1 {
        return Err(EngineError::Plan(
            "at most one unnest(..) per SELECT list is supported".into(),
        ));
    }
    let mut out = Vec::with_capacity(chunk.rows.len());
    for row in &chunk.rows {
        if unnest_count == 0 {
            let mut r = Vec::with_capacity(items.len());
            for it in items {
                r.push(it.expr.eval(row)?);
            }
            out.push(r);
        } else {
            // Evaluate scalar items once, expand the unnest item.
            let scalar: Vec<Option<Value>> = items
                .iter()
                .map(|it| {
                    if it.unnest {
                        Ok(None)
                    } else {
                        it.expr.eval(row).map(Some)
                    }
                })
                .collect::<Result<_>>()?;
            let upos = items.iter().position(|i| i.unnest).unwrap();
            let arr_v = items[upos].expr.eval(row)?;
            if arr_v.is_null() {
                continue; // unnest(NULL) yields no rows, like PostgreSQL.
            }
            let arr = arr_v.as_int_array()?;
            for &elem in arr {
                let mut r = Vec::with_capacity(items.len());
                for (i, s) in scalar.iter().enumerate() {
                    match s {
                        Some(v) => r.push(v.clone()),
                        None => {
                            debug_assert_eq!(i, upos);
                            r.push(Value::Int(elem));
                        }
                    }
                }
                out.push(r);
            }
        }
    }
    Ok(Chunk::new(schema.clone(), out))
}

fn nested_loop(
    left: &Plan,
    right: &Plan,
    predicate: Option<&Expr>,
    ctx: &ExecContext,
) -> Result<Chunk> {
    let l = execute(left, ctx)?;
    let r = execute(right, ctx)?;
    let schema = l.schema.join(&r.schema);
    let mut out = Vec::new();
    for lr in &l.rows {
        for rr in &r.rows {
            let mut row = lr.clone();
            row.extend(rr.iter().cloned());
            match predicate {
                Some(p) if !p.eval_predicate(&row)? => {}
                _ => out.push(row),
            }
        }
    }
    ctx.stats.add_join_rows(out.len() as u64);
    Ok(Chunk::new(schema, out))
}

fn sort(input: &Plan, keys: &[SortKey], ctx: &ExecContext) -> Result<Chunk> {
    let mut chunk = execute(input, ctx)?;
    // Precompute key tuples to avoid re-evaluating expressions in the
    // comparator (and to surface evaluation errors eagerly).
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(chunk.rows.len());
    for row in chunk.rows.drain(..) {
        let mut k = Vec::with_capacity(keys.len());
        for sk in keys {
            k.push(sk.expr.eval(&row)?);
        }
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, sk) in keys.iter().enumerate() {
            let mut ord = ka[i].total_cmp(&kb[i]);
            if sk.desc {
                ord = ord.reverse();
            }
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    chunk.rows = keyed.into_iter().map(|(_, r)| r).collect();
    Ok(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::schema::Column;
    use crate::types::DataType;

    fn ctx_with_table() -> (HashMap<String, Table>, ExecStats) {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("grp", DataType::Int),
            Column::new("arr", DataType::IntArray),
        ])
        .with_primary_key(&["id"])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..6i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i % 2),
                Value::IntArray(vec![i, i + 1]),
            ])
            .unwrap();
        }
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), t);
        (tables, ExecStats::default())
    }

    #[test]
    fn seq_scan_counts_rows_and_pages() {
        let (tables, stats) = ctx_with_table();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let plan = Plan::SeqScan {
            table: "t".into(),
            filter: None,
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows.len(), 6);
        assert_eq!(stats.rows_scanned(), 6);
        assert!(stats.seq_pages() >= 1.0);
    }

    #[test]
    fn filtered_scan() {
        let (tables, stats) = ctx_with_table();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let plan = Plan::SeqScan {
            table: "t".into(),
            filter: Some(Expr::bin(BinOp::Eq, Expr::col(1), Expr::lit(0))),
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows.len(), 3);
    }

    #[test]
    fn index_lookup_uses_pk() {
        let (tables, stats) = ctx_with_table();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let plan = Plan::IndexLookup {
            table: "t".into(),
            cols: vec![0],
            keys: vec![vec![Value::Int(3)], vec![Value::Int(5)]],
            filter: None,
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows.len(), 2);
        assert_eq!(stats.index_lookups(), 2);
        assert_eq!(stats.rows_scanned(), 0);
    }

    #[test]
    fn unnest_expands_rows() {
        let (tables, stats) = ctx_with_table();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("elem", DataType::Int),
        ]);
        let plan = Plan::Project {
            input: Box::new(Plan::SeqScan {
                table: "t".into(),
                filter: None,
            }),
            items: vec![
                ProjItem {
                    expr: Expr::col(0),
                    unnest: false,
                },
                ProjItem {
                    expr: Expr::col(2),
                    unnest: true,
                },
            ],
            schema,
        };
        let chunk = execute(&plan, &ctx).unwrap();
        // 6 rows × 2 elements each.
        assert_eq!(chunk.rows.len(), 12);
        assert_eq!(chunk.rows[0], vec![Value::Int(0), Value::Int(0)]);
        assert_eq!(chunk.rows[1], vec![Value::Int(0), Value::Int(1)]);
    }

    #[test]
    fn sort_and_limit() {
        let (tables, stats) = ctx_with_table();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let plan = Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(Plan::SeqScan {
                    table: "t".into(),
                    filter: None,
                }),
                keys: vec![SortKey {
                    expr: Expr::col(0),
                    desc: true,
                }],
            }),
            limit: 2,
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows.len(), 2);
        assert_eq!(chunk.rows[0][0], Value::Int(5));
        assert_eq!(chunk.rows[1][0], Value::Int(4));
    }

    #[test]
    fn nested_loop_cross_product_with_predicate() {
        let (tables, stats) = ctx_with_table();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let scan = Plan::SeqScan {
            table: "t".into(),
            filter: None,
        };
        // Self-join on id (columns 0 and 3 after concatenation).
        let plan = Plan::NestedLoop {
            left: Box::new(scan.clone()),
            right: Box::new(scan),
            predicate: Some(Expr::bin(BinOp::Eq, Expr::col(0), Expr::col(3))),
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows.len(), 6);
        assert_eq!(chunk.schema.arity(), 6);
    }
}
