//! Physical-plan rendering for `EXPLAIN`, in the spirit of PostgreSQL's
//! one-node-per-line, two-space-indented output. The renderer shows what
//! the paper's Appendix D.1 analysis cares about: which access path each
//! relation uses (sequential scan vs index lookup) and which join
//! algorithm connects them.

use super::{Plan, ProjItem};
use crate::exec::join::JoinStrategy;

/// Render a plan as indented lines, roots first.
pub fn render(plan: &Plan) -> Vec<String> {
    let mut lines = Vec::new();
    walk(plan, 0, &mut lines);
    lines
}

fn push(lines: &mut Vec<String>, depth: usize, text: String) {
    if depth == 0 {
        lines.push(text);
    } else {
        lines.push(format!("{}-> {text}", "  ".repeat(depth)));
    }
}

fn strategy_name(s: JoinStrategy) -> &'static str {
    match s {
        JoinStrategy::Auto => "Join (auto)",
        JoinStrategy::Hash => "Hash Join",
        JoinStrategy::Merge => "Merge Join",
        JoinStrategy::IndexNestedLoop => "Index Nested Loop Join",
    }
}

fn filter_suffix(filter: &Option<crate::expr::Expr>) -> &'static str {
    if filter.is_some() {
        " with filter"
    } else {
        ""
    }
}

fn walk(plan: &Plan, depth: usize, lines: &mut Vec<String>) {
    match plan {
        Plan::SeqScan { table, filter } => {
            push(
                lines,
                depth,
                format!("Seq Scan on {table}{}", filter_suffix(filter)),
            );
        }
        Plan::IndexLookup {
            table,
            cols,
            keys,
            filter,
        } => {
            push(
                lines,
                depth,
                format!(
                    "Index Lookup on {table} (cols {:?}, {} key{}){}",
                    cols,
                    keys.len(),
                    if keys.len() == 1 { "" } else { "s" },
                    filter_suffix(filter)
                ),
            );
        }
        Plan::Values { rows, .. } => {
            push(
                lines,
                depth,
                format!(
                    "Values ({} row{})",
                    rows.len(),
                    if rows.len() == 1 { "" } else { "s" }
                ),
            );
        }
        Plan::Filter { input, .. } => {
            push(lines, depth, "Filter".to_string());
            walk(input, depth + 1, lines);
        }
        Plan::Project { input, items, .. } => {
            let unnests = items.iter().filter(|i| is_unnest(i)).count();
            let label = if unnests > 0 {
                format!("Project ({} columns, {unnests} unnest)", items.len())
            } else {
                format!("Project ({} columns)", items.len())
            };
            push(lines, depth, label);
            walk(input, depth + 1, lines);
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            strategy,
        } => {
            push(
                lines,
                depth,
                format!(
                    "{} (left cols {:?} = right cols {:?})",
                    strategy_name(*strategy),
                    left_keys,
                    right_keys
                ),
            );
            walk(left, depth + 1, lines);
            walk(right, depth + 1, lines);
        }
        Plan::NestedLoop {
            left,
            right,
            predicate,
        } => {
            push(
                lines,
                depth,
                format!(
                    "Nested Loop{}",
                    if predicate.is_some() {
                        " with predicate"
                    } else {
                        " (cross)"
                    }
                ),
            );
            walk(left, depth + 1, lines);
            walk(right, depth + 1, lines);
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
            ..
        } => {
            push(
                lines,
                depth,
                format!(
                    "Aggregate ({} group key{}, {} aggregate{})",
                    group_by.len(),
                    if group_by.len() == 1 { "" } else { "s" },
                    aggregates.len(),
                    if aggregates.len() == 1 { "" } else { "s" }
                ),
            );
            walk(input, depth + 1, lines);
        }
        Plan::Sort { input, keys } => {
            push(
                lines,
                depth,
                format!(
                    "Sort ({} key{})",
                    keys.len(),
                    if keys.len() == 1 { "" } else { "s" }
                ),
            );
            walk(input, depth + 1, lines);
        }
        Plan::Limit { input, limit } => {
            push(lines, depth, format!("Limit {limit}"));
            walk(input, depth + 1, lines);
        }
    }
}

fn is_unnest(item: &ProjItem) -> bool {
    item.unnest
}

#[cfg(test)]
mod tests {
    use crate::Database;

    fn explain_text(db: &mut Database, sql: &str) -> String {
        let r = db.query(&format!("EXPLAIN {sql}")).unwrap();
        assert_eq!(r.schema.columns[0].name, "QUERY PLAN");
        r.rows
            .iter()
            .map(|row| row[0].to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE d (rid INT PRIMARY KEY, v INT)")
            .unwrap();
        db.execute("CREATE TABLE r (vid INT PRIMARY KEY, rlist INT[])")
            .unwrap();
        db.execute("INSERT INTO d VALUES (1, 10), (2, 20)").unwrap();
        db.execute("INSERT INTO r VALUES (1, ARRAY[1,2])").unwrap();
        db
    }

    #[test]
    fn renders_scan_and_index_paths() {
        let mut db = setup();
        let t = explain_text(&mut db, "SELECT * FROM d WHERE v = 10");
        assert!(t.contains("Seq Scan on d"), "{t}");
        let t = explain_text(&mut db, "SELECT * FROM d WHERE rid = 1");
        assert!(t.contains("Index Lookup on d"), "{t}");
    }

    #[test]
    fn renders_join_tree_with_strategy_and_indentation() {
        let mut db = setup();
        db.execute("SET join_strategy = 'merge'").unwrap();
        let t = explain_text(
            &mut db,
            "SELECT * FROM d, (SELECT unnest(rlist) AS x FROM r WHERE vid = 1) t \
             WHERE rid = x",
        );
        assert!(t.contains("Merge Join"), "{t}");
        assert!(t.contains("unnest"), "{t}");
        let lines: Vec<&str> = t.lines().collect();
        let join_line = lines.iter().position(|l| l.contains("Merge Join")).unwrap();
        assert!(lines[join_line + 1].starts_with("  "), "{t}");
    }

    #[test]
    fn renders_aggregate_sort_limit_chain() {
        let mut db = setup();
        let t = explain_text(
            &mut db,
            "SELECT v, count(*) FROM d GROUP BY v ORDER BY v LIMIT 5",
        );
        assert!(t.contains("Limit 5"), "{t}");
        assert!(t.contains("Sort (1 key)"), "{t}");
        assert!(t.contains("Aggregate (1 group key, 1 aggregate)"), "{t}");
    }

    #[test]
    fn explain_does_not_execute() {
        let mut db = setup();
        let before = db.stats.snapshot();
        db.query("EXPLAIN SELECT * FROM d").unwrap();
        // Planning touches no rows; the scan never ran.
        assert_eq!(db.stats.snapshot().rows_scanned, before.rows_scanned);
        // EXPLAIN on a bad query still errors.
        assert!(db.query("EXPLAIN SELECT * FROM nope").is_err());
    }

    #[test]
    fn explain_prints_and_reparses() {
        use crate::sql::parser::parse_statement;
        let stmt = parse_statement("EXPLAIN SELECT v FROM d WHERE rid = 1").unwrap();
        let printed = stmt.to_string();
        assert!(printed.starts_with("EXPLAIN SELECT"), "{printed}");
        let again = parse_statement(&printed).unwrap();
        assert_eq!(printed, again.to_string());
    }
}
