//! Secondary indexes: hash indexes for point lookups (used for the `vid`
//! and `rid` primary keys of the versioning/data tables) and BTree indexes
//! for ordered access (merge joins).

use std::collections::{BTreeMap, HashMap};

use crate::error::{EngineError, Result};
use crate::types::{Row, Value};

/// Key extracted from a row for one or more indexed columns.
pub type IndexKey = Vec<Value>;

/// Kind of physical index structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    BTree,
}

/// A secondary index over a table.
///
/// Positions stored in the index are row slots in the owning table's heap;
/// the table is responsible for keeping them in sync on insert, delete and
/// re-clustering (indexes are rebuilt when the heap is reordered).
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    pub columns: Vec<usize>,
    pub unique: bool,
    kind: IndexKind,
    hash: HashMap<IndexKey, Vec<usize>>,
    btree: BTreeMap<IndexKey, Vec<usize>>,
}

impl Index {
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Index {
        Index {
            name: name.into(),
            columns,
            unique,
            kind,
            hash: HashMap::new(),
            btree: BTreeMap::new(),
        }
    }

    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.len(),
            IndexKind::BTree => self.btree.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a (key, slot) pair, enforcing uniqueness if requested.
    pub fn insert(&mut self, key: IndexKey, slot: usize) -> Result<()> {
        let bucket = match self.kind {
            IndexKind::Hash => self.hash.entry(key.clone()).or_default(),
            IndexKind::BTree => self.btree.entry(key.clone()).or_default(),
        };
        if self.unique && !bucket.is_empty() {
            return Err(EngineError::UniqueViolation(format!(
                "index {}: duplicate key {:?}",
                self.name, key
            )));
        }
        bucket.push(slot);
        Ok(())
    }

    /// Remove a (key, slot) pair; no-op when absent.
    pub fn remove(&mut self, key: &IndexKey, slot: usize) {
        let (empty, found) = match self.kind {
            IndexKind::Hash => match self.hash.get_mut(key) {
                Some(b) => {
                    b.retain(|&s| s != slot);
                    (b.is_empty(), true)
                }
                None => (false, false),
            },
            IndexKind::BTree => match self.btree.get_mut(key) {
                Some(b) => {
                    b.retain(|&s| s != slot);
                    (b.is_empty(), true)
                }
                None => (false, false),
            },
        };
        if found && empty {
            match self.kind {
                IndexKind::Hash => {
                    self.hash.remove(key);
                }
                IndexKind::BTree => {
                    self.btree.remove(key);
                }
            }
        }
    }

    /// Slots matching the exact key.
    pub fn lookup(&self, key: &IndexKey) -> &[usize] {
        match self.kind {
            IndexKind::Hash => self.hash.get(key).map(|v| v.as_slice()).unwrap_or(&[]),
            IndexKind::BTree => self.btree.get(key).map(|v| v.as_slice()).unwrap_or(&[]),
        }
    }

    /// Iterate all (key, slots) in key order (BTree) or arbitrary order
    /// (hash).
    pub fn iter(&self) -> Box<dyn Iterator<Item = (&IndexKey, &Vec<usize>)> + '_> {
        match self.kind {
            IndexKind::Hash => Box::new(self.hash.iter()),
            IndexKind::BTree => Box::new(self.btree.iter()),
        }
    }

    /// Drop all entries (used before a rebuild).
    pub fn clear(&mut self) {
        self.hash.clear();
        self.btree.clear();
    }

    /// Approximate memory footprint used in storage accounting: an index
    /// entry costs roughly key bytes + slot pointer. The paper counts index
    /// sizes in the total storage numbers of Figure 3a.
    pub fn storage_bytes(&self) -> usize {
        let entry = |k: &IndexKey, slots: &Vec<usize>| -> usize {
            k.iter().map(|v| v.storage_bytes()).sum::<usize>() + 8 * slots.len() + 16
        };
        match self.kind {
            IndexKind::Hash => self.hash.iter().map(|(k, s)| entry(k, s)).sum(),
            IndexKind::BTree => self.btree.iter().map(|(k, s)| entry(k, s)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> IndexKey {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn hash_index_point_lookup() {
        let mut idx = Index::new("i", vec![0], false, IndexKind::Hash);
        idx.insert(key(&[1]), 0).unwrap();
        idx.insert(key(&[1]), 3).unwrap();
        idx.insert(key(&[2]), 1).unwrap();
        assert_eq!(idx.lookup(&key(&[1])), &[0, 3]);
        assert_eq!(idx.lookup(&key(&[9])), &[] as &[usize]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut idx = Index::new("pk", vec![0, 1], true, IndexKind::Hash);
        idx.insert(key(&[1, 2]), 0).unwrap();
        let err = idx.insert(key(&[1, 2]), 1).unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation(_)));
        // A different composite key is fine.
        idx.insert(key(&[1, 3]), 1).unwrap();
    }

    #[test]
    fn remove_cleans_up_empty_buckets() {
        let mut idx = Index::new("i", vec![0], false, IndexKind::BTree);
        idx.insert(key(&[5]), 7).unwrap();
        idx.remove(&key(&[5]), 7);
        assert!(idx.is_empty());
        // Removing again is a no-op.
        idx.remove(&key(&[5]), 7);
    }

    #[test]
    fn btree_iterates_in_key_order() {
        let mut idx = Index::new("i", vec![0], false, IndexKind::BTree);
        for (i, k) in [5i64, 1, 3].iter().enumerate() {
            idx.insert(key(&[*k]), i).unwrap();
        }
        let keys: Vec<i64> = idx
            .iter()
            .map(|(k, _)| match &k[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn storage_accounting_grows_with_entries() {
        let mut idx = Index::new("i", vec![0], false, IndexKind::Hash);
        let empty = idx.storage_bytes();
        idx.insert(key(&[1]), 0).unwrap();
        assert!(idx.storage_bytes() > empty);
    }
}
