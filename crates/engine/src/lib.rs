//! # orpheus-engine
//!
//! A minimal, from-scratch relational engine that serves as the backend
//! substrate for OrpheusDB (VLDB 2017). It stands in for PostgreSQL in the
//! paper's architecture: the engine is completely unaware of dataset
//! versions; the `orpheus-core` middleware maps version-control operations
//! onto ordinary SQL statements executed here.
//!
//! The engine provides exactly the features the paper's SQL translations
//! (Table 1) and cost-model experiments (Appendix D.1) rely on:
//!
//! * typed heap tables with composite primary keys and integer-array values;
//! * hash and BTree secondary indexes, plus physical clustering of a table
//!   on a chosen key (`CLUSTER ... USING ...`);
//! * a SQL dialect covering `SELECT [INTO]` with comma joins, derived-table
//!   subqueries, `unnest(..)`, `ARRAY[..]` literals and `ARRAY(SELECT ..)`
//!   subqueries, array containment `<@`, `IN (subquery)`, `GROUP BY`
//!   aggregates, `ORDER BY`/`LIMIT`, and the usual DML/DDL;
//! * three join algorithms — hash, merge and index-nested-loop — selectable
//!   per statement, mirroring the join study of Appendix D.1;
//! * a page-based I/O cost model (`cost`) with sequential/random page costs
//!   so experiments can report deterministic cost alongside wall-clock time;
//! * durable, checksummed snapshots (`storage`) so a database survives
//!   process restarts — the property PostgreSQL gives the paper for free.
//!
//! The executor is fully materialized (each operator consumes and produces
//! row vectors); this keeps the engine small while preserving the asymptotic
//! behaviour — full scans, hash builds/probes, index lookups — that the
//! paper's latency arguments rest on.

pub mod cost;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod table;
pub mod types;

pub use db::{Database, EngineSettings, QueryResult};
pub use error::{EngineError, Result};
pub use exec::join::JoinStrategy;
pub use schema::{Column, Schema};
pub use stats::ExecStats;
pub use table::Table;
pub use types::{DataType, Row, Value};
