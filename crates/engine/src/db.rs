//! The database front-end: catalog of tables, session settings, statement
//! execution. This is the component that plays PostgreSQL's role in the
//! OrpheusDB architecture (Figure 2): the middleware connects here and
//! issues plain SQL, never version-aware operations.

use std::collections::HashMap;

use crate::error::{EngineError, Result};
use crate::exec::{ExecContext, JoinStrategy};
use crate::index::IndexKind;
use crate::schema::{Column, Schema};
use crate::sql::ast::{ColumnDef, InsertSource, Statement};
use crate::sql::parser::{parse_script, parse_statement};
use crate::sql::planner;
use crate::stats::ExecStats;
use crate::table::Table;
use crate::types::{Row, Value};

/// Session-level settings.
#[derive(Debug, Clone, Default)]
pub struct EngineSettings {
    /// Join algorithm used for planned equi-joins (Appendix D.1 experiments
    /// switch this between hash, merge, and index-nested-loop).
    pub join_strategy: JoinStrategy,
}

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Row>,
    /// Rows inserted/updated/deleted (or materialized by SELECT INTO).
    pub affected: usize,
}

impl QueryResult {
    fn empty() -> QueryResult {
        QueryResult {
            schema: Schema::new(vec![]),
            rows: Vec::new(),
            affected: 0,
        }
    }

    /// First value of the first row, if any (convenience for scalar queries).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// An in-memory relational database instance.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    pub settings: EngineSettings,
    pub stats: ExecStats,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    // -- catalog ------------------------------------------------------------

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register a pre-built table.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let key = table.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::TableExists(table.name));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        self.add_table(Table::new(name.to_ascii_lowercase(), schema))
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.take_table(name).map(|_| ())
    }

    /// Detach a table from the catalog, keeping its contents and indexes.
    /// This is how the middleware moves tables between per-CVD engine
    /// shards without copying row data.
    pub fn take_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    /// Rename a table (`ALTER TABLE .. RENAME`), keeping its contents and
    /// indexes. Used by OrpheusDB's migration engine to repurpose partition
    /// tables without copying them.
    pub fn rename_table(&mut self, old: &str, new: &str) -> Result<()> {
        let new_key = new.to_ascii_lowercase();
        if self.tables.contains_key(&new_key) {
            return Err(EngineError::TableExists(new.to_string()));
        }
        let mut t = self
            .tables
            .remove(&old.to_ascii_lowercase())
            .ok_or_else(|| EngineError::TableNotFound(old.to_string()))?;
        t.name = new_key.clone();
        self.tables.insert(new_key, t);
        Ok(())
    }

    /// Total storage (heap + indexes) across all tables, in bytes.
    pub fn total_storage_bytes(&self) -> usize {
        self.tables.values().map(|t| t.storage_bytes()).sum()
    }

    // -- execution ----------------------------------------------------------

    /// Execute a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(stmt)
    }

    /// Execute a semicolon-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<QueryResult> {
        let stmts = parse_script(sql)?;
        let mut last = QueryResult::empty();
        for stmt in stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    /// Convenience: run a SELECT and return the result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)
    }

    pub fn execute_statement(&mut self, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(sel) => {
                let into = sel.into.clone();
                let chunk = {
                    let ctx = ExecContext {
                        tables: &self.tables,
                        stats: &self.stats,
                    };
                    planner::run_select(&sel, &ctx, self.settings.join_strategy)?
                };
                match into {
                    None => Ok(QueryResult {
                        affected: chunk.rows.len(),
                        schema: chunk.schema,
                        rows: chunk.rows,
                    }),
                    Some(target) => {
                        // SELECT ... INTO t: materialize as a new table.
                        // Like PostgreSQL, the result table copies column
                        // names and types but no constraints: no primary
                        // key, everything nullable.
                        if self.has_table(&target) {
                            return Err(EngineError::TableExists(target));
                        }
                        let mut schema = chunk.schema;
                        schema.primary_key.clear();
                        for c in &mut schema.columns {
                            c.nullable = true;
                        }
                        let mut t = Table::new(target.to_ascii_lowercase(), schema);
                        let n = chunk.rows.len();
                        for row in chunk.rows {
                            t.insert(row)?;
                        }
                        self.add_table(t)?;
                        Ok(QueryResult {
                            schema: Schema::new(vec![]),
                            rows: Vec::new(),
                            affected: n,
                        })
                    }
                }
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => self.exec_insert(&table, columns, source),
            Statement::Update {
                table,
                assignments,
                filter,
            } => self.exec_update(&table, assignments, filter),
            Statement::Delete { table, filter } => self.exec_delete(&table, filter),
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                if_not_exists,
            } => {
                if self.has_table(&name) {
                    if if_not_exists {
                        return Ok(QueryResult::empty());
                    }
                    return Err(EngineError::TableExists(name));
                }
                let schema = schema_from_defs(&columns, &primary_key)?;
                self.create_table(&name, schema)?;
                Ok(QueryResult::empty())
            }
            Statement::DropTable { name, if_exists } => match self.drop_table(&name) {
                Ok(()) => Ok(QueryResult::empty()),
                Err(_) if if_exists => Ok(QueryResult::empty()),
                Err(e) => Err(e),
            },
            Statement::Truncate { table } => {
                self.table_mut(&table)?.truncate();
                Ok(QueryResult::empty())
            }
            Statement::AlterAddColumn { table, column } => {
                self.table_mut(&table)?
                    .add_column(Column::new(column.name, column.dtype))?;
                Ok(QueryResult::empty())
            }
            Statement::AlterColumnType {
                table,
                column,
                new_type,
            } => {
                self.table_mut(&table)?
                    .alter_column_type(&column, new_type)?;
                Ok(QueryResult::empty())
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                btree,
            } => {
                let index_name =
                    name.unwrap_or_else(|| format!("{}_{}_idx", table, columns.join("_")));
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                let kind = if btree {
                    IndexKind::BTree
                } else {
                    IndexKind::Hash
                };
                self.table_mut(&table)?
                    .create_index(index_name, &cols, unique, kind)?;
                Ok(QueryResult::empty())
            }
            Statement::Cluster { table, columns } => {
                let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
                self.table_mut(&table)?.cluster_by(&cols)?;
                Ok(QueryResult::empty())
            }
            Statement::Set { name, value } => {
                if name.eq_ignore_ascii_case("join_strategy") {
                    self.settings.join_strategy = JoinStrategy::parse(&value).ok_or_else(|| {
                        EngineError::Invalid(format!("unknown join strategy {value}"))
                    })?;
                    Ok(QueryResult::empty())
                } else {
                    Err(EngineError::Invalid(format!("unknown setting {name}")))
                }
            }
            Statement::Explain(sel) => {
                // Plan only — nothing executes, no statistics accrue.
                let planned = {
                    let ctx = ExecContext {
                        tables: &self.tables,
                        stats: &self.stats,
                    };
                    planner::plan_select(&sel, &ctx, self.settings.join_strategy)?
                };
                let lines = crate::exec::explain::render(&planned.plan);
                let schema = Schema::new(vec![Column::new(
                    "QUERY PLAN",
                    crate::types::DataType::Text,
                )]);
                let rows: Vec<Row> = lines.into_iter().map(|l| vec![Value::Text(l)]).collect();
                Ok(QueryResult {
                    affected: rows.len(),
                    schema,
                    rows,
                })
            }
        }
    }

    fn exec_insert(
        &mut self,
        table: &str,
        columns: Option<Vec<String>>,
        source: InsertSource,
    ) -> Result<QueryResult> {
        // Materialize source rows first (immutable borrow), then insert.
        let raw_rows: Vec<Row> = match source {
            InsertSource::Values(value_rows) => {
                let ctx = ExecContext {
                    tables: &self.tables,
                    stats: &self.stats,
                };
                let mut out = Vec::with_capacity(value_rows.len());
                for exprs in &value_rows {
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        let lowered =
                            planner::lower_standalone_expr(e, &ctx, self.settings.join_strategy)?;
                        row.push(lowered.eval(&vec![])?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(sel) => {
                let ctx = ExecContext {
                    tables: &self.tables,
                    stats: &self.stats,
                };
                planner::run_select(&sel, &ctx, self.settings.join_strategy)?.rows
            }
        };

        let t = self.table_mut(table)?;
        let rows: Vec<Row> = match columns {
            None => raw_rows,
            Some(cols) => {
                // Re-order the provided values into schema positions,
                // filling unspecified columns with NULL.
                let mut positions = Vec::with_capacity(cols.len());
                for c in &cols {
                    positions.push(t.schema.column_index(c)?);
                }
                raw_rows
                    .into_iter()
                    .map(|r| {
                        let mut full = vec![Value::Null; t.schema.arity()];
                        for (v, &p) in r.into_iter().zip(&positions) {
                            full[p] = v;
                        }
                        full
                    })
                    .collect()
            }
        };
        let mut n = 0;
        for row in rows {
            t.insert(row)?;
            n += 1;
        }
        Ok(QueryResult {
            schema: Schema::new(vec![]),
            rows: Vec::new(),
            affected: n,
        })
    }

    fn exec_update(
        &mut self,
        table: &str,
        assignments: Vec<(String, crate::sql::ast::SqlExpr)>,
        filter: Option<crate::sql::ast::SqlExpr>,
    ) -> Result<QueryResult> {
        // Phase 1 (immutable): lower expressions and compute replacement rows.
        let updates: Vec<(usize, Row)> = {
            let t = self.table(table)?;
            let schema = t.schema.clone();
            let ctx = ExecContext {
                tables: &self.tables,
                stats: &self.stats,
            };
            let strategy = self.settings.join_strategy;
            let pred = match &filter {
                Some(f) => Some(planner::lower_table_expr(
                    f, table, &schema, &ctx, strategy,
                )?),
                None => None,
            };
            let mut lowered_assignments = Vec::with_capacity(assignments.len());
            for (col, e) in &assignments {
                let ci = schema.column_index(col)?;
                let lowered = planner::lower_table_expr(e, table, &schema, &ctx, strategy)?;
                lowered_assignments.push((ci, lowered));
            }
            let t = self.table(table)?;
            // An UPDATE reads every row of the table (the paper's expensive
            // combined-table commit is exactly this full-scan append).
            self.stats.add_rows_scanned(t.len() as u64);
            self.stats.add_seq_pages(
                crate::cost::pages_for(t.len(), t.avg_row_bytes()),
                crate::cost::SEQ_PAGE_COST,
            );
            let mut out = Vec::new();
            for (slot, row) in t.rows().iter().enumerate() {
                let matched = match &pred {
                    Some(p) => p.eval_predicate(row)?,
                    None => true,
                };
                if !matched {
                    continue;
                }
                let mut new_row = row.clone();
                for (ci, e) in &lowered_assignments {
                    new_row[*ci] = e.eval(row)?;
                }
                out.push((slot, new_row));
            }
            out
        };
        // Phase 2 (mutable): apply.
        let n = updates.len();
        let t = self.table_mut(table)?;
        for (slot, new_row) in updates {
            t.replace_row(slot, new_row)?;
        }
        Ok(QueryResult {
            schema: Schema::new(vec![]),
            rows: Vec::new(),
            affected: n,
        })
    }

    fn exec_delete(
        &mut self,
        table: &str,
        filter: Option<crate::sql::ast::SqlExpr>,
    ) -> Result<QueryResult> {
        let slots: Vec<usize> = {
            let t = self.table(table)?;
            let schema = t.schema.clone();
            let ctx = ExecContext {
                tables: &self.tables,
                stats: &self.stats,
            };
            let pred = match &filter {
                Some(f) => Some(planner::lower_table_expr(
                    f,
                    table,
                    &schema,
                    &ctx,
                    self.settings.join_strategy,
                )?),
                None => None,
            };
            let t = self.table(table)?;
            self.stats.add_rows_scanned(t.len() as u64);
            let mut out = Vec::new();
            for (slot, row) in t.rows().iter().enumerate() {
                let matched = match &pred {
                    Some(p) => p.eval_predicate(row)?,
                    None => true,
                };
                if matched {
                    out.push(slot);
                }
            }
            out
        };
        let n = self.table_mut(table)?.delete_slots(slots);
        Ok(QueryResult {
            schema: Schema::new(vec![]),
            rows: Vec::new(),
            affected: n,
        })
    }
}

fn schema_from_defs(columns: &[ColumnDef], table_pk: &[String]) -> Result<Schema> {
    let mut cols = Vec::with_capacity(columns.len());
    let mut pk_names: Vec<String> = Vec::new();
    for c in columns {
        let mut col = Column::new(c.name.clone(), c.dtype);
        if c.not_null || c.primary_key {
            col = col.not_null();
        }
        if c.primary_key {
            pk_names.push(c.name.clone());
        }
        cols.push(col);
    }
    if !table_pk.is_empty() {
        if !pk_names.is_empty() {
            return Err(EngineError::Invalid(
                "duplicate PRIMARY KEY specification".into(),
            ));
        }
        pk_names = table_pk.to_vec();
    }
    let schema = Schema::new(cols);
    if pk_names.is_empty() {
        Ok(schema)
    } else {
        let names: Vec<&str> = pk_names.iter().map(|s| s.as_str()).collect();
        schema.with_primary_key(&names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_protein() -> Database {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE combined (protein1 TEXT, protein2 TEXT, neighborhood INT, \
             cooccurrence INT, coexpression INT, vlist INT[])",
        )
        .unwrap();
        // Figure 1(b) data.
        let rows = [
            ("ENSP273047", "ENSP261890", 0, 53, 0, vec![1]),
            ("ENSP273047", "ENSP261890", 0, 53, 83, vec![3, 4]),
            ("ENSP273047", "ENSP235932", 0, 87, 0, vec![1, 2, 3, 4]),
            ("ENSP300413", "ENSP274242", 426, 0, 164, vec![1, 2, 4]),
            ("ENSP309334", "ENSP346022", 0, 227, 975, vec![2, 4]),
            ("ENSP332973", "ENSP300134", 0, 0, 83, vec![3, 4]),
            ("ENSP472847", "ENSP365773", 225, 0, 73, vec![3, 4]),
        ];
        for (p1, p2, n, co, cx, vl) in rows {
            db.execute(&format!(
                "INSERT INTO combined VALUES ('{p1}', '{p2}', {n}, {co}, {cx}, ARRAY[{}])",
                vl.iter()
                    .map(|v: &i64| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn table1_combined_table_checkout_and_commit() {
        let mut db = db_with_protein();
        // CHECKOUT v1 (Table 1, combined-table column).
        let r = db
            .execute("SELECT * INTO T2 FROM combined WHERE ARRAY[1] <@ vlist")
            .unwrap();
        assert_eq!(r.affected, 3);
        // COMMIT as v5: append 5 to vlist of each record present in T2.
        // (The paper matches on rid; the combined model here has no rid, so
        // we approximate the subquery with the same containment predicate.)
        let r = db
            .execute("UPDATE combined SET vlist = vlist + 5 WHERE ARRAY[1] <@ vlist")
            .unwrap();
        assert_eq!(r.affected, 3);
        let r = db
            .execute("SELECT count(*) FROM combined WHERE ARRAY[5] <@ vlist")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn select_into_rejects_existing_table() {
        let mut db = db_with_protein();
        db.execute("SELECT * INTO T2 FROM combined").unwrap();
        let err = db.execute("SELECT * INTO T2 FROM combined").unwrap_err();
        assert!(matches!(err, EngineError::TableExists(_)));
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b TEXT, c DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
        let r = db.query("SELECT a, b, c FROM t").unwrap();
        assert_eq!(
            r.rows[0],
            vec![Value::Int(7), Value::Null, Value::Double(1.5)]
        );
    }

    #[test]
    fn insert_from_select() {
        let mut db = db_with_protein();
        db.execute("CREATE TABLE strong (protein1 TEXT, protein2 TEXT)")
            .unwrap();
        let r = db
            .execute(
                "INSERT INTO strong SELECT protein1, protein2 FROM combined WHERE cooccurrence > 50",
            )
            .unwrap();
        assert_eq!(r.affected, 4);
    }

    #[test]
    fn update_with_in_subquery() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (rid INT PRIMARY KEY, vlist INT[])")
            .unwrap();
        db.execute("CREATE TABLE picked (rid INT)").unwrap();
        for i in 0..5 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, ARRAY[1])"))
                .unwrap();
        }
        db.execute("INSERT INTO picked VALUES (1), (3)").unwrap();
        let r = db
            .execute("UPDATE t SET vlist = vlist + 9 WHERE rid IN (SELECT rid FROM picked)")
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = db
            .query("SELECT count(*) FROM t WHERE ARRAY[9] <@ vlist")
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn delete_and_truncate() {
        let mut db = db_with_protein();
        let r = db
            .execute("DELETE FROM combined WHERE coexpression = 0")
            .unwrap();
        assert_eq!(r.affected, 2);
        db.execute("TRUNCATE combined").unwrap();
        let r = db.query("SELECT count(*) FROM combined").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn ddl_roundtrip_and_catalog() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
            .unwrap();
        assert!(db.has_table("T")); // case-insensitive
        db.execute("ALTER TABLE t ADD COLUMN c DOUBLE").unwrap();
        db.execute("ALTER TABLE t ALTER COLUMN a TYPE DOUBLE")
            .unwrap();
        db.execute("CREATE INDEX ON t (b)").unwrap();
        db.execute("CLUSTER t USING (a)").unwrap();
        db.execute("DROP TABLE IF EXISTS missing").unwrap();
        assert!(db.execute("DROP TABLE missing").is_err());
        db.execute("DROP TABLE t").unwrap();
        assert!(!db.has_table("t"));
    }

    #[test]
    fn set_join_strategy() {
        let mut db = Database::new();
        db.execute("SET join_strategy = 'merge'").unwrap();
        assert_eq!(db.settings.join_strategy, JoinStrategy::Merge);
        assert!(db.execute("SET join_strategy = 'bogus'").is_err());
        assert!(db.execute("SET nope = '1'").is_err());
    }

    #[test]
    fn stats_accumulate_per_statement() {
        let mut db = db_with_protein();
        db.stats.reset();
        db.query("SELECT * FROM combined").unwrap();
        assert_eq!(db.stats.rows_scanned(), 7);
    }

    #[test]
    fn execute_script_runs_all() {
        let mut db = Database::new();
        let r = db
            .execute_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT count(*) FROM t;",
            )
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn storage_accounting_total() {
        let db = db_with_protein();
        assert!(db.total_storage_bytes() > 0);
    }

    #[test]
    fn pk_violation_through_sql() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let err = db.execute("INSERT INTO t VALUES (1)").unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation(_)));
    }
}
