//! Execution statistics.
//!
//! The paper controls PostgreSQL's caches so that latency is proportional to
//! the data touched; our in-memory engine makes that proportionality explicit
//! by counting rows scanned, index lookups and modeled page I/O during every
//! statement. Benchmarks report these counters alongside wall-clock time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated while executing statements. Interior-mutable so the
/// executor can record events without threading `&mut` everywhere, and
/// atomic so a [`crate::Database`] can sit behind a shared lock (the
/// middleware's multi-user sessions). Counter updates use relaxed ordering:
/// they are monotonic tallies, not synchronization points.
#[derive(Debug, Default)]
pub struct ExecStats {
    rows_scanned: AtomicU64,
    index_lookups: AtomicU64,
    join_rows: AtomicU64,
    hash_build_rows: AtomicU64,
    merge_rows: AtomicU64,
    // f64 counters stored as IEEE-754 bit patterns.
    seq_pages: AtomicU64,
    random_pages: AtomicU64,
    io_cost: AtomicU64,
}

fn add_f64(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

impl ExecStats {
    /// Zero all counters.
    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.index_lookups.store(0, Ordering::Relaxed);
        self.join_rows.store(0, Ordering::Relaxed);
        self.hash_build_rows.store(0, Ordering::Relaxed);
        self.merge_rows.store(0, Ordering::Relaxed);
        self.seq_pages.store(0f64.to_bits(), Ordering::Relaxed);
        self.random_pages.store(0f64.to_bits(), Ordering::Relaxed);
        self.io_cost.store(0f64.to_bits(), Ordering::Relaxed);
    }

    /// Rows produced by sequential scans.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Point lookups served by an index.
    pub fn index_lookups(&self) -> u64 {
        self.index_lookups.load(Ordering::Relaxed)
    }

    /// Rows emitted by join operators.
    pub fn join_rows(&self) -> u64 {
        self.join_rows.load(Ordering::Relaxed)
    }

    /// Hash-table insertions performed by hash joins / aggregation.
    pub fn hash_build_rows(&self) -> u64 {
        self.hash_build_rows.load(Ordering::Relaxed)
    }

    /// Rows compared by merge joins (after sorting).
    pub fn merge_rows(&self) -> u64 {
        self.merge_rows.load(Ordering::Relaxed)
    }

    /// Modeled sequential page reads (see [`crate::cost`]).
    pub fn seq_pages(&self) -> f64 {
        f64::from_bits(self.seq_pages.load(Ordering::Relaxed))
    }

    /// Modeled random page reads.
    pub fn random_pages(&self) -> f64 {
        f64::from_bits(self.random_pages.load(Ordering::Relaxed))
    }

    /// Total modeled I/O cost in abstract cost units.
    pub fn io_cost(&self) -> f64 {
        f64::from_bits(self.io_cost.load(Ordering::Relaxed))
    }

    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_index_lookups(&self, n: u64) {
        self.index_lookups.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_join_rows(&self, n: u64) {
        self.join_rows.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_hash_build_rows(&self, n: u64) {
        self.hash_build_rows.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_merge_rows(&self, n: u64) {
        self.merge_rows.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_seq_pages(&self, p: f64, cost_per_page: f64) {
        add_f64(&self.seq_pages, p);
        add_f64(&self.io_cost, p * cost_per_page);
    }

    pub fn add_random_pages(&self, p: f64, cost_per_page: f64) {
        add_f64(&self.random_pages, p);
        add_f64(&self.io_cost, p * cost_per_page);
    }

    /// Snapshot the counters into a plain struct (for reporting).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned(),
            index_lookups: self.index_lookups(),
            join_rows: self.join_rows(),
            hash_build_rows: self.hash_build_rows(),
            merge_rows: self.merge_rows(),
            seq_pages: self.seq_pages(),
            random_pages: self.random_pages(),
            io_cost: self.io_cost(),
        }
    }
}

/// Cloning copies the current counter values into fresh atomics — needed so
/// a whole [`crate::Database`] can be cloned when the middleware merges
/// per-CVD shards into one snapshot.
impl Clone for ExecStats {
    fn clone(&self) -> ExecStats {
        ExecStats {
            rows_scanned: AtomicU64::new(self.rows_scanned()),
            index_lookups: AtomicU64::new(self.index_lookups()),
            join_rows: AtomicU64::new(self.join_rows()),
            hash_build_rows: AtomicU64::new(self.hash_build_rows()),
            merge_rows: AtomicU64::new(self.merge_rows()),
            seq_pages: AtomicU64::new(self.seq_pages().to_bits()),
            random_pages: AtomicU64::new(self.random_pages().to_bits()),
            io_cost: AtomicU64::new(self.io_cost().to_bits()),
        }
    }
}

/// Plain-data copy of [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StatsSnapshot {
    pub rows_scanned: u64,
    pub index_lookups: u64,
    pub join_rows: u64,
    pub hash_build_rows: u64,
    pub merge_rows: u64,
    pub seq_pages: f64,
    pub random_pages: f64,
    pub io_cost: f64,
}

impl StatsSnapshot {
    /// Difference between two snapshots (self - earlier), for per-statement
    /// accounting.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            index_lookups: self.index_lookups - earlier.index_lookups,
            join_rows: self.join_rows - earlier.join_rows,
            hash_build_rows: self.hash_build_rows - earlier.hash_build_rows,
            merge_rows: self.merge_rows - earlier.merge_rows,
            seq_pages: self.seq_pages - earlier.seq_pages,
            random_pages: self.random_pages - earlier.random_pages,
            io_cost: self.io_cost - earlier.io_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ExecStats::default();
        s.add_rows_scanned(10);
        s.add_rows_scanned(5);
        s.add_seq_pages(3.0, 1.0);
        s.add_random_pages(2.0, 4.0);
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned, 15);
        assert_eq!(snap.seq_pages, 3.0);
        assert_eq!(snap.random_pages, 2.0);
        assert_eq!(snap.io_cost, 3.0 + 8.0);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = ExecStats::default();
        s.add_rows_scanned(10);
        let a = s.snapshot();
        s.add_rows_scanned(7);
        s.add_index_lookups(2);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.rows_scanned, 7);
        assert_eq!(d.index_lookups, 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = ExecStats::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.add_rows_scanned(1);
                        s.add_seq_pages(0.5, 1.0);
                    }
                });
            }
        });
        assert_eq!(s.rows_scanned(), 4000);
        assert!((s.seq_pages() - 2000.0).abs() < 1e-6);
        assert!((s.io_cost() - 2000.0).abs() < 1e-6);
    }
}
