//! Heap tables: rows stored in insertion (or clustering) order, with
//! attached secondary indexes and storage accounting.
//!
//! Physical clustering matters to the paper's cost model (Appendix D.1):
//! the data table can be clustered on `rid` (checkout-friendly) or on the
//! relation primary key; [`Table::cluster_by`] re-sorts the heap and
//! records which key the heap is ordered by so the cost model can charge
//! sequential vs. random page accesses appropriately.
//!
//! # Copy-on-write storage
//!
//! The heap, its indexes, and the storage counters live behind one
//! [`Arc`] (the private `TableData` struct), so cloning a `Table` — and
//! therefore cloning a whole [`crate::Database`] — is O(1) per table: the
//! clone shares the row storage until either side mutates. Every mutating
//! method routes through `Table::data_mut`, which uses [`Arc::make_mut`] to copy the
//! data exactly once, on the first write after a share. This is what lets
//! `orpheus-core` publish cheap immutable snapshots of a shard for MVCC
//! reads: the snapshot clone costs an `Arc` bump per table, and a writer
//! preparing the next version pays for copies only on the tables it
//! actually touches.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::index::{Index, IndexKey, IndexKind};
use crate::schema::Schema;
use crate::types::{Row, Value};

/// The shared, copy-on-write payload of a [`Table`]: heap rows, secondary
/// indexes, clustering state, and byte accounting. Snapshot clones of a
/// table alias one `TableData` until a writer calls [`Table::data_mut`];
/// readers holding an older `Arc` keep seeing the pre-write rows, which is
/// the immutability guarantee MVCC snapshot reads are built on.
#[derive(Debug, Clone, Default)]
struct TableData {
    rows: Vec<Row>,
    indexes: Vec<Index>,
    clustered_on: Option<Vec<usize>>,
    row_bytes_total: usize,
}

impl TableData {
    fn rebuild_indexes(&mut self) {
        for idx in &mut self.indexes {
            idx.clear();
        }
        for (slot, row) in self.rows.iter().enumerate() {
            for idx in &mut self.indexes {
                let key = idx.key_of(row);
                // Uniqueness was validated on the way in; rebuild can't fail.
                let _ = idx.insert(key, slot);
            }
        }
    }

    fn recompute_bytes(&mut self) {
        self.row_bytes_total = self.rows.iter().map(row_bytes).sum();
    }
}

/// A heap table with schema, rows, and secondary indexes. Rows and indexes
/// are stored copy-on-write (see the module docs), so `Table::clone` is
/// cheap and clones diverge lazily.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    data: Arc<TableData>,
}

impl Table {
    /// Create an empty table. If the schema declares a primary key, a unique
    /// hash index named `<table>_pkey` is created automatically, mirroring
    /// the "physical primary key index" setup of Section 3.2.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let name = name.into();
        let mut data = TableData::default();
        if !schema.primary_key.is_empty() {
            let cols = schema.primary_key.clone();
            data.indexes.push(Index::new(
                format!("{name}_pkey"),
                cols,
                true,
                IndexKind::Hash,
            ));
        }
        Table {
            name,
            schema,
            data: Arc::new(data),
        }
    }

    /// The copy-on-write escape hatch every mutating method goes through:
    /// [`Arc::make_mut`] returns the unique payload, copying it first if a
    /// snapshot clone still aliases it. Borrowing only the `data` field
    /// keeps `self.name`/`self.schema` readable during a mutation.
    fn data_mut(&mut self) -> &mut TableData {
        Arc::make_mut(&mut self.data)
    }

    /// True when both tables still alias the same copy-on-write payload —
    /// i.e. neither side has mutated since the clone. Used by tests to
    /// prove snapshot clones are O(1) and diverge lazily.
    pub fn shares_data_with(&self, other: &Table) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    pub fn len(&self) -> usize {
        self.data.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.rows.is_empty()
    }

    pub fn rows(&self) -> &[Row] {
        &self.data.rows
    }

    pub fn row(&self, slot: usize) -> &Row {
        &self.data.rows[slot]
    }

    /// Column indices the heap is currently physically sorted by, if any.
    pub fn clustered_on(&self) -> Option<&[usize]> {
        self.data.clustered_on.as_deref()
    }

    /// True if the heap is clustered on exactly the given columns.
    pub fn is_clustered_on(&self, cols: &[usize]) -> bool {
        self.data.clustered_on.as_deref() == Some(cols)
    }

    /// Average row width in bytes (used by the page cost model).
    pub fn avg_row_bytes(&self) -> usize {
        if self.data.rows.is_empty() {
            64
        } else {
            (self.data.row_bytes_total / self.data.rows.len()).max(1)
        }
    }

    /// Total storage footprint: heap bytes plus all index bytes, matching
    /// the paper's convention of counting index size in storage numbers.
    pub fn storage_bytes(&self) -> usize {
        self.data.row_bytes_total
            + self
                .data
                .indexes
                .iter()
                .map(|i| i.storage_bytes())
                .sum::<usize>()
    }

    /// Heap-only storage footprint.
    pub fn heap_bytes(&self) -> usize {
        self.data.row_bytes_total
    }

    /// Insert one row (validated and coerced against the schema).
    pub fn insert(&mut self, row: Row) -> Result<()> {
        let row = self.schema.check_row(&row)?;
        // Check uniqueness on all unique indexes before mutating any.
        for idx in &self.data.indexes {
            if idx.unique {
                let key = idx.key_of(&row);
                if !idx.lookup(&key).is_empty() {
                    return Err(EngineError::UniqueViolation(format!(
                        "table {}: duplicate key {:?} for index {}",
                        self.name, key, idx.name
                    )));
                }
            }
        }
        let data = Arc::make_mut(&mut self.data);
        let slot = data.rows.len();
        for idx in &mut data.indexes {
            let key = idx.key_of(&row);
            idx.insert(key, slot)?;
        }
        data.row_bytes_total += row_bytes(&row);
        data.rows.push(row);
        // Appends invalidate physical clustering unless the table is empty.
        if data.rows.len() > 1 {
            data.clustered_on = None;
        }
        Ok(())
    }

    /// Bulk insert; stops at the first constraint violation.
    pub fn insert_many<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<usize> {
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Replace the row at `slot`, keeping indexes in sync.
    pub fn replace_row(&mut self, slot: usize, new_row: Row) -> Result<()> {
        let new_row = self.schema.check_row(&new_row)?;
        // Uniqueness: the new key must not collide with a *different* slot.
        for idx in &self.data.indexes {
            if idx.unique {
                let key = idx.key_of(&new_row);
                if idx.lookup(&key).iter().any(|&s| s != slot) {
                    return Err(EngineError::UniqueViolation(format!(
                        "table {}: duplicate key {:?} for index {}",
                        self.name, key, idx.name
                    )));
                }
            }
        }
        let data = Arc::make_mut(&mut self.data);
        let old = data.rows[slot].clone();
        for idx in &mut data.indexes {
            let old_key = idx.key_of(&old);
            let new_key = idx.key_of(&new_row);
            if old_key != new_key {
                idx.remove(&old_key, slot);
                idx.insert(new_key, slot)?;
            }
        }
        data.row_bytes_total = data.row_bytes_total + row_bytes(&new_row) - row_bytes(&old);
        data.rows[slot] = new_row;
        Ok(())
    }

    /// Delete all rows at the given slots; compacts the heap and rebuilds
    /// indexes. Returns the number of rows removed.
    pub fn delete_slots(&mut self, mut slots: Vec<usize>) -> usize {
        if slots.is_empty() {
            return 0;
        }
        slots.sort_unstable();
        slots.dedup();
        let data = self.data_mut();
        let mut keep = Vec::with_capacity(data.rows.len() - slots.len());
        let mut del_iter = slots.iter().peekable();
        for (i, row) in data.rows.drain(..).enumerate() {
            if del_iter.peek() == Some(&&i) {
                del_iter.next();
            } else {
                keep.push(row);
            }
        }
        data.rows = keep;
        data.rebuild_indexes();
        data.recompute_bytes();
        data.clustered_on = None;
        slots.len()
    }

    /// Remove every row, keeping schema and index definitions.
    pub fn truncate(&mut self) {
        let data = self.data_mut();
        data.rows.clear();
        for idx in &mut data.indexes {
            idx.clear();
        }
        data.row_bytes_total = 0;
        data.clustered_on = None;
    }

    /// Create a secondary index over the named columns.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        columns: &[&str],
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        let index_name = index_name.into();
        if self.data.indexes.iter().any(|i| i.name == index_name) {
            return Err(EngineError::Invalid(format!(
                "index {index_name} already exists on {}",
                self.name
            )));
        }
        let cols: Result<Vec<usize>> = columns
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect();
        let mut idx = Index::new(index_name, cols?, unique, kind);
        let data = self.data_mut();
        for (slot, row) in data.rows.iter().enumerate() {
            let key = idx.key_of(row);
            idx.insert(key, slot)?;
        }
        data.indexes.push(idx);
        Ok(())
    }

    /// Find an index whose leading columns cover exactly `cols`.
    pub fn index_on(&self, cols: &[usize]) -> Option<&Index> {
        self.data.indexes.iter().find(|i| i.columns == cols)
    }

    /// Find an index by name.
    pub fn index_named(&self, name: &str) -> Option<&Index> {
        self.data.indexes.iter().find(|i| i.name == name)
    }

    pub fn indexes(&self) -> &[Index] {
        &self.data.indexes
    }

    /// Physically sort the heap by the given columns and rebuild indexes,
    /// mirroring PostgreSQL's `CLUSTER`. Lookups on the clustering key are
    /// then charged (mostly) sequential I/O by the cost model.
    pub fn cluster_by(&mut self, columns: &[&str]) -> Result<()> {
        let cols: Result<Vec<usize>> = columns
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect();
        let cols = cols?;
        let data = self.data_mut();
        data.rows.sort_by(|a, b| {
            for &c in &cols {
                let ord = a[c].total_cmp(&b[c]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        data.rebuild_indexes();
        data.clustered_on = Some(cols);
        Ok(())
    }

    /// Add a new nullable column (ALTER TABLE ... ADD COLUMN); existing
    /// rows get NULL, as in the schema-evolution scheme of Section 3.3.
    pub fn add_column(&mut self, col: crate::schema::Column) -> Result<()> {
        if self.schema.has_column(&col.name) {
            return Err(EngineError::Invalid(format!(
                "column {} already exists on {}",
                col.name, self.name
            )));
        }
        if !col.nullable {
            return Err(EngineError::Invalid(
                "added columns must be nullable (existing rows receive NULL)".into(),
            ));
        }
        self.schema.columns.push(col);
        let data = self.data_mut();
        for row in &mut data.rows {
            row.push(Value::Null);
        }
        data.row_bytes_total += data.rows.len(); // 1 byte per NULL
        Ok(())
    }

    /// Change a column to a more general type (int → double → text),
    /// converting stored values. Used by single-pool schema evolution.
    pub fn alter_column_type(
        &mut self,
        name: &str,
        new_type: crate::types::DataType,
    ) -> Result<()> {
        let ci = self.schema.column_index(name)?;
        let old = self.schema.columns[ci].dtype;
        if old == new_type {
            return Ok(());
        }
        if old.generalize(new_type) != Some(new_type) {
            return Err(EngineError::TypeMismatch(format!(
                "cannot narrow column {name} from {old} to {new_type}"
            )));
        }
        let data = Arc::make_mut(&mut self.data);
        for row in &mut data.rows {
            row[ci] = row[ci].coerce_to(new_type)?;
        }
        self.schema.columns[ci].dtype = new_type;
        let data = self.data_mut();
        data.rebuild_indexes();
        data.recompute_bytes();
        Ok(())
    }

    /// Slots matching a key on the index covering `cols`, if one exists.
    pub fn index_lookup(&self, cols: &[usize], key: &IndexKey) -> Option<&[usize]> {
        self.index_on(cols).map(|idx| idx.lookup(key))
    }

    /// Resolve many integer keys to heap slots in one call through the
    /// index covering `col` — the multi-key point-lookup that turns an
    /// rlist into row slots without going through SQL. Returns the matched
    /// `(key, slot)` pairs in key order (keys without a match are skipped,
    /// keys matching several slots emit one pair per slot), or `None` when
    /// no index covers `col`.
    pub fn resolve_int_keys(&self, col: usize, keys: &[i64]) -> Option<Vec<(i64, usize)>> {
        let idx = self.index_on(&[col])?;
        let mut out = Vec::with_capacity(keys.len());
        // One reusable key buffer: the per-lookup cost is a hash probe,
        // not an allocation.
        let mut key: IndexKey = vec![Value::Int(0)];
        for &k in keys {
            key[0] = Value::Int(k);
            for &slot in idx.lookup(&key) {
                out.push((k, slot));
            }
        }
        Some(out)
    }
}

fn row_bytes(row: &Row) -> usize {
    row.iter().map(|v| v.storage_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::new("rid", DataType::Int),
            Column::new("val", DataType::Text),
        ])
        .with_primary_key(&["rid"])
        .unwrap();
        Table::new("t", schema)
    }

    #[test]
    fn insert_and_pk_enforcement() {
        let mut t = table();
        t.insert(vec![Value::Int(1), "a".into()]).unwrap();
        t.insert(vec![Value::Int(2), "b".into()]).unwrap();
        let err = t.insert(vec![Value::Int(1), "dup".into()]).unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation(_)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pk_index_lookup() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), format!("v{i}").into()])
                .unwrap();
        }
        let slots = t.index_lookup(&[0], &vec![Value::Int(7)]).unwrap();
        assert_eq!(slots, &[7]);
        assert_eq!(t.row(slots[0])[1], Value::Text("v7".into()));
    }

    #[test]
    fn replace_row_keeps_indexes_consistent() {
        let mut t = table();
        t.insert(vec![Value::Int(1), "a".into()]).unwrap();
        t.insert(vec![Value::Int(2), "b".into()]).unwrap();
        t.replace_row(0, vec![Value::Int(10), "a2".into()]).unwrap();
        assert!(t
            .index_lookup(&[0], &vec![Value::Int(1)])
            .unwrap()
            .is_empty());
        assert_eq!(t.index_lookup(&[0], &vec![Value::Int(10)]).unwrap(), &[0]);
        // Replacing with an existing other key is rejected.
        let err = t
            .replace_row(0, vec![Value::Int(2), "x".into()])
            .unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation(_)));
        // Replacing a row with its own key is fine (no-op key change).
        t.replace_row(1, vec![Value::Int(2), "b2".into()]).unwrap();
    }

    #[test]
    fn delete_slots_compacts_and_rebuilds() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), format!("v{i}").into()])
                .unwrap();
        }
        let n = t.delete_slots(vec![1, 3]);
        assert_eq!(n, 2);
        assert_eq!(t.len(), 3);
        // Remaining keys still resolvable post-compaction.
        for k in [0i64, 2, 4] {
            let slots = t.index_lookup(&[0], &vec![Value::Int(k)]).unwrap();
            assert_eq!(slots.len(), 1);
            assert_eq!(t.row(slots[0])[0], Value::Int(k));
        }
        assert!(t
            .index_lookup(&[0], &vec![Value::Int(1)])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn clustering_orders_heap_and_is_invalidated_by_insert() {
        let mut t = table();
        for i in [5i64, 1, 3, 2, 4] {
            t.insert(vec![Value::Int(i), "x".into()]).unwrap();
        }
        assert!(t.clustered_on().is_none());
        t.cluster_by(&["rid"]).unwrap();
        assert!(t.is_clustered_on(&[0]));
        let keys: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        t.insert(vec![Value::Int(0), "x".into()]).unwrap();
        assert!(t.clustered_on().is_none());
    }

    #[test]
    fn add_column_fills_nulls() {
        let mut t = table();
        t.insert(vec![Value::Int(1), "a".into()]).unwrap();
        t.add_column(Column::new("extra", DataType::Int)).unwrap();
        assert_eq!(t.schema.arity(), 3);
        assert!(t.row(0)[2].is_null());
        assert!(t.add_column(Column::new("extra", DataType::Int)).is_err());
    }

    #[test]
    fn alter_column_type_generalizes() {
        let mut t = table();
        t.insert(vec![Value::Int(1), "a".into()]).unwrap();
        t.alter_column_type("rid", DataType::Double).unwrap();
        assert_eq!(t.row(0)[0], Value::Double(1.0));
        assert!(t.alter_column_type("rid", DataType::Int).is_err());
    }

    #[test]
    fn storage_accounting_tracks_mutations() {
        let mut t = table();
        assert_eq!(t.heap_bytes(), 0);
        t.insert(vec![Value::Int(1), "abcd".into()]).unwrap();
        let b1 = t.heap_bytes();
        assert_eq!(b1, 8 + 4 + 4);
        t.insert(vec![Value::Int(2), "ef".into()]).unwrap();
        let b2 = t.heap_bytes();
        t.delete_slots(vec![1]);
        assert_eq!(t.heap_bytes(), b1);
        assert!(b2 > b1);
        assert!(t.storage_bytes() > t.heap_bytes());
    }

    #[test]
    fn resolve_int_keys_batches_point_lookups() {
        let mut t = table();
        for i in 0..6 {
            t.insert(vec![Value::Int(i * 10), format!("v{i}").into()])
                .unwrap();
        }
        // Matches come back in key order; misses are skipped.
        let pairs = t.resolve_int_keys(0, &[50, 7, 10, 30]).unwrap();
        assert_eq!(pairs, vec![(50, 5), (10, 1), (30, 3)]);
        for (k, slot) in pairs {
            assert_eq!(t.row(slot)[0], Value::Int(k));
        }
        // No index on the value column → None, not a scan.
        assert!(t.resolve_int_keys(1, &[1]).is_none());
        assert_eq!(t.resolve_int_keys(0, &[]).unwrap(), vec![]);
    }

    #[test]
    fn secondary_index_creation_backfills() {
        let mut t = table();
        for i in 0..4 {
            t.insert(vec![Value::Int(i), Value::Text(format!("g{}", i % 2))])
                .unwrap();
        }
        t.create_index("t_val", &["val"], false, IndexKind::BTree)
            .unwrap();
        let idx = t.index_named("t_val").unwrap();
        assert_eq!(idx.lookup(&vec!["g0".into()]).len(), 2);
        assert!(t
            .create_index("t_val", &["val"], false, IndexKind::Hash)
            .is_err());
    }

    #[test]
    fn clones_share_storage_until_a_write_diverges_them() {
        let mut t = table();
        for i in 0..4 {
            t.insert(vec![Value::Int(i), format!("v{i}").into()])
                .unwrap();
        }
        // A clone is a snapshot: same Arc, no row copies.
        let snapshot = t.clone();
        assert!(t.shares_data_with(&snapshot));

        // The first mutation after a share copies the payload once; the
        // snapshot keeps seeing the pre-write rows.
        t.insert(vec![Value::Int(99), "new".into()]).unwrap();
        assert!(!t.shares_data_with(&snapshot));
        assert_eq!(t.len(), 5);
        assert_eq!(snapshot.len(), 4);
        assert!(snapshot
            .index_lookup(&[0], &vec![Value::Int(99)])
            .unwrap()
            .is_empty());
        assert_eq!(t.index_lookup(&[0], &vec![Value::Int(99)]).unwrap(), &[4]);

        // Reads never diverge a share.
        let reader = t.clone();
        let _ = reader.rows();
        let _ = reader.storage_bytes();
        assert!(t.shares_data_with(&reader));
    }
}
