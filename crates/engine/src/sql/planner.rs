//! Lowers parsed SQL into executable [`Plan`] trees.
//!
//! Responsibilities:
//! * name resolution across comma joins, explicit `JOIN ... ON` and derived
//!   tables, with qualified (`tmp.rid_tmp`) and unqualified references;
//! * predicate pushdown into base-table scans, including promotion of
//!   `col = literal` filters on indexed columns to index point lookups —
//!   this is what gives the split-by-rlist checkout its "primary key index
//!   on vid" access path (Section 3.2);
//! * equi-join extraction and left-deep join-tree construction with the
//!   session-selected join algorithm;
//! * GROUP BY / HAVING aggregation and the single-`unnest` projection used
//!   by the split-by-rlist checkout;
//! * materialization of uncorrelated subqueries (`IN (SELECT ..)`,
//!   `ARRAY(SELECT ..)`, scalar subqueries) at plan time.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use crate::error::{EngineError, Result};
use crate::exec::{
    self, AggFunc, Aggregate, Chunk, ExecContext, JoinStrategy, Plan, ProjItem, SortKey,
};
use crate::expr::{BinOp, Expr, Func};
use crate::schema::{Column, Schema};
use crate::types::{DataType, Value};

use super::ast::{FromItem, OrderKey, SelectItem, SelectStmt, SqlExpr};

/// A fully planned query: plan tree plus output schema.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    pub plan: Plan,
    pub schema: Schema,
}

/// Plan and immediately execute a SELECT (used for subquery materialization
/// and by the database front-end).
pub fn run_select(stmt: &SelectStmt, ctx: &ExecContext, strategy: JoinStrategy) -> Result<Chunk> {
    let planned = plan_select(stmt, ctx, strategy)?;
    let mut chunk = exec::execute(&planned.plan, ctx)?;
    chunk.schema = planned.schema;
    Ok(chunk)
}

/// Lower an expression with no table context (INSERT ... VALUES).
pub fn lower_standalone_expr(
    e: &SqlExpr,
    ctx: &ExecContext,
    strategy: JoinStrategy,
) -> Result<Expr> {
    let scope = Scope::empty();
    lower_expr(e, &scope, &|i| i, ctx, strategy)
}

/// Lower an expression over a single named table (UPDATE/DELETE).
pub fn lower_table_expr(
    e: &SqlExpr,
    table: &str,
    schema: &Schema,
    ctx: &ExecContext,
    strategy: JoinStrategy,
) -> Result<Expr> {
    let scope = Scope::single(table, schema.clone());
    lower_expr(e, &scope, &|i| i, ctx, strategy)
}

// ---------------------------------------------------------------------------
// Scope: name resolution over the flattened FROM items.
// ---------------------------------------------------------------------------

struct ScopeItem {
    alias: String,
    schema: Schema,
    offset: usize,
}

struct Scope {
    items: Vec<ScopeItem>,
    width: usize,
}

impl Scope {
    fn empty() -> Scope {
        Scope {
            items: Vec::new(),
            width: 0,
        }
    }

    fn single(alias: &str, schema: Schema) -> Scope {
        let width = schema.arity();
        Scope {
            items: vec![ScopeItem {
                alias: alias.to_string(),
                schema,
                offset: 0,
            }],
            width,
        }
    }

    fn push(&mut self, alias: String, schema: Schema) {
        let offset = self.width;
        self.width += schema.arity();
        self.items.push(ScopeItem {
            alias,
            schema,
            offset,
        });
    }

    /// Resolve a column reference to an absolute position and its rel index.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, usize)> {
        let mut found: Option<(usize, usize)> = None;
        for (rel, item) in self.items.iter().enumerate() {
            if let Some(q) = qualifier {
                if !item.alias.eq_ignore_ascii_case(q) {
                    continue;
                }
            }
            if let Ok(ci) = item.schema.column_index(name) {
                if found.is_some() {
                    return Err(EngineError::AmbiguousColumn(name.to_string()));
                }
                found = Some((item.offset + ci, rel));
            }
        }
        found.ok_or_else(|| {
            EngineError::ColumnNotFound(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })
        })
    }

    /// The rel index owning absolute column `abs`.
    fn rel_of(&self, abs: usize) -> usize {
        for (rel, item) in self.items.iter().enumerate().rev() {
            if abs >= item.offset {
                return rel;
            }
        }
        0
    }
}

// ---------------------------------------------------------------------------
// Expression lowering.
// ---------------------------------------------------------------------------

fn lower_expr(
    e: &SqlExpr,
    scope: &Scope,
    map: &dyn Fn(usize) -> usize,
    ctx: &ExecContext,
    strategy: JoinStrategy,
) -> Result<Expr> {
    match e {
        SqlExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        SqlExpr::Column { qualifier, name } => {
            let (abs, _) = scope.resolve(qualifier.as_deref(), name)?;
            Ok(Expr::Column(map(abs)))
        }
        SqlExpr::BinOp { op, left, right } => Ok(Expr::BinOp {
            op: *op,
            left: Box::new(lower_expr(left, scope, map, ctx, strategy)?),
            right: Box::new(lower_expr(right, scope, map, ctx, strategy)?),
        }),
        SqlExpr::Not(inner) => Ok(Expr::Not(Box::new(lower_expr(
            inner, scope, map, ctx, strategy,
        )?))),
        SqlExpr::Neg(inner) => Ok(Expr::Neg(Box::new(lower_expr(
            inner, scope, map, ctx, strategy,
        )?))),
        SqlExpr::Func {
            name,
            args,
            distinct: _,
            star: _,
        } => {
            if let Some(func) = Func::parse(name) {
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(lower_expr(a, scope, map, ctx, strategy)?);
                }
                Ok(Expr::Func {
                    func,
                    args: lowered,
                })
            } else if AggFunc::parse(name).is_some() {
                Err(EngineError::Plan(format!(
                    "aggregate {name}(..) is not allowed in this context"
                )))
            } else {
                Err(EngineError::Plan(format!("unknown function {name}")))
            }
        }
        SqlExpr::ArrayLit(elems) => {
            let mut lowered = Vec::with_capacity(elems.len());
            for el in elems {
                lowered.push(lower_expr(el, scope, map, ctx, strategy)?);
            }
            Ok(Expr::ArrayLit(lowered))
        }
        SqlExpr::ArraySubquery(q) => {
            let chunk = run_select(q, ctx, strategy)?;
            if chunk.schema.arity() != 1 {
                return Err(EngineError::Plan(
                    "ARRAY(SELECT ..) requires a single output column".into(),
                ));
            }
            let mut arr = Vec::with_capacity(chunk.rows.len());
            for row in &chunk.rows {
                if !row[0].is_null() {
                    arr.push(row[0].as_int()?);
                }
            }
            Ok(Expr::Literal(Value::IntArray(arr)))
        }
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => {
            let mut set = HashSet::with_capacity(list.len());
            for item in list {
                let lowered = lower_expr(item, scope, map, ctx, strategy)?;
                match lowered {
                    Expr::Literal(v) => {
                        set.insert(v);
                    }
                    _ => {
                        return Err(EngineError::Plan(
                            "IN list elements must be constants".into(),
                        ))
                    }
                }
            }
            Ok(Expr::InSet {
                expr: Box::new(lower_expr(expr, scope, map, ctx, strategy)?),
                set: Rc::new(set),
                negated: *negated,
            })
        }
        SqlExpr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let chunk = run_select(query, ctx, strategy)?;
            if chunk.schema.arity() != 1 {
                return Err(EngineError::Plan(
                    "IN (SELECT ..) requires a single output column".into(),
                ));
            }
            let set: HashSet<Value> = chunk.rows.into_iter().map(|mut r| r.remove(0)).collect();
            Ok(Expr::InSet {
                expr: Box::new(lower_expr(expr, scope, map, ctx, strategy)?),
                set: Rc::new(set),
                negated: *negated,
            })
        }
        SqlExpr::ScalarSubquery(q) => {
            let chunk = run_select(q, ctx, strategy)?;
            if chunk.schema.arity() != 1 {
                return Err(EngineError::Plan(
                    "scalar subquery requires a single output column".into(),
                ));
            }
            if chunk.rows.len() > 1 {
                return Err(EngineError::Eval(
                    "scalar subquery returned more than one row".into(),
                ));
            }
            let v = chunk
                .rows
                .into_iter()
                .next()
                .map(|mut r| r.remove(0))
                .unwrap_or(Value::Null);
            Ok(Expr::Literal(v))
        }
        SqlExpr::AnyEq { left, array } => Ok(Expr::BinOp {
            op: BinOp::AnyEq,
            left: Box::new(lower_expr(left, scope, map, ctx, strategy)?),
            right: Box::new(lower_expr(array, scope, map, ctx, strategy)?),
        }),
        SqlExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(lower_expr(expr, scope, map, ctx, strategy)?),
            negated: *negated,
        }),
    }
}

/// Best-effort static type of a lowered expression.
fn infer_type(e: &Expr, input: &Schema) -> DataType {
    match e {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Column(i) => input
            .columns
            .get(*i)
            .map(|c| c.dtype)
            .unwrap_or(DataType::Int),
        Expr::BinOp { op, left, right } => match op {
            BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::LtEq
            | BinOp::Gt
            | BinOp::GtEq
            | BinOp::And
            | BinOp::Or
            | BinOp::ContainedBy
            | BinOp::Contains
            | BinOp::AnyEq => DataType::Bool,
            BinOp::Concat => {
                if infer_type(left, input) == DataType::IntArray {
                    DataType::IntArray
                } else {
                    DataType::Text
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = infer_type(left, input);
                let r = infer_type(right, input);
                if l == DataType::IntArray {
                    DataType::IntArray
                } else if l == DataType::Double || r == DataType::Double {
                    DataType::Double
                } else {
                    DataType::Int
                }
            }
        },
        Expr::Not(_) | Expr::IsNull { .. } | Expr::InSet { .. } => DataType::Bool,
        Expr::Neg(inner) => infer_type(inner, input),
        Expr::Func { func, args } => match func {
            Func::ArrayAppend | Func::ArrayCat => DataType::IntArray,
            Func::ArrayLength => DataType::Int,
            Func::ArrayContains => DataType::Bool,
            Func::Abs | Func::Coalesce | Func::Least | Func::Greatest => args
                .first()
                .map(|a| infer_type(a, input))
                .unwrap_or(DataType::Int),
        },
        Expr::ArrayLit(_) => DataType::IntArray,
    }
}

// ---------------------------------------------------------------------------
// SELECT planning.
// ---------------------------------------------------------------------------

/// Plan a SELECT statement (ignoring any INTO clause, which the database
/// front-end handles).
pub fn plan_select(
    stmt: &SelectStmt,
    ctx: &ExecContext,
    strategy: JoinStrategy,
) -> Result<PlannedQuery> {
    // 1. Flatten FROM into leaf relations plus join conjuncts.
    let mut rels: Vec<(Plan, String, Schema)> = Vec::new();
    let mut conjuncts: Vec<SqlExpr> = Vec::new();
    for item in &stmt.from {
        flatten_from(item, ctx, strategy, &mut rels, &mut conjuncts)?;
    }
    if let Some(w) = &stmt.filter {
        split_and(w, &mut conjuncts);
    }

    // Build the scope over all rels.
    let mut scope = Scope::empty();
    for (_, alias, schema) in &rels {
        scope.push(alias.clone(), schema.clone());
    }

    // 2. Classify conjuncts: single-rel (pushdown), equi-join, other.
    let mut pushdown: Vec<Vec<SqlExpr>> = vec![Vec::new(); rels.len()];
    let mut equi: Vec<(usize, usize)> = Vec::new(); // absolute column pairs
    let mut residual: Vec<SqlExpr> = Vec::new();
    for c in conjuncts {
        if let Some((a, b)) = as_equi_join(&c, &scope)? {
            equi.push((a, b));
            continue;
        }
        match referenced_rels(&c, &scope)? {
            rels_used if rels_used.len() == 1 => {
                pushdown[*rels_used.iter().next().unwrap()].push(c);
            }
            _ => residual.push(c),
        }
    }

    // 3. Push single-rel filters into scans; promote to index lookups.
    for (rel, filters) in pushdown.into_iter().enumerate() {
        if filters.is_empty() {
            continue;
        }
        let offset = scope.items[rel].offset;
        let local = |abs: usize| abs - offset;
        let mut lowered = Vec::with_capacity(filters.len());
        for f in &filters {
            lowered.push(lower_expr(f, &scope, &local, ctx, strategy)?);
        }
        let (plan, _, _) = &mut rels[rel];
        *plan = apply_filters_to_rel(plan.clone(), filters, lowered, &scope, rel, ctx)?;
    }

    // 4. Join tree.
    let (mut plan, plan_map) = build_join_tree(rels, &scope, equi, strategy)?;

    // 5. Residual filter above the joins.
    if !residual.is_empty() {
        let map = |abs: usize| plan_map[abs];
        let mut pred: Option<Expr> = None;
        for c in residual {
            let e = lower_expr(&c, &scope, &map, ctx, strategy)?;
            pred = Some(match pred {
                None => e,
                Some(p) => Expr::bin(BinOp::And, p, e),
            });
        }
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: pred.expect("at least one residual conjunct"),
        };
    }

    // Schema of the join output in plan order.
    let plan_input_schema = {
        let mut cols = vec![Column::new("?", DataType::Int); scope.width];
        for item in &scope.items {
            for (ci, col) in item.schema.columns.iter().enumerate() {
                cols[plan_map[item.offset + ci]] = col.clone();
            }
        }
        Schema::new(cols)
    };

    // 6. Aggregation or plain projection.
    let has_group_by = !stmt.group_by.is_empty();
    let has_aggs = stmt
        .items
        .iter()
        .any(|it| matches!(it, SelectItem::Expr { expr, .. } if contains_aggregate(expr)))
        || stmt
            .having
            .as_ref()
            .map(contains_aggregate)
            .unwrap_or(false);

    let (mut plan, mut out_schema) = if has_group_by || has_aggs {
        plan_aggregate(
            stmt,
            plan,
            &scope,
            &plan_map,
            &plan_input_schema,
            ctx,
            strategy,
        )?
    } else {
        plan_projection(
            stmt,
            plan,
            &scope,
            &plan_map,
            &plan_input_schema,
            ctx,
            strategy,
        )?
    };

    // 7. ORDER BY over the projected output, falling back to sorting the
    // pre-projection input for keys that only exist there (e.g.
    // `SELECT score FROM t ORDER BY name`).
    if !stmt.order_by.is_empty() {
        let keys = resolve_order_keys(
            &stmt.order_by,
            &out_schema,
            &scope,
            &plan_map,
            ctx,
            strategy,
        )?;
        match keys {
            OrderKeys::OverOutput(keys) => {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
            OrderKeys::Unresolvable(name) => {
                if has_group_by || has_aggs {
                    return Err(EngineError::ColumnNotFound(format!(
                        "ORDER BY column {name}"
                    )));
                }
                // Sort below the projection, over the join output.
                let map = |abs: usize| plan_map[abs];
                let mut keys = Vec::with_capacity(stmt.order_by.len());
                for k in &stmt.order_by {
                    keys.push(SortKey {
                        expr: lower_expr(&k.expr, &scope, &map, ctx, strategy)?,
                        desc: k.desc,
                    });
                }
                plan = match plan {
                    Plan::Project {
                        input,
                        items,
                        schema,
                    } => Plan::Project {
                        input: Box::new(Plan::Sort { input, keys }),
                        items,
                        schema,
                    },
                    other => Plan::Sort {
                        input: Box::new(other),
                        keys,
                    },
                };
            }
        }
    }

    if let Some(limit) = stmt.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            limit: limit as usize,
        };
    }

    // Deduplicate output column names is unnecessary; SQL allows duplicates.
    out_schema.primary_key.clear();
    Ok(PlannedQuery {
        plan,
        schema: out_schema,
    })
}

fn flatten_from(
    item: &FromItem,
    ctx: &ExecContext,
    strategy: JoinStrategy,
    rels: &mut Vec<(Plan, String, Schema)>,
    conjuncts: &mut Vec<SqlExpr>,
) -> Result<()> {
    match item {
        FromItem::Table { name, alias } => {
            let t = ctx.table(name)?;
            let binding = alias.clone().unwrap_or_else(|| name.clone());
            rels.push((
                Plan::SeqScan {
                    table: name.to_ascii_lowercase(),
                    filter: None,
                },
                binding,
                t.schema.clone(),
            ));
            Ok(())
        }
        FromItem::Subquery { query, alias } => {
            let planned = plan_select(query, ctx, strategy)?;
            rels.push((planned.plan, alias.clone(), planned.schema));
            Ok(())
        }
        FromItem::Join { left, right, on } => {
            flatten_from(left, ctx, strategy, rels, conjuncts)?;
            flatten_from(right, ctx, strategy, rels, conjuncts)?;
            split_and(on, conjuncts);
            Ok(())
        }
    }
}

fn split_and(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    if let SqlExpr::BinOp {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split_and(left, out);
        split_and(right, out);
    } else {
        out.push(e.clone());
    }
}

/// If the conjunct is `colA = colB` across two different rels, return the
/// absolute positions (left, right).
fn as_equi_join(e: &SqlExpr, scope: &Scope) -> Result<Option<(usize, usize)>> {
    if let SqlExpr::BinOp {
        op: BinOp::Eq,
        left,
        right,
    } = e
    {
        if let (
            SqlExpr::Column {
                qualifier: ql,
                name: nl,
            },
            SqlExpr::Column {
                qualifier: qr,
                name: nr,
            },
        ) = (left.as_ref(), right.as_ref())
        {
            let l = scope.resolve(ql.as_deref(), nl);
            let r = scope.resolve(qr.as_deref(), nr);
            if let (Ok((la, lrel)), Ok((ra, rrel))) = (l, r) {
                if lrel != rrel {
                    return Ok(Some((la, ra)));
                }
            }
        }
    }
    Ok(None)
}

/// Rel indices referenced by the expression (subqueries excluded — only
/// uncorrelated subqueries are supported).
fn referenced_rels(e: &SqlExpr, scope: &Scope) -> Result<HashSet<usize>> {
    let mut out = HashSet::new();
    collect_rels(e, scope, &mut out)?;
    Ok(out)
}

fn collect_rels(e: &SqlExpr, scope: &Scope, out: &mut HashSet<usize>) -> Result<()> {
    match e {
        SqlExpr::Literal(_) | SqlExpr::ArraySubquery(_) | SqlExpr::ScalarSubquery(_) => Ok(()),
        SqlExpr::Column { qualifier, name } => {
            let (abs, _) = scope.resolve(qualifier.as_deref(), name)?;
            out.insert(scope.rel_of(abs));
            Ok(())
        }
        SqlExpr::BinOp { left, right, .. } => {
            collect_rels(left, scope, out)?;
            collect_rels(right, scope, out)
        }
        SqlExpr::Not(i) | SqlExpr::Neg(i) => collect_rels(i, scope, out),
        SqlExpr::Func { args, .. } => {
            for a in args {
                collect_rels(a, scope, out)?;
            }
            Ok(())
        }
        SqlExpr::ArrayLit(es) => {
            for a in es {
                collect_rels(a, scope, out)?;
            }
            Ok(())
        }
        SqlExpr::InList { expr, list, .. } => {
            collect_rels(expr, scope, out)?;
            for a in list {
                collect_rels(a, scope, out)?;
            }
            Ok(())
        }
        SqlExpr::InSubquery { expr, .. } => collect_rels(expr, scope, out),
        SqlExpr::AnyEq { left, array } => {
            collect_rels(left, scope, out)?;
            collect_rels(array, scope, out)
        }
        SqlExpr::IsNull { expr, .. } => collect_rels(expr, scope, out),
    }
}

/// Apply pushed-down filters to a leaf relation, promoting equality-on-
/// indexed-columns to an index lookup when possible.
fn apply_filters_to_rel(
    plan: Plan,
    ast_filters: Vec<SqlExpr>,
    lowered: Vec<Expr>,
    scope: &Scope,
    rel: usize,
    ctx: &ExecContext,
) -> Result<Plan> {
    // Index promotion only applies to bare table scans.
    if let Plan::SeqScan {
        table,
        filter: None,
    } = &plan
    {
        let t = ctx.table(table)?;
        let offset = scope.items[rel].offset;
        // Gather `col = literal` equalities (local column -> value).
        let mut eq_cols: HashMap<usize, Value> = HashMap::new();
        let mut eq_filter_idx: HashMap<usize, usize> = HashMap::new();
        for (i, f) in ast_filters.iter().enumerate() {
            if let SqlExpr::BinOp {
                op: BinOp::Eq,
                left,
                right,
            } = f
            {
                let (col, lit) = match (left.as_ref(), right.as_ref()) {
                    (SqlExpr::Column { qualifier, name }, SqlExpr::Literal(v)) => {
                        (scope.resolve(qualifier.as_deref(), name).ok(), v)
                    }
                    (SqlExpr::Literal(v), SqlExpr::Column { qualifier, name }) => {
                        (scope.resolve(qualifier.as_deref(), name).ok(), v)
                    }
                    _ => continue,
                };
                if let Some((abs, r)) = col {
                    if r == rel {
                        let local = abs - offset;
                        eq_cols.insert(local, lit.clone());
                        eq_filter_idx.insert(local, i);
                    }
                }
            }
        }
        // Find the index covering the most equality columns completely.
        let mut best: Option<&crate::index::Index> = None;
        for idx in t.indexes() {
            if idx.columns.iter().all(|c| eq_cols.contains_key(c))
                && best
                    .map(|b| idx.columns.len() > b.columns.len())
                    .unwrap_or(true)
            {
                best = Some(idx);
            }
        }
        if let Some(idx) = best {
            let key: Vec<Value> = idx.columns.iter().map(|c| eq_cols[c].clone()).collect();
            let used: HashSet<usize> = idx.columns.iter().map(|c| eq_filter_idx[c]).collect();
            let mut residual: Option<Expr> = None;
            for (i, e) in lowered.into_iter().enumerate() {
                if used.contains(&i) {
                    continue;
                }
                residual = Some(match residual {
                    None => e,
                    Some(p) => Expr::bin(BinOp::And, p, e),
                });
            }
            return Ok(Plan::IndexLookup {
                table: table.clone(),
                cols: idx.columns.clone(),
                keys: vec![key],
                filter: residual,
            });
        }
        // No index: fold everything into the scan's filter.
        let mut pred: Option<Expr> = None;
        for e in lowered {
            pred = Some(match pred {
                None => e,
                Some(p) => Expr::bin(BinOp::And, p, e),
            });
        }
        return Ok(Plan::SeqScan {
            table: table.clone(),
            filter: pred,
        });
    }
    // Derived table or already-filtered scan: wrap in a Filter node.
    let mut pred: Option<Expr> = None;
    for e in lowered {
        pred = Some(match pred {
            None => e,
            Some(p) => Expr::bin(BinOp::And, p, e),
        });
    }
    Ok(Plan::Filter {
        input: Box::new(plan),
        predicate: pred.expect("filters nonempty"),
    })
}

/// Build a left-deep join tree; returns the plan and a map from scope
/// absolute column positions to plan output positions.
fn build_join_tree(
    rels: Vec<(Plan, String, Schema)>,
    scope: &Scope,
    mut equi: Vec<(usize, usize)>,
    strategy: JoinStrategy,
) -> Result<(Plan, Vec<usize>)> {
    if rels.is_empty() {
        // SELECT without FROM: a single empty row.
        return Ok((
            Plan::Values {
                schema: Schema::new(vec![]),
                rows: vec![vec![]],
            },
            Vec::new(),
        ));
    }

    let n = rels.len();
    let arities: Vec<usize> = rels.iter().map(|(_, _, s)| s.arity()).collect();
    let mut plans: Vec<Option<Plan>> = rels.into_iter().map(|(p, _, _)| Some(p)).collect();

    // plan_offsets[rel] = offset of rel's columns in the current plan output.
    let mut plan_offsets: HashMap<usize, usize> = HashMap::new();
    let mut joined: HashSet<usize> = HashSet::new();
    let mut plan = plans[0].take().expect("rel 0 present");
    plan_offsets.insert(0, 0);
    joined.insert(0);
    let mut width = arities[0];

    while joined.len() < n {
        // Find an unjoined rel connected by at least one equi conjunct.
        let mut target: Option<usize> = None;
        for &(a, b) in &equi {
            let (ra, rb) = (scope.rel_of(a), scope.rel_of(b));
            if joined.contains(&ra) && !joined.contains(&rb) {
                target = Some(rb);
                break;
            }
            if joined.contains(&rb) && !joined.contains(&ra) {
                target = Some(ra);
                break;
            }
        }
        match target {
            Some(rel) => {
                // Collect every equi conjunct connecting `joined` to `rel`.
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                let rel_scope_offset = scope.items[rel].offset;
                equi.retain(|&(a, b)| {
                    let (ra, rb) = (scope.rel_of(a), scope.rel_of(b));
                    let (joined_abs, new_abs) = if joined.contains(&ra) && rb == rel {
                        (a, b)
                    } else if joined.contains(&rb) && ra == rel {
                        (b, a)
                    } else {
                        return true;
                    };
                    let joined_rel = scope.rel_of(joined_abs);
                    let joined_pos =
                        plan_offsets[&joined_rel] + (joined_abs - scope.items[joined_rel].offset);
                    left_keys.push(joined_pos);
                    right_keys.push(new_abs - rel_scope_offset);
                    false
                });
                plan = Plan::Join {
                    left: Box::new(plan),
                    right: Box::new(plans[rel].take().expect("rel not yet joined")),
                    left_keys,
                    right_keys,
                    strategy,
                };
                plan_offsets.insert(rel, width);
                width += arities[rel];
                joined.insert(rel);
            }
            None => {
                // Cross join with the next unjoined rel.
                let rel = (0..n).find(|r| !joined.contains(r)).expect("rel remains");
                plan = Plan::NestedLoop {
                    left: Box::new(plan),
                    right: Box::new(plans[rel].take().expect("rel not yet joined")),
                    predicate: None,
                };
                plan_offsets.insert(rel, width);
                width += arities[rel];
                joined.insert(rel);
            }
        }
    }

    // Equi conjuncts between two already-joined rels (cycles) become a
    // residual filter here.
    if !equi.is_empty() {
        let mut pred: Option<Expr> = None;
        for (a, b) in equi {
            let (ra, rb) = (scope.rel_of(a), scope.rel_of(b));
            let pa = plan_offsets[&ra] + (a - scope.items[ra].offset);
            let pb = plan_offsets[&rb] + (b - scope.items[rb].offset);
            let e = Expr::bin(BinOp::Eq, Expr::col(pa), Expr::col(pb));
            pred = Some(match pred {
                None => e,
                Some(p) => Expr::bin(BinOp::And, p, e),
            });
        }
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: pred.expect("nonempty"),
        };
    }

    let mut map = vec![0usize; scope.width];
    for (rel, item) in scope.items.iter().enumerate() {
        for ci in 0..item.schema.arity() {
            map[item.offset + ci] = plan_offsets[&rel] + ci;
        }
    }
    Ok((plan, map))
}

// ---------------------------------------------------------------------------
// Projection and aggregation.
// ---------------------------------------------------------------------------

fn contains_aggregate(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Func { name, .. } => {
            // `count`, `sum` ... but unnest and scalar functions are not
            // aggregates. Scalar functions shadow nothing in AggFunc.
            AggFunc::parse(name).is_some() && Func::parse(name).is_none()
        }
        SqlExpr::BinOp { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        SqlExpr::Not(i) | SqlExpr::Neg(i) => contains_aggregate(i),
        SqlExpr::ArrayLit(es) => es.iter().any(contains_aggregate),
        SqlExpr::InList { expr, .. }
        | SqlExpr::InSubquery { expr, .. }
        | SqlExpr::IsNull { expr, .. } => contains_aggregate(expr),
        SqlExpr::AnyEq { left, array } => contains_aggregate(left) || contains_aggregate(array),
        _ => false,
    }
}

fn output_name(item: &SelectItem, idx: usize) -> String {
    match item {
        SelectItem::Expr { alias: Some(a), .. } => a.clone(),
        SelectItem::Expr {
            expr: SqlExpr::Column { name, .. },
            ..
        } => name.clone(),
        SelectItem::Expr {
            expr: SqlExpr::Func { name, .. },
            ..
        } => name.to_ascii_lowercase(),
        _ => format!("column{idx}"),
    }
}

fn plan_projection(
    stmt: &SelectStmt,
    input: Plan,
    scope: &Scope,
    plan_map: &[usize],
    input_schema: &Schema,
    ctx: &ExecContext,
    strategy: JoinStrategy,
) -> Result<(Plan, Schema)> {
    let map = |abs: usize| plan_map[abs];
    let mut items: Vec<ProjItem> = Vec::new();
    let mut cols: Vec<Column> = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                if scope.items.is_empty() {
                    return Err(EngineError::Plan("SELECT * requires a FROM clause".into()));
                }
                for si in &scope.items {
                    for (ci, col) in si.schema.columns.iter().enumerate() {
                        items.push(ProjItem {
                            expr: Expr::col(map(si.offset + ci)),
                            unnest: false,
                        });
                        cols.push(col.clone());
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let si = scope
                    .items
                    .iter()
                    .find(|s| s.alias.eq_ignore_ascii_case(q))
                    .ok_or_else(|| EngineError::TableNotFound(q.clone()))?;
                for (ci, col) in si.schema.columns.iter().enumerate() {
                    items.push(ProjItem {
                        expr: Expr::col(map(si.offset + ci)),
                        unnest: false,
                    });
                    cols.push(col.clone());
                }
            }
            SelectItem::Expr { expr, alias: _ } => {
                // unnest(..) is a set-returning projection item.
                if let SqlExpr::Func { name, args, .. } = expr {
                    if name.eq_ignore_ascii_case("unnest") {
                        if args.len() != 1 {
                            return Err(EngineError::Arity("unnest takes one argument".into()));
                        }
                        let lowered = lower_expr(&args[0], scope, &map, ctx, strategy)?;
                        items.push(ProjItem {
                            expr: lowered,
                            unnest: true,
                        });
                        cols.push(Column::new(output_name(item, i), DataType::Int));
                        continue;
                    }
                }
                let lowered = lower_expr(expr, scope, &map, ctx, strategy)?;
                let dtype = infer_type(&lowered, input_schema);
                cols.push(Column::new(output_name(item, i), dtype));
                items.push(ProjItem {
                    expr: lowered,
                    unnest: false,
                });
            }
        }
    }
    let schema = Schema::new(cols);
    Ok((
        Plan::Project {
            input: Box::new(input),
            items,
            schema: schema.clone(),
        },
        schema,
    ))
}

fn plan_aggregate(
    stmt: &SelectStmt,
    input: Plan,
    scope: &Scope,
    plan_map: &[usize],
    input_schema: &Schema,
    ctx: &ExecContext,
    strategy: JoinStrategy,
) -> Result<(Plan, Schema)> {
    let map = |abs: usize| plan_map[abs];

    // Lower the GROUP BY expressions over the join output.
    let mut group_exprs: Vec<Expr> = Vec::new();
    for g in &stmt.group_by {
        group_exprs.push(lower_expr(g, scope, &map, ctx, strategy)?);
    }

    // Collect aggregates from SELECT items and HAVING; build post-agg exprs.
    let mut aggs: Vec<Aggregate> = Vec::new();
    let mut post_items: Vec<(Expr, String, DataType)> = Vec::new();

    struct AggLower<'x> {
        stmt_group_by: &'x [SqlExpr],
        scope: &'x Scope,
        plan_map: &'x [usize],
        ctx: &'x ExecContext<'x>,
        strategy: JoinStrategy,
    }

    impl<'x> AggLower<'x> {
        fn lower(&self, e: &SqlExpr, aggs: &mut Vec<Aggregate>) -> Result<Expr> {
            // A select expression matching a GROUP BY expression verbatim
            // refers to the corresponding group-key output column.
            if let Some(pos) = self.stmt_group_by.iter().position(|g| g == e) {
                return Ok(Expr::col(pos));
            }
            if let SqlExpr::Func {
                name,
                args,
                distinct,
                star,
            } = e
            {
                if let Some(mut func) = AggFunc::parse(name) {
                    if Func::parse(name).is_none() {
                        let arg = if *star {
                            func = AggFunc::CountStar;
                            None
                        } else {
                            if args.len() != 1 {
                                return Err(EngineError::Arity(format!(
                                    "aggregate {name} takes one argument"
                                )));
                            }
                            let m = |abs: usize| self.plan_map[abs];
                            Some(lower_expr(
                                &args[0],
                                self.scope,
                                &m,
                                self.ctx,
                                self.strategy,
                            )?)
                        };
                        aggs.push(Aggregate {
                            func,
                            arg,
                            distinct: *distinct,
                        });
                        return Ok(Expr::col(self.stmt_group_by.len() + aggs.len() - 1));
                    }
                }
            }
            // Recurse structurally over non-aggregate operators.
            match e {
                SqlExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
                SqlExpr::Column { qualifier, name } => Err(EngineError::Plan(format!(
                    "column {}{name} must appear in GROUP BY or inside an aggregate",
                    qualifier
                        .as_ref()
                        .map(|q| format!("{q}."))
                        .unwrap_or_default()
                ))),
                SqlExpr::BinOp { op, left, right } => Ok(Expr::BinOp {
                    op: *op,
                    left: Box::new(self.lower(left, aggs)?),
                    right: Box::new(self.lower(right, aggs)?),
                }),
                SqlExpr::Not(i) => Ok(Expr::Not(Box::new(self.lower(i, aggs)?))),
                SqlExpr::Neg(i) => Ok(Expr::Neg(Box::new(self.lower(i, aggs)?))),
                SqlExpr::Func { name, args, .. } => {
                    let func = Func::parse(name).ok_or_else(|| {
                        EngineError::Plan(format!("unknown function {name} in aggregate query"))
                    })?;
                    let mut lowered = Vec::new();
                    for a in args {
                        lowered.push(self.lower(a, aggs)?);
                    }
                    Ok(Expr::Func {
                        func,
                        args: lowered,
                    })
                }
                other => {
                    if contains_aggregate(other) {
                        return Err(EngineError::Plan(
                            "unsupported aggregate expression shape".into(),
                        ));
                    }
                    Err(EngineError::Plan(
                        "non-grouped expression in aggregate query".into(),
                    ))
                }
            }
        }
    }

    let lowerer = AggLower {
        stmt_group_by: &stmt.group_by,
        scope,
        plan_map,
        ctx,
        strategy,
    };

    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Expr { expr, .. } => {
                let lowered = lowerer.lower(expr, &mut aggs)?;
                let name = output_name(item, i);
                post_items.push((lowered, name, DataType::Int));
            }
            _ => {
                return Err(EngineError::Plan(
                    "SELECT * cannot be combined with GROUP BY/aggregates".into(),
                ))
            }
        }
    }
    let having = match &stmt.having {
        Some(h) => Some(lowerer.lower(h, &mut aggs)?),
        None => None,
    };

    // Schema of the aggregate node output: group keys then aggregates.
    let mut agg_cols: Vec<Column> = Vec::new();
    for (i, g) in group_exprs.iter().enumerate() {
        let name = match &stmt.group_by[i] {
            SqlExpr::Column { name, .. } => name.clone(),
            _ => format!("group{i}"),
        };
        agg_cols.push(Column::new(name, infer_type(g, input_schema)));
    }
    for (i, a) in aggs.iter().enumerate() {
        let dtype = match a.func {
            AggFunc::CountStar | AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Double,
            AggFunc::ArrayAgg => DataType::IntArray,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
                .arg
                .as_ref()
                .map(|e| infer_type(e, input_schema))
                .unwrap_or(DataType::Int),
        };
        agg_cols.push(Column::new(format!("agg{i}"), dtype));
    }
    let agg_schema = Schema::new(agg_cols);

    let mut plan = Plan::Aggregate {
        input: Box::new(input),
        group_by: group_exprs,
        aggregates: aggs,
        schema: agg_schema.clone(),
    };
    if let Some(h) = having {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: h,
        };
    }

    // Final projection to the SELECT item order.
    let mut items = Vec::with_capacity(post_items.len());
    let mut cols = Vec::with_capacity(post_items.len());
    for (expr, name, _) in post_items {
        let dtype = infer_type(&expr, &agg_schema);
        cols.push(Column::new(name, dtype));
        items.push(ProjItem {
            expr,
            unnest: false,
        });
    }
    let out_schema = Schema::new(cols);
    Ok((
        Plan::Project {
            input: Box::new(plan),
            items,
            schema: out_schema.clone(),
        },
        out_schema,
    ))
}

enum OrderKeys {
    OverOutput(Vec<SortKey>),
    Unresolvable(String),
}

fn resolve_order_keys(
    order_by: &[OrderKey],
    out_schema: &Schema,
    _scope: &Scope,
    _plan_map: &[usize],
    _ctx: &ExecContext,
    _strategy: JoinStrategy,
) -> Result<OrderKeys> {
    let mut keys = Vec::with_capacity(order_by.len());
    for k in order_by {
        let expr = match &k.expr {
            SqlExpr::Column {
                qualifier: None,
                name,
            } => match out_schema.column_index(name) {
                Ok(i) => Expr::col(i),
                Err(_) => return Ok(OrderKeys::Unresolvable(name.clone())),
            },
            SqlExpr::Literal(Value::Int(n)) => {
                let idx = *n as usize;
                if idx == 0 || idx > out_schema.arity() {
                    return Err(EngineError::Plan(format!(
                        "ORDER BY position {n} out of range"
                    )));
                }
                Expr::col(idx - 1)
            }
            other => return Ok(OrderKeys::Unresolvable(other.to_string())),
        };
        keys.push(SortKey { expr, desc: k.desc });
    }
    Ok(OrderKeys::OverOutput(keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;
    use crate::sql::Statement;
    use crate::stats::ExecStats;
    use crate::table::Table;
    use std::collections::HashMap as Map;

    fn setup() -> Map<String, Table> {
        let mut tables = Map::new();
        let data_schema = Schema::new(vec![
            Column::new("rid", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Int),
        ])
        .with_primary_key(&["rid"])
        .unwrap();
        let mut data = Table::new("datatable", data_schema);
        for i in 0..20i64 {
            data.insert(vec![
                Value::Int(i),
                Value::Text(format!("n{}", i % 4)),
                Value::Int(i * 10),
            ])
            .unwrap();
        }
        tables.insert("datatable".into(), data);

        let v_schema = Schema::new(vec![
            Column::new("vid", DataType::Int),
            Column::new("rlist", DataType::IntArray),
        ])
        .with_primary_key(&["vid"])
        .unwrap();
        let mut vt = Table::new("versioningtable", v_schema);
        vt.insert(vec![Value::Int(1), Value::IntArray(vec![0, 1, 2])])
            .unwrap();
        vt.insert(vec![Value::Int(2), Value::IntArray(vec![1, 2, 3, 4])])
            .unwrap();
        tables.insert("versioningtable".into(), vt);
        tables
    }

    fn select(sql: &str, tables: &Map<String, Table>) -> (Chunk, ExecStats) {
        let stats = ExecStats::default();
        let chunk = {
            let ctx = ExecContext {
                tables,
                stats: &stats,
            };
            let stmt = match parse_statement(sql).unwrap() {
                Statement::Select(s) => s,
                other => panic!("not a select: {other:?}"),
            };
            run_select(&stmt, &ctx, JoinStrategy::Auto).unwrap()
        };
        (chunk, stats)
    }

    #[test]
    fn plans_split_by_rlist_checkout_with_index_path() {
        let tables = setup();
        let sql = "SELECT * FROM dataTable, \
                   (SELECT unnest(rlist) AS rid_tmp FROM versioningTable WHERE vid = 2) AS tmp \
                   WHERE rid = rid_tmp";
        let (chunk, stats) = select(sql, &tables);
        assert_eq!(chunk.rows.len(), 4);
        // The versioning-table access must be an index lookup on vid, not a
        // scan of the versioning table (only the data table is scanned).
        assert_eq!(stats.index_lookups(), 1);
        assert_eq!(stats.rows_scanned(), 20);
        // Output columns: dataTable.* then tmp.rid_tmp.
        assert_eq!(
            chunk.schema.column_names(),
            vec!["rid", "name", "score", "rid_tmp"]
        );
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let tables = setup();
        let (chunk, _) = select("SELECT d.* FROM dataTable AS d WHERE d.rid < 3", &tables);
        assert_eq!(chunk.rows.len(), 3);
        assert_eq!(chunk.schema.arity(), 3);
    }

    #[test]
    fn group_by_having_order_limit() {
        let tables = setup();
        let (chunk, _) = select(
            "SELECT name, count(*) AS n, sum(score) AS total FROM dataTable \
             GROUP BY name HAVING count(*) > 1 ORDER BY total DESC LIMIT 2",
            &tables,
        );
        assert_eq!(chunk.rows.len(), 2);
        // name n3 has rids 3,7,11,15,19 → total 550.
        assert_eq!(chunk.rows[0][0], Value::Text("n3".into()));
        assert_eq!(chunk.rows[0][1], Value::Int(5));
        assert_eq!(chunk.rows[0][2], Value::Int(550));
    }

    #[test]
    fn in_subquery_materializes() {
        let tables = setup();
        let (chunk, _) = select(
            "SELECT rid FROM dataTable WHERE rid IN (SELECT unnest(rlist) FROM versioningTable WHERE vid = 1)",
            &tables,
        );
        assert_eq!(chunk.rows.len(), 3);
    }

    #[test]
    fn scalar_subquery_and_no_from() {
        let tables = setup();
        let (chunk, _) = select("SELECT 1 + 2 AS three", &tables);
        assert_eq!(chunk.rows, vec![vec![Value::Int(3)]]);
        let (chunk, _) = select("SELECT (SELECT max(rid) FROM dataTable) AS m", &tables);
        assert_eq!(chunk.rows, vec![vec![Value::Int(19)]]);
    }

    #[test]
    fn explicit_join_syntax_with_non_equi_on() {
        let tables = setup();
        // The ON condition is not a column-column equality, so it becomes a
        // residual filter over a cross join.
        let (chunk, _) = select(
            "SELECT v.vid, d.name FROM versioningTable v JOIN dataTable d ON d.rid = array_length(v.rlist) WHERE v.vid = 1",
            &tables,
        );
        // array_length(rlist of v1) = 3 → matches rid=3 ("n3").
        assert_eq!(chunk.rows.len(), 1);
        assert_eq!(chunk.rows[0][1], Value::Text("n3".into()));
    }

    #[test]
    fn explicit_equi_join() {
        let tables = setup();
        let (chunk, stats) = select(
            "SELECT d.rid, d.score FROM dataTable d JOIN dataTable d2 ON d.rid = d2.rid",
            &tables,
        );
        assert_eq!(chunk.rows.len(), 20);
        assert!(stats.join_rows() >= 20);
    }

    #[test]
    fn ambiguous_column_is_rejected() {
        let tables = setup();
        let stats = ExecStats::default();
        let ctx = ExecContext {
            tables: &tables,
            stats: &stats,
        };
        let stmt =
            match parse_statement("SELECT rid FROM dataTable a, dataTable b WHERE a.rid = b.rid")
                .unwrap()
            {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
        let err = run_select(&stmt, &ctx, JoinStrategy::Auto).unwrap_err();
        assert!(matches!(err, EngineError::AmbiguousColumn(_)));
    }

    #[test]
    fn cross_join_without_predicate() {
        let tables = setup();
        let (chunk, _) = select(
            "SELECT v.vid, v2.vid FROM versioningTable v, versioningTable v2",
            &tables,
        );
        assert_eq!(chunk.rows.len(), 4);
    }

    #[test]
    fn array_subquery_lowering() {
        let tables = setup();
        let (chunk, _) = select(
            "SELECT ARRAY(SELECT rid FROM dataTable WHERE rid < 3) AS arr",
            &tables,
        );
        assert_eq!(chunk.rows[0][0], Value::IntArray(vec![0, 1, 2]));
    }

    #[test]
    fn order_by_output_position() {
        let tables = setup();
        let (chunk, _) = select(
            "SELECT rid, score FROM dataTable WHERE rid < 4 ORDER BY 1 DESC",
            &tables,
        );
        assert_eq!(chunk.rows[0][0], Value::Int(3));
    }
}
