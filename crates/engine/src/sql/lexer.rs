//! Hand-rolled SQL tokenizer.

use crate::error::{EngineError, Result};

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// Numeric literal, kept as text until typed by the parser.
    Number(String),
    /// Single-quoted string literal (escapes already processed).
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||`
    Concat,
    /// `<@`
    ContainedBy,
    /// `@>`
    Contains,
    Eof,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() {
                    match bytes[i + 1] {
                        b'=' => {
                            tokens.push(Token::LtEq);
                            i += 2;
                            continue;
                        }
                        b'>' => {
                            tokens.push(Token::NotEq);
                            i += 2;
                            continue;
                        }
                        b'@' => {
                            tokens.push(Token::ContainedBy);
                            i += 2;
                            continue;
                        }
                        _ => {}
                    }
                }
                tokens.push(Token::Lt);
                i += 1;
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '@' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Contains);
                    i += 2;
                } else {
                    return Err(EngineError::Parse(format!(
                        "unexpected character '@' at byte {i}"
                    )));
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(Token::Concat);
                    i += 2;
                } else {
                    return Err(EngineError::Parse(format!(
                        "unexpected character '|' at byte {i}"
                    )));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(EngineError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        // '' is an escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy the full UTF-8 character.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(EngineError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )));
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_checkout_query() {
        let toks = tokenize("SELECT * INTO t2 FROM t WHERE ARRAY[3] <@ vlist").unwrap();
        assert!(toks.contains(&Token::ContainedBy));
        assert!(toks.contains(&Token::LBracket));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn operators_and_numbers() {
        let toks = tokenize("a <= 1.5 AND b <> 2 OR c >= 3 @> x != y").unwrap();
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::Number("1.5".into())));
        assert_eq!(toks.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(toks.contains(&Token::Contains));
        assert!(toks.contains(&Token::GtEq));
    }

    #[test]
    fn string_escapes_and_comments() {
        let toks = tokenize("SELECT 'it''s' -- trailing comment\n, 'ok'").unwrap();
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Str("ok".into())));
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn concat_operator() {
        let toks = tokenize("a || b").unwrap();
        assert!(toks.contains(&Token::Concat));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("SELECT 'héllo wörld'").unwrap();
        assert!(toks.contains(&Token::Str("héllo wörld".into())));
    }
}
