//! SQL front-end: lexer, AST, recursive-descent parser and planner.
//!
//! The dialect is the subset of PostgreSQL that OrpheusDB's query
//! translation layer emits (Table 1 of the paper plus the versioned-query
//! rewrites of the companion demo paper): `SELECT [INTO]` with comma joins,
//! derived tables, `unnest`, array literals/operators, `IN` (lists and
//! subqueries), `GROUP BY`/`HAVING`, `ORDER BY`/`LIMIT`, the usual DML, and
//! a handful of DDL statements including `CLUSTER` and `CREATE INDEX`.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{SelectStmt, SqlExpr, Statement};
pub use parser::parse_statement;
