//! Abstract syntax tree for the SQL dialect, with a pretty-printer whose
//! output re-parses to the same tree (property-tested).

use std::fmt;

use crate::expr::BinOp;
use crate::types::{DataType, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        assignments: Vec<(String, SqlExpr)>,
        filter: Option<SqlExpr>,
    },
    Delete {
        table: String,
        filter: Option<SqlExpr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    Truncate {
        table: String,
    },
    AlterAddColumn {
        table: String,
        column: ColumnDef,
    },
    AlterColumnType {
        table: String,
        column: String,
        new_type: DataType,
    },
    CreateIndex {
        name: Option<String>,
        table: String,
        columns: Vec<String>,
        unique: bool,
        btree: bool,
    },
    /// `CLUSTER t USING (col, ...)` — physically sort the heap.
    Cluster {
        table: String,
        columns: Vec<String>,
    },
    /// `SET name = value` — engine session settings (join strategy).
    Set {
        name: String,
        value: String,
    },
    /// `EXPLAIN SELECT ...` — render the physical plan without executing.
    Explain(Box<SelectStmt>),
}

/// Column definition in CREATE TABLE / ALTER TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub not_null: bool,
    pub primary_key: bool,
}

/// Source of rows for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<SqlExpr>>),
    Select(Box<SelectStmt>),
}

/// A SELECT statement (optionally `SELECT ... INTO t ...`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub into: Option<String>,
    pub from: Vec<FromItem>,
    pub filter: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: SqlExpr,
    pub desc: bool,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    Expr {
        expr: SqlExpr,
        alias: Option<String>,
    },
}

/// A FROM-clause item. Comma-separated items are kept as a list on
/// [`SelectStmt::from`]; explicit `JOIN ... ON` nests here.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    Table {
        name: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
    Join {
        left: Box<FromItem>,
        right: Box<FromItem>,
        on: SqlExpr,
    },
}

impl FromItem {
    /// The alias this item is known by in the enclosing scope.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            FromItem::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            FromItem::Subquery { alias, .. } => Some(alias),
            FromItem::Join { .. } => None,
        }
    }
}

/// Expression syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Literal(Value),
    Column {
        qualifier: Option<String>,
        name: String,
    },
    BinOp {
        op: BinOp,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
    Not(Box<SqlExpr>),
    Neg(Box<SqlExpr>),
    /// Function call — scalar functions, aggregates, and `unnest`.
    Func {
        name: String,
        args: Vec<SqlExpr>,
        distinct: bool,
        /// `count(*)`
        star: bool,
    },
    /// `ARRAY[e1, e2, ...]`
    ArrayLit(Vec<SqlExpr>),
    /// `ARRAY(SELECT ...)` — collects a single int column into an array.
    ArraySubquery(Box<SelectStmt>),
    /// `e IN (v1, v2, ...)` / `e NOT IN (...)`
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
        negated: bool,
    },
    /// `e IN (SELECT ...)`
    InSubquery {
        expr: Box<SqlExpr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// `(SELECT ...)` producing a single value.
    ScalarSubquery(Box<SelectStmt>),
    /// `e = ANY(array_expr)`
    AnyEq {
        left: Box<SqlExpr>,
        array: Box<SqlExpr>,
    },
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
}

impl SqlExpr {
    pub fn col(name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    pub fn qcol(q: &str, name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: Some(q.to_string()),
            name: name.to_string(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> SqlExpr {
        SqlExpr::Literal(v.into())
    }

    pub fn bin(op: BinOp, l: SqlExpr, r: SqlExpr) -> SqlExpr {
        SqlExpr::BinOp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }
}

// ---------------------------------------------------------------------------
// Pretty-printing. The printer parenthesizes all nested binary expressions,
// which keeps it trivially unambiguous for the re-parse property test.
// ---------------------------------------------------------------------------

fn fmt_value(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        Value::IntArray(a) => {
            write!(f, "ARRAY[")?;
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, "]")
        }
        Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        Value::Null => write!(f, "NULL"),
        other => write!(f, "{other}"),
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Literal(v) => fmt_value(v, f),
            SqlExpr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            SqlExpr::BinOp { op, left, right } => {
                write!(f, "({left} {op_s} {right})", op_s = display_op(*op))
            }
            SqlExpr::Not(e) => write!(f, "(NOT {e})"),
            SqlExpr::Neg(e) => write!(f, "(-{e})"),
            SqlExpr::Func {
                name,
                args,
                distinct,
                star,
            } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    if *distinct {
                        write!(f, "DISTINCT ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
            SqlExpr::ArrayLit(es) => {
                write!(f, "ARRAY[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            SqlExpr::ArraySubquery(q) => write!(f, "ARRAY({q})"),
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            SqlExpr::InSubquery {
                expr,
                query,
                negated,
            } => write!(
                f,
                "({expr} {}IN ({query}))",
                if *negated { "NOT " } else { "" }
            ),
            SqlExpr::ScalarSubquery(q) => write!(f, "({q})"),
            SqlExpr::AnyEq { left, array } => write!(f, "({left} = ANY({array}))"),
            SqlExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

fn display_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "=",
        BinOp::NotEq => "<>",
        BinOp::Lt => "<",
        BinOp::LtEq => "<=",
        BinOp::Gt => ">",
        BinOp::GtEq => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Concat => "||",
        BinOp::ContainedBy => "<@",
        BinOp::Contains => "@>",
        BinOp::AnyEq => "= ANY",
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
        }
    }
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromItem::Table { name, alias } => match alias {
                Some(a) => write!(f, "{name} AS {a}"),
                None => write!(f, "{name}"),
            },
            FromItem::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
            FromItem::Join { left, right, on } => write!(f, "{left} JOIN {right} ON {on}"),
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{it}")?;
        }
        if let Some(t) = &self.into {
            write!(f, " INTO {t}")?;
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, fi) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{fi}")?;
            }
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", k.expr, if k.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        write!(f, " VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "(")?;
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    write!(f, ", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            write!(f, ")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Select(s) => write!(f, " {s}"),
                }
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(w) = filter {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                if_not_exists,
            } => {
                write!(
                    f,
                    "CREATE TABLE {}{name} (",
                    if *if_not_exists { "IF NOT EXISTS " } else { "" }
                )?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.dtype.sql_name())?;
                    if c.primary_key {
                        write!(f, " PRIMARY KEY")?;
                    } else if c.not_null {
                        write!(f, " NOT NULL")?;
                    }
                }
                if !primary_key.is_empty() {
                    write!(f, ", PRIMARY KEY ({})", primary_key.join(", "))?;
                }
                write!(f, ")")
            }
            Statement::DropTable { name, if_exists } => write!(
                f,
                "DROP TABLE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            ),
            Statement::Truncate { table } => write!(f, "TRUNCATE {table}"),
            Statement::AlterAddColumn { table, column } => write!(
                f,
                "ALTER TABLE {table} ADD COLUMN {} {}",
                column.name,
                column.dtype.sql_name()
            ),
            Statement::AlterColumnType {
                table,
                column,
                new_type,
            } => write!(
                f,
                "ALTER TABLE {table} ALTER COLUMN {column} TYPE {}",
                new_type.sql_name()
            ),
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                btree,
            } => {
                write!(f, "CREATE {}INDEX", if *unique { "UNIQUE " } else { "" })?;
                if let Some(n) = name {
                    write!(f, " {n}")?;
                }
                write!(f, " ON {table}")?;
                if *btree {
                    write!(f, " USING BTREE")?;
                }
                write!(f, " ({})", columns.join(", "))
            }
            Statement::Cluster { table, columns } => {
                write!(f, "CLUSTER {table} USING ({})", columns.join(", "))
            }
            Statement::Set { name, value } => write!(f, "SET {name} = '{value}'"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_checkout_statement_shapes() {
        // Combined-table checkout from Table 1.
        let e = SqlExpr::bin(
            BinOp::ContainedBy,
            SqlExpr::ArrayLit(vec![SqlExpr::lit(3)]),
            SqlExpr::col("vlist"),
        );
        assert_eq!(e.to_string(), "(ARRAY[3] <@ vlist)");
    }

    #[test]
    fn display_select_into() {
        let s = SelectStmt {
            items: vec![SelectItem::Wildcard],
            into: Some("tprime".into()),
            from: vec![FromItem::Table {
                name: "t".into(),
                alias: None,
            }],
            filter: Some(SqlExpr::bin(
                BinOp::Eq,
                SqlExpr::col("vid"),
                SqlExpr::lit(7),
            )),
            ..Default::default()
        };
        assert_eq!(s.to_string(), "SELECT * INTO tprime FROM t WHERE (vid = 7)");
    }

    #[test]
    fn display_insert_with_array_subquery() {
        // Split-by-rlist commit from Table 1.
        let stmt = Statement::Insert {
            table: "versioningtable".into(),
            columns: None,
            source: InsertSource::Values(vec![vec![
                SqlExpr::lit(9),
                SqlExpr::ArraySubquery(Box::new(SelectStmt {
                    items: vec![SelectItem::Expr {
                        expr: SqlExpr::col("rid"),
                        alias: None,
                    }],
                    from: vec![FromItem::Table {
                        name: "tprime".into(),
                        alias: None,
                    }],
                    ..Default::default()
                })),
            ]]),
        };
        assert_eq!(
            stmt.to_string(),
            "INSERT INTO versioningtable VALUES (9, ARRAY(SELECT rid FROM tprime))"
        );
    }
}
