//! Recursive-descent parser producing [`super::ast`] trees.

use crate::error::{EngineError, Result};
use crate::expr::BinOp;
use crate::types::{DataType, Value};

use super::ast::*;
use super::lexer::{tokenize, Token};

/// Keywords that terminate an expression / cannot be bare aliases.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "having", "order", "limit", "into", "as", "join", "on",
    "inner", "and", "or", "not", "in", "is", "null", "asc", "desc", "values", "set", "union", "by",
    "using", "cross",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect(&Token::Eof)?;
    Ok(stmt)
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.peek() == &Token::Eof {
            break;
        }
        stmts.push(p.statement()?);
        if !p.eat(&Token::Semicolon) {
            break;
        }
    }
    p.expect(&Token::Eof)?;
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        self.tokens.get(self.pos + n).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(EngineError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(EngineError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        let t = self.peek().clone();
        match &t {
            Token::Ident(kw) if kw.eq_ignore_ascii_case("select") => {
                Ok(Statement::Select(self.select()?))
            }
            Token::Ident(kw) if kw.eq_ignore_ascii_case("explain") => {
                self.next();
                Ok(Statement::Explain(Box::new(self.select()?)))
            }
            Token::Ident(kw) if kw.eq_ignore_ascii_case("insert") => self.insert(),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("update") => self.update(),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("delete") => self.delete(),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("create") => self.create(),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("drop") => self.drop_table(),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("truncate") => {
                self.next();
                self.eat_kw("table");
                Ok(Statement::Truncate {
                    table: self.ident()?,
                })
            }
            Token::Ident(kw) if kw.eq_ignore_ascii_case("alter") => self.alter(),
            Token::Ident(kw) if kw.eq_ignore_ascii_case("cluster") => {
                self.next();
                let table = self.ident()?;
                self.expect_kw("using")?;
                self.expect(&Token::LParen)?;
                let columns = self.ident_list()?;
                self.expect(&Token::RParen)?;
                Ok(Statement::Cluster { table, columns })
            }
            Token::Ident(kw) if kw.eq_ignore_ascii_case("set") => {
                self.next();
                let name = self.ident()?;
                self.expect(&Token::Eq)?;
                let value = match self.next() {
                    Token::Ident(s) | Token::Str(s) | Token::Number(s) => s,
                    other => {
                        return Err(EngineError::Parse(format!(
                            "expected setting value, found {other:?}"
                        )))
                    }
                };
                Ok(Statement::Set { name, value })
            }
            other => Err(EngineError::Parse(format!(
                "expected statement, found {other:?}"
            ))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            items.push(self.select_item()?);
        }
        let into = if self.eat_kw("into") {
            Some(self.ident()?)
        } else {
            None
        };
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(self.parse_from_item()?);
            while self.eat(&Token::Comma) {
                from.push(self.parse_from_item()?);
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Token::Number(n) => Some(
                    n.parse::<u64>()
                        .map_err(|_| EngineError::Parse(format!("invalid LIMIT value: {n}")))?,
                ),
                other => {
                    return Err(EngineError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            into,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Token::Ident(t), Token::Dot, Token::Star) = (
            self.peek().clone(),
            self.peek_ahead(1).clone(),
            self.peek_ahead(2).clone(),
        ) {
            self.next();
            self.next();
            self.next();
            return Ok(SelectItem::QualifiedWildcard(t));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Token::Ident(name) = self.peek() {
            if !is_reserved(name) {
                let a = name.clone();
                self.next();
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let mut item = self.parse_from_primary()?;
        loop {
            if self.peek().is_kw("join")
                || (self.peek().is_kw("inner") && self.peek_ahead(1).is_kw("join"))
            {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                let right = self.parse_from_primary()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                item = FromItem::Join {
                    left: Box::new(item),
                    right: Box::new(right),
                    on,
                };
            } else {
                break;
            }
        }
        Ok(item)
    }

    fn parse_from_primary(&mut self) -> Result<FromItem> {
        if self.eat(&Token::LParen) {
            let query = self.select()?;
            self.expect(&Token::RParen)?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(FromItem::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        if is_reserved(&name) {
            return Err(EngineError::Parse(format!(
                "unexpected keyword {name} where a table was expected"
            )));
        }
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Token::Ident(a) = self.peek() {
            if !is_reserved(a) {
                let a = a.clone();
                self.next();
                Some(a)
            } else {
                None
            }
        } else {
            None
        };
        Ok(FromItem::Table { name, alias })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        // Optional column list: disambiguate from `INSERT INTO t (SELECT ..)`.
        let mut columns = None;
        if self.peek() == &Token::LParen && !self.peek_ahead(1).is_kw("select") {
            self.expect(&Token::LParen)?;
            columns = Some(self.ident_list()?);
            self.expect(&Token::RParen)?;
        }
        if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                if self.peek() != &Token::RParen {
                    row.push(self.expr()?);
                    while self.eat(&Token::Comma) {
                        row.push(self.expr()?);
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            })
        } else {
            let parenthesized = self.eat(&Token::LParen);
            let sel = self.select()?;
            if parenthesized {
                self.expect(&Token::RParen)?;
            }
            Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Select(Box::new(sel)),
            })
        }
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        let unique = self.eat_kw("unique");
        if self.eat_kw("index") {
            let name = if self.peek().is_kw("on") {
                None
            } else {
                Some(self.ident()?)
            };
            self.expect_kw("on")?;
            let table = self.ident()?;
            let mut btree = false;
            if self.eat_kw("using") {
                let kind = self.ident()?;
                btree = kind.eq_ignore_ascii_case("btree");
            }
            self.expect(&Token::LParen)?;
            let columns = self.ident_list()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                btree,
            });
        }
        if unique {
            return Err(EngineError::Parse("UNIQUE only applies to INDEX".into()));
        }
        self.expect_kw("table")?;
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.peek().is_kw("primary") {
                self.next();
                self.expect_kw("key")?;
                self.expect(&Token::LParen)?;
                primary_key = self.ident_list()?;
                self.expect(&Token::RParen)?;
            } else {
                let col_name = self.ident()?;
                let dtype = self.type_name()?;
                let mut not_null = false;
                let mut pk = false;
                loop {
                    if self.eat_kw("not") {
                        self.expect_kw("null")?;
                        not_null = true;
                    } else if self.eat_kw("primary") {
                        self.expect_kw("key")?;
                        pk = true;
                        not_null = true;
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    dtype,
                    not_null,
                    primary_key: pk,
                });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
            if_not_exists,
        })
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw("drop")?;
        self.expect_kw("table")?;
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        Ok(Statement::DropTable {
            name: self.ident()?,
            if_exists,
        })
    }

    fn alter(&mut self) -> Result<Statement> {
        self.expect_kw("alter")?;
        self.expect_kw("table")?;
        let table = self.ident()?;
        if self.eat_kw("add") {
            self.eat_kw("column");
            let name = self.ident()?;
            let dtype = self.type_name()?;
            return Ok(Statement::AlterAddColumn {
                table,
                column: ColumnDef {
                    name,
                    dtype,
                    not_null: false,
                    primary_key: false,
                },
            });
        }
        if self.eat_kw("alter") {
            self.eat_kw("column");
            let column = self.ident()?;
            self.expect_kw("type")?;
            let new_type = self.type_name()?;
            return Ok(Statement::AlterColumnType {
                table,
                column,
                new_type,
            });
        }
        Err(EngineError::Parse(
            "expected ADD COLUMN or ALTER COLUMN after ALTER TABLE".into(),
        ))
    }

    fn type_name(&mut self) -> Result<DataType> {
        let base = self.ident()?;
        // Ignore length parameters like VARCHAR(255).
        if self.eat(&Token::LParen) {
            self.next(); // the length
            self.expect(&Token::RParen)?;
        }
        if self.eat(&Token::LBracket) {
            self.expect(&Token::RBracket)?;
            return DataType::parse(&format!("{base}[]"));
        }
        DataType::parse(&base)
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut out = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(SqlExpr::Not(Box::new(e)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<SqlExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN
        let negated_in = if self.peek().is_kw("not") && self.peek_ahead(1).is_kw("in") {
            self.next();
            true
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            if self.peek().is_kw("select") {
                let q = self.select()?;
                self.expect(&Token::RParen)?;
                return Ok(SqlExpr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated: negated_in,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&Token::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated: negated_in,
            });
        }
        if negated_in {
            return Err(EngineError::Parse("expected IN after NOT".into()));
        }
        let op = match self.peek() {
            Token::Eq => Some(BinOp::Eq),
            Token::NotEq => Some(BinOp::NotEq),
            Token::Lt => Some(BinOp::Lt),
            Token::LtEq => Some(BinOp::LtEq),
            Token::Gt => Some(BinOp::Gt),
            Token::GtEq => Some(BinOp::GtEq),
            Token::ContainedBy => Some(BinOp::ContainedBy),
            Token::Contains => Some(BinOp::Contains),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            // `= ANY(expr)`
            if op == BinOp::Eq && self.peek().is_kw("any") {
                self.next();
                self.expect(&Token::LParen)?;
                let arr = self.expr()?;
                self.expect(&Token::RParen)?;
                return Ok(SqlExpr::AnyEq {
                    left: Box::new(left),
                    array: Box::new(arr),
                });
            }
            let right = self.additive()?;
            return Ok(SqlExpr::bin(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                Token::Concat => BinOp::Concat,
                _ => break,
            };
            self.next();
            let right = self.multiplicative()?;
            left = SqlExpr::bin(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary()?;
            left = SqlExpr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr> {
        if self.eat(&Token::Minus) {
            let e = self.unary()?;
            // Fold negation of numeric literals.
            if let SqlExpr::Literal(Value::Int(i)) = e {
                return Ok(SqlExpr::Literal(Value::Int(-i)));
            }
            if let SqlExpr::Literal(Value::Double(d)) = e {
                return Ok(SqlExpr::Literal(Value::Double(-d)));
            }
            return Ok(SqlExpr::Neg(Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.peek().clone() {
            Token::Number(n) => {
                self.next();
                if n.contains('.') {
                    let d = n
                        .parse::<f64>()
                        .map_err(|_| EngineError::Parse(format!("bad number {n}")))?;
                    Ok(SqlExpr::Literal(Value::Double(d)))
                } else {
                    let i = n
                        .parse::<i64>()
                        .map_err(|_| EngineError::Parse(format!("bad number {n}")))?;
                    Ok(SqlExpr::Literal(Value::Int(i)))
                }
            }
            Token::Str(s) => {
                self.next();
                Ok(SqlExpr::Literal(Value::Text(s)))
            }
            Token::LParen => {
                self.next();
                if self.peek().is_kw("select") {
                    let q = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(SqlExpr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => {
                if is_reserved(&word)
                    && !word.eq_ignore_ascii_case("null")
                    && !word.eq_ignore_ascii_case("true")
                    && !word.eq_ignore_ascii_case("false")
                {
                    return Err(EngineError::Parse(format!(
                        "unexpected keyword {word} in expression"
                    )));
                }
                if word.eq_ignore_ascii_case("null") {
                    self.next();
                    return Ok(SqlExpr::Literal(Value::Null));
                }
                if word.eq_ignore_ascii_case("true") {
                    self.next();
                    return Ok(SqlExpr::Literal(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("false") {
                    self.next();
                    return Ok(SqlExpr::Literal(Value::Bool(false)));
                }
                if word.eq_ignore_ascii_case("array") {
                    self.next();
                    // ARRAY[...] literal or ARRAY(SELECT ...)
                    if self.eat(&Token::LBracket) {
                        // `ARRAY[SELECT ...]` also appears in the paper's
                        // Table 1; treat it like ARRAY(SELECT ...).
                        if self.peek().is_kw("select") {
                            let q = self.select()?;
                            self.expect(&Token::RBracket)?;
                            return Ok(SqlExpr::ArraySubquery(Box::new(q)));
                        }
                        let mut elems = Vec::new();
                        if self.peek() != &Token::RBracket {
                            elems.push(self.expr()?);
                            while self.eat(&Token::Comma) {
                                elems.push(self.expr()?);
                            }
                        }
                        self.expect(&Token::RBracket)?;
                        return Ok(SqlExpr::ArrayLit(elems));
                    }
                    self.expect(&Token::LParen)?;
                    let q = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(SqlExpr::ArraySubquery(Box::new(q)));
                }
                // Function call?
                if self.peek_ahead(1) == &Token::LParen {
                    let name = self.ident()?;
                    self.expect(&Token::LParen)?;
                    if self.eat(&Token::Star) {
                        self.expect(&Token::RParen)?;
                        return Ok(SqlExpr::Func {
                            name,
                            args: Vec::new(),
                            distinct: false,
                            star: true,
                        });
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        args.push(self.expr()?);
                        while self.eat(&Token::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(SqlExpr::Func {
                        name,
                        args,
                        distinct,
                        star: false,
                    });
                }
                // Column reference, possibly qualified.
                let first = self.ident()?;
                if self.peek() == &Token::Dot {
                    self.next();
                    let second = self.ident()?;
                    return Ok(SqlExpr::Column {
                        qualifier: Some(first),
                        name: second,
                    });
                }
                Ok(SqlExpr::Column {
                    qualifier: None,
                    name: first,
                })
            }
            other => Err(EngineError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap();
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed for {printed:?}: {e}"));
        assert_eq!(stmt, reparsed, "printed: {printed}");
    }

    #[test]
    fn parses_table1_combined_checkout() {
        let stmt = parse_statement("SELECT * INTO T2 FROM T WHERE ARRAY[3] <@ vlist").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.into.as_deref(), Some("T2"));
                assert!(matches!(
                    s.filter,
                    Some(SqlExpr::BinOp {
                        op: BinOp::ContainedBy,
                        ..
                    })
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_table1_split_by_rlist_checkout() {
        let sql = "SELECT * INTO T2 FROM dataTable, \
                   (SELECT unnest(rlist) AS rid_tmp FROM versioningTable WHERE vid = 3) AS tmp \
                   WHERE rid = rid_tmp";
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.from.len(), 2);
                assert!(matches!(s.from[1], FromItem::Subquery { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        roundtrip(sql);
    }

    #[test]
    fn parses_table1_commit_statements() {
        roundtrip("UPDATE T SET vlist = (vlist + 9) WHERE (rid IN (SELECT rid FROM T2))");
        roundtrip("INSERT INTO versioningTable VALUES (9, ARRAY(SELECT rid FROM T2))");
        // The paper's bracket spelling also parses:
        let stmt =
            parse_statement("INSERT INTO versioningTable VALUES (9, ARRAY[SELECT rid FROM T2])")
                .unwrap();
        assert!(matches!(
            stmt,
            Statement::Insert {
                source: InsertSource::Values(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_ddl() {
        roundtrip("CREATE TABLE t (rid INT PRIMARY KEY, vlist INT[], name TEXT NOT NULL)");
        roundtrip(
            "CREATE TABLE p (protein1 TEXT, protein2 TEXT, score DOUBLE, PRIMARY KEY (protein1, protein2))",
        );
        roundtrip("DROP TABLE IF EXISTS t");
        roundtrip("ALTER TABLE t ADD COLUMN coexpression INT");
        roundtrip("ALTER TABLE t ALTER COLUMN score TYPE TEXT");
        roundtrip("CLUSTER t USING (rid)");
        roundtrip("CREATE UNIQUE INDEX idx ON t (rid)");
        roundtrip("CREATE INDEX ON t USING BTREE (vlist)");
        roundtrip("TRUNCATE t");
    }

    #[test]
    fn parses_aggregates_and_grouping() {
        roundtrip(
            "SELECT vid, count(*) AS n FROM v GROUP BY vid HAVING (count(*) > 50) ORDER BY n DESC LIMIT 10",
        );
        roundtrip("SELECT count(DISTINCT rid) FROM t");
        roundtrip("SELECT array_agg(rid) FROM t");
    }

    #[test]
    fn parses_any_and_membership() {
        roundtrip("SELECT * FROM t WHERE (3 = ANY(vlist))");
        roundtrip("SELECT * FROM t WHERE (vid NOT IN (1, 2, 3))");
        roundtrip("SELECT * FROM t WHERE (x IS NOT NULL)");
    }

    #[test]
    fn parses_joins() {
        roundtrip("SELECT * FROM a JOIN b ON (a.id = b.id) WHERE (a.x > 1)");
        let s = parse_statement("SELECT a.*, b.y FROM a INNER JOIN b ON a.id = b.id").unwrap();
        match s {
            Statement::Select(sel) => assert!(matches!(sel.from[0], FromItem::Join { .. })),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let s = parse_statement("SELECT 1 + 2 * 3").unwrap();
        match s {
            Statement::Select(sel) => {
                let item = &sel.items[0];
                if let SelectItem::Expr { expr, .. } = item {
                    assert_eq!(expr.to_string(), "(1 + (2 * 3))");
                } else {
                    panic!();
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_script() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn negative_numbers_fold() {
        let s = parse_statement("SELECT -5, -2.5").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.items[0],
                    SelectItem::Expr {
                        expr: SqlExpr::Literal(Value::Int(-5)),
                        ..
                    }
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("INSERT t VALUES (1)").is_err());
        assert!(parse_statement("UPDATE t WHERE x = 1").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE x NOT 5").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage ,").is_err());
    }

    #[test]
    fn update_with_array_append() {
        // Paper Table 1: UPDATE T SET vlist=vlist+vj WHERE rid in (...)
        let stmt = parse_statement("UPDATE T SET vlist=vlist+9 WHERE rid in (SELECT rid FROM T2)")
            .unwrap();
        match stmt {
            Statement::Update { assignments, .. } => {
                assert_eq!(assignments.len(), 1);
                assert_eq!(assignments[0].0, "vlist");
            }
            _ => panic!(),
        }
    }
}
