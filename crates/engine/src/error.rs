//! Engine error type shared by all layers (storage, expressions, SQL).

use std::fmt;

/// Convenient result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// All failure modes the engine can report.
///
/// The variants deliberately carry human-readable context (table and column
/// names, offending SQL fragments) because the OrpheusDB middleware surfaces
/// these messages directly to end users of the version-control commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Referenced table does not exist in the catalog.
    TableNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// Referenced column cannot be resolved.
    ColumnNotFound(String),
    /// Ambiguous unqualified column reference (present in several tables).
    AmbiguousColumn(String),
    /// A value had the wrong type for the operation.
    TypeMismatch(String),
    /// Primary key or unique index violation.
    UniqueViolation(String),
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// Statement parsed but cannot be planned/executed (unsupported shape).
    Plan(String),
    /// Arity mismatch (INSERT values vs. schema, row widths, ...).
    Arity(String),
    /// Runtime evaluation error (division by zero, bad cast, ...).
    Eval(String),
    /// Referenced index does not exist.
    IndexNotFound(String),
    /// Snapshot persistence failure: I/O error, truncation, checksum
    /// mismatch, or format-version incompatibility.
    Storage(String),
    /// Catch-all for invalid requests against the engine API.
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TableNotFound(t) => write!(f, "table not found: {t}"),
            EngineError::TableExists(t) => write!(f, "table already exists: {t}"),
            EngineError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::UniqueViolation(m) => write!(f, "unique constraint violation: {m}"),
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::Plan(m) => write!(f, "planning error: {m}"),
            EngineError::Arity(m) => write!(f, "arity mismatch: {m}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::IndexNotFound(m) => write!(f, "index not found: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = EngineError::TableNotFound("protein".into());
        assert_eq!(e.to_string(), "table not found: protein");
        let e = EngineError::UniqueViolation("pk (protein1, protein2)".into());
        assert!(e.to_string().contains("pk (protein1, protein2)"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EngineError::Parse("x".into()),
            EngineError::Parse("x".into())
        );
        assert_ne!(
            EngineError::Parse("x".into()),
            EngineError::Plan("x".into())
        );
    }
}
