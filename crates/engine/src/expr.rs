//! Physical (executable) expressions.
//!
//! The SQL layer resolves column names and materializes uncorrelated
//! subqueries, producing these [`Expr`] trees in which column references are
//! positional and `IN (subquery)` has become an in-memory set. Evaluation
//! follows SQL three-valued logic: comparisons involving NULL yield NULL,
//! and a filter keeps a row only when its predicate evaluates to `true`.
//!
//! Array operators mirror the PostgreSQL `intarray` functionality the paper
//! relies on (Section 3.1): containment `<@` / `@>`, append (`vlist + vj`),
//! concatenation (`||`), and `= ANY(array)`.

use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::error::{EngineError, Result};
use crate::types::{Row, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    /// `||` — string or array concatenation.
    Concat,
    /// `<@` — left array contained in right array.
    ContainedBy,
    /// `@>` — left array contains right array.
    Contains,
    /// `x = ANY(arr)` — membership of a scalar in an int array.
    AnyEq,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `array_append(arr, x)`
    ArrayAppend,
    /// `array_cat(a, b)`
    ArrayCat,
    /// `array_length(arr)` / `cardinality(arr)`
    ArrayLength,
    /// `array_contains(arr, x)` → bool
    ArrayContains,
    /// `abs(x)`
    Abs,
    /// `coalesce(a, b, ...)`
    Coalesce,
    /// `least(a, b, ...)` — minimum of its non-null arguments
    Least,
    /// `greatest(a, b, ...)`
    Greatest,
}

impl Func {
    pub fn parse(name: &str) -> Option<Func> {
        match name.to_ascii_lowercase().as_str() {
            "array_append" => Some(Func::ArrayAppend),
            "array_cat" => Some(Func::ArrayCat),
            "array_length" | "cardinality" => Some(Func::ArrayLength),
            "array_contains" => Some(Func::ArrayContains),
            "abs" => Some(Func::Abs),
            "coalesce" => Some(Func::Coalesce),
            "least" => Some(Func::Least),
            "greatest" => Some(Func::Greatest),
            _ => None,
        }
    }
}

/// An executable expression over a row.
#[derive(Debug, Clone)]
pub enum Expr {
    Literal(Value),
    /// Positional reference into the input row.
    Column(usize),
    BinOp {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>),
    Func {
        func: Func,
        args: Vec<Expr>,
    },
    /// `ARRAY[e1, e2, ...]` — elements must evaluate to integers.
    ArrayLit(Vec<Expr>),
    /// `expr IN (...)` with a pre-materialized set (from a literal list or an
    /// uncorrelated subquery).
    InSet {
        expr: Box<Expr>,
        set: Rc<HashSet<Value>>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::BinOp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(i) => row.get(*i).cloned().ok_or_else(|| {
                EngineError::Eval(format!("column index {i} out of bounds ({})", row.len()))
            }),
            Expr::BinOp { op, left, right } => eval_binop(*op, left, right, row),
            Expr::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Bool(!v.as_bool()?)),
            },
            Expr::Neg(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Double(d) => Ok(Value::Double(-d)),
                v => Err(EngineError::TypeMismatch(format!("cannot negate {v}"))),
            },
            Expr::Func { func, args } => eval_func(*func, args, row),
            Expr::ArrayLit(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(e.eval(row)?.as_int()?);
                }
                Ok(Value::IntArray(out))
            }
            Expr::InSet { expr, set, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = set.contains(&v);
                Ok(Value::Bool(found != *negated))
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluate as a filter predicate: true iff the result is `Bool(true)`
    /// (NULL counts as false, per SQL semantics).
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(EngineError::TypeMismatch(format!(
                "predicate evaluated to non-boolean {v}"
            ))),
        }
    }

    /// Rewrite column indices through a mapping (used when pushing
    /// expressions through projections). `map[i]` is the new index of old
    /// column `i`.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Column(i) => Expr::Column(map(*i)),
            Expr::BinOp { op, left, right } => Expr::BinOp {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map))),
            Expr::Neg(e) => Expr::Neg(Box::new(e.remap_columns(map))),
            Expr::Func { func, args } => Expr::Func {
                func: *func,
                args: args.iter().map(|a| a.remap_columns(map)).collect(),
            },
            Expr::ArrayLit(es) => Expr::ArrayLit(es.iter().map(|e| e.remap_columns(map)).collect()),
            Expr::InSet { expr, set, negated } => Expr::InSet {
                expr: Box::new(expr.remap_columns(map)),
                set: Rc::clone(set),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.remap_columns(map)),
                negated: *negated,
            },
        }
    }

    /// Collect the column indices this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(i) => out.push(*i),
            Expr::BinOp { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.referenced_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::ArrayLit(es) => {
                for e in es {
                    e.referenced_columns(out);
                }
            }
            Expr::InSet { expr, .. } | Expr::IsNull { expr, .. } => expr.referenced_columns(out),
        }
    }
}

fn eval_binop(op: BinOp, left: &Expr, right: &Expr, row: &Row) -> Result<Value> {
    // AND/OR need three-valued short-circuit logic.
    if op == BinOp::And || op == BinOp::Or {
        let l = left.eval(row)?;
        let lb = match &l {
            Value::Null => None,
            v => Some(v.as_bool()?),
        };
        match (op, lb) {
            (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = right.eval(row)?;
        let rb = match &r {
            Value::Null => None,
            v => Some(v.as_bool()?),
        };
        return Ok(match (op, lb, rb) {
            (BinOp::And, Some(a), Some(b)) => Value::Bool(a && b),
            (BinOp::And, None, Some(false)) | (BinOp::And, Some(false), None) => Value::Bool(false),
            (BinOp::Or, Some(a), Some(b)) => Value::Bool(a || b),
            (BinOp::Or, None, Some(true)) | (BinOp::Or, Some(true), None) => Value::Bool(true),
            _ => Value::Null,
        });
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;

    match op {
        BinOp::Eq => Ok(bool3(l.sql_eq(&r))),
        BinOp::NotEq => Ok(bool3(l.sql_eq(&r).map(|b| !b))),
        BinOp::Lt => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_lt()))),
        BinOp::LtEq => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_le()))),
        BinOp::Gt => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_gt()))),
        BinOp::GtEq => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_ge()))),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => eval_arith(op, l, r),
        BinOp::Concat => eval_concat(l, r),
        BinOp::ContainedBy => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let a = l.as_int_array()?;
            let b = r.as_int_array()?;
            Ok(Value::Bool(contained_by(a, b)))
        }
        BinOp::Contains => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let a = l.as_int_array()?;
            let b = r.as_int_array()?;
            Ok(Value::Bool(contained_by(b, a)))
        }
        BinOp::AnyEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let x = l.as_int()?;
            let arr = r.as_int_array()?;
            Ok(Value::Bool(arr.contains(&x)))
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn bool3(b: Option<bool>) -> Value {
    match b {
        Some(v) => Value::Bool(v),
        None => Value::Null,
    }
}

fn eval_arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Array append: `vlist + vj` (paper's commit statement for the
    // combined-table and split-by-vlist models).
    if op == BinOp::Add {
        if let (Value::IntArray(a), Value::Int(x)) = (&l, &r) {
            let mut out = a.clone();
            out.push(*x);
            return Ok(Value::IntArray(out));
        }
        if let (Value::IntArray(a), Value::IntArray(b)) = (&l, &r) {
            let mut out = a.clone();
            out.extend_from_slice(b);
            return Ok(Value::IntArray(out));
        }
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            Ok(Value::Int(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(EngineError::Eval("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(EngineError::Eval("modulo by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!(),
            }))
        }
        _ => {
            let a = l.as_double()?;
            let b = r.as_double()?;
            Ok(Value::Double(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(EngineError::Eval("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => a % b,
                _ => unreachable!(),
            }))
        }
    }
}

fn eval_concat(l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (&l, &r) {
        (Value::IntArray(a), Value::IntArray(b)) => {
            let mut out = a.clone();
            out.extend_from_slice(b);
            Ok(Value::IntArray(out))
        }
        (Value::IntArray(a), Value::Int(x)) => {
            let mut out = a.clone();
            out.push(*x);
            Ok(Value::IntArray(out))
        }
        _ => Ok(Value::Text(format!("{l}{r}"))),
    }
}

/// True when every element of `a` appears in `b` (multiset semantics are
/// not required: PostgreSQL `<@` treats arrays as sets).
fn contained_by(a: &[i64], b: &[i64]) -> bool {
    if a.len() <= 8 {
        a.iter().all(|x| b.contains(x))
    } else {
        let set: HashSet<&i64> = b.iter().collect();
        a.iter().all(|x| set.contains(x))
    }
}

fn eval_func(func: Func, args: &[Expr], row: &Row) -> Result<Value> {
    let need = |n: usize| -> Result<()> {
        if args.len() != n {
            Err(EngineError::Arity(format!(
                "function {func:?} expects {n} args, got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    match func {
        Func::ArrayAppend => {
            need(2)?;
            let arr = args[0].eval(row)?;
            let x = args[1].eval(row)?;
            if arr.is_null() || x.is_null() {
                return Ok(Value::Null);
            }
            let mut out = arr.as_int_array()?.to_vec();
            out.push(x.as_int()?);
            Ok(Value::IntArray(out))
        }
        Func::ArrayCat => {
            need(2)?;
            let a = args[0].eval(row)?;
            let b = args[1].eval(row)?;
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            let mut out = a.as_int_array()?.to_vec();
            out.extend_from_slice(b.as_int_array()?);
            Ok(Value::IntArray(out))
        }
        Func::ArrayLength => {
            need(1)?;
            let a = args[0].eval(row)?;
            if a.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Int(a.as_int_array()?.len() as i64))
        }
        Func::ArrayContains => {
            need(2)?;
            let a = args[0].eval(row)?;
            let x = args[1].eval(row)?;
            if a.is_null() || x.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(a.as_int_array()?.contains(&x.as_int()?)))
        }
        Func::Abs => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Double(d) => Ok(Value::Double(d.abs())),
                v => Err(EngineError::TypeMismatch(format!("abs({v})"))),
            }
        }
        Func::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        Func::Least | Func::Greatest => {
            let mut best: Option<Value> = None;
            for a in args {
                let v = a.eval(row)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match func {
                            Func::Least => v.total_cmp(&b).is_lt(),
                            _ => v.total_cmp(&b).is_gt(),
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
            BinOp::ContainedBy => "<@",
            BinOp::Contains => "@>",
            BinOp::AnyEq => "= ANY",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(10),
            Value::Text("hi".into()),
            Value::IntArray(vec![1, 2, 3]),
            Value::Null,
        ]
    }

    #[test]
    fn arithmetic_and_numeric_widening() {
        let r = row();
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(5));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(15));
        let e = Expr::bin(BinOp::Div, Expr::lit(7.0), Expr::lit(2));
        assert_eq!(e.eval(&r).unwrap(), Value::Double(3.5));
        let e = Expr::bin(BinOp::Div, Expr::lit(1), Expr::lit(0));
        assert!(e.eval(&r).is_err());
    }

    #[test]
    fn array_append_with_plus_matches_paper_commit() {
        // `vlist = vlist + vj` from Table 1.
        let r = row();
        let e = Expr::bin(BinOp::Add, Expr::col(2), Expr::lit(4));
        assert_eq!(e.eval(&r).unwrap(), Value::IntArray(vec![1, 2, 3, 4]));
    }

    #[test]
    fn containment_operator() {
        // `ARRAY[vi] <@ vlist` from Table 1.
        let r = row();
        let e = Expr::bin(
            BinOp::ContainedBy,
            Expr::ArrayLit(vec![Expr::lit(2)]),
            Expr::col(2),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = Expr::bin(
            BinOp::ContainedBy,
            Expr::ArrayLit(vec![Expr::lit(9)]),
            Expr::col(2),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        let e = Expr::bin(
            BinOp::Contains,
            Expr::col(2),
            Expr::ArrayLit(vec![Expr::lit(3)]),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn any_eq_membership() {
        let r = row();
        let e = Expr::bin(BinOp::AnyEq, Expr::lit(2), Expr::col(2));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = Expr::bin(BinOp::AnyEq, Expr::lit(7), Expr::col(2));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn three_valued_logic() {
        let r = row();
        // NULL = 10 → NULL; predicate treats as false.
        let e = Expr::bin(BinOp::Eq, Expr::col(3), Expr::col(0));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&r).unwrap());
        // FALSE AND NULL → FALSE
        let e = Expr::bin(BinOp::And, Expr::lit(false), Expr::Literal(Value::Null));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        // TRUE OR NULL → TRUE
        let e = Expr::bin(BinOp::Or, Expr::lit(true), Expr::Literal(Value::Null));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // TRUE AND NULL → NULL
        let e = Expr::bin(BinOp::And, Expr::lit(true), Expr::Literal(Value::Null));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_and_in_set() {
        let r = row();
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(3)),
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let set: HashSet<Value> = [Value::Int(10), Value::Int(20)].into_iter().collect();
        let e = Expr::InSet {
            expr: Box::new(Expr::col(0)),
            set: Rc::new(set),
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        let r = row();
        let e = Expr::Func {
            func: Func::ArrayLength,
            args: vec![Expr::col(2)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Int(3));
        let e = Expr::Func {
            func: Func::Coalesce,
            args: vec![Expr::col(3), Expr::lit(42)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Int(42));
        let e = Expr::Func {
            func: Func::Greatest,
            args: vec![Expr::lit(1), Expr::lit(9), Expr::lit(4)],
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Int(9));
    }

    #[test]
    fn text_concat() {
        let r = row();
        let e = Expr::bin(BinOp::Concat, Expr::col(1), Expr::lit("!"));
        assert_eq!(e.eval(&r).unwrap(), Value::Text("hi!".into()));
    }

    #[test]
    fn remap_and_referenced_columns() {
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::col(2));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec![0, 2]);
        let remapped = e.remap_columns(&|i| i + 10);
        let mut cols = Vec::new();
        remapped.referenced_columns(&mut cols);
        assert_eq!(cols, vec![10, 12]);
    }
}
