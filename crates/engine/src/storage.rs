//! Durable snapshots: serialize a whole [`Database`] to a single file and
//! load it back, including schemas, rows, index definitions, physical
//! clustering, and session settings.
//!
//! The paper's backend (PostgreSQL) is durable; this module gives the
//! from-scratch substrate the same property so the `orpheus` command-line
//! client can operate across process invocations. The format is a
//! self-contained binary snapshot:
//!
//! ```text
//! magic      b"ORPH"            4 bytes
//! version    u32 LE             format version (currently 1)
//! length     u64 LE             payload length in bytes
//! payload    [u8]               settings + catalog + rows (see below)
//! checksum   u32 LE             CRC-32 (IEEE) of the payload
//! ```
//!
//! Integrity failures (truncation, bit flips, wrong magic, or a snapshot
//! written by a future format version) are reported as
//! [`EngineError::Storage`] rather than yielding a half-loaded database.
//! Saves are atomic: the snapshot is written to a sibling temporary file
//! and renamed over the target, so a crash mid-save never corrupts an
//! existing snapshot.
//!
//! Secondary indexes are persisted as *definitions* and rebuilt on load;
//! row data is the source of truth. Runtime statistics
//! ([`crate::stats::ExecStats`]) are deliberately not persisted.

use std::io::Write as _;
use std::path::Path;

use crate::db::Database;
use crate::error::{EngineError, Result};
use crate::exec::join::JoinStrategy;
use crate::index::IndexKind;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::types::{DataType, Row, Value};

/// Snapshot file magic bytes.
pub const MAGIC: &[u8; 4] = b"ORPH";
/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE) checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Byte-level primitives, shared with the middleware's snapshot writer.
// ---------------------------------------------------------------------------

/// Little-endian binary writer over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consume the writer, returning the bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (NaN-safe).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian binary reader over a byte slice. All reads are
/// bounds-checked and report [`EngineError::Storage`] on underrun, so a
/// truncated or corrupted snapshot fails cleanly instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice for reading.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(EngineError::Storage(format!(
                "snapshot truncated: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string. The declared length is checked
    /// against the remaining bytes before allocating, so corrupt lengths
    /// cannot trigger huge allocations.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(EngineError::Storage(format!(
                "snapshot corrupt: string length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EngineError::Storage("snapshot corrupt: invalid UTF-8".into()))
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

// ---------------------------------------------------------------------------
// Value / schema encoding.
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;
const TAG_INT_ARRAY: u8 = 5;

/// Encode one value into the writer.
pub fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(TAG_NULL),
        Value::Int(i) => {
            w.put_u8(TAG_INT);
            w.put_i64(*i);
        }
        Value::Double(d) => {
            w.put_u8(TAG_DOUBLE);
            w.put_f64(*d);
        }
        Value::Text(s) => {
            w.put_u8(TAG_TEXT);
            w.put_str(s);
        }
        Value::Bool(b) => {
            w.put_u8(TAG_BOOL);
            w.put_u8(*b as u8);
        }
        Value::IntArray(a) => {
            w.put_u8(TAG_INT_ARRAY);
            w.put_u32(a.len() as u32);
            for x in a {
                w.put_i64(*x);
            }
        }
    }
}

/// Decode one value from the reader.
pub fn get_value(r: &mut ByteReader<'_>) -> Result<Value> {
    match r.get_u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.get_i64()?)),
        TAG_DOUBLE => Ok(Value::Double(r.get_f64()?)),
        TAG_TEXT => Ok(Value::Text(r.get_str()?)),
        TAG_BOOL => Ok(Value::Bool(r.get_u8()? != 0)),
        TAG_INT_ARRAY => {
            let len = r.get_u32()? as usize;
            if len.saturating_mul(8) > r.remaining() {
                return Err(EngineError::Storage(format!(
                    "snapshot corrupt: array length {len} exceeds remaining bytes"
                )));
            }
            let mut a = Vec::with_capacity(len);
            for _ in 0..len {
                a.push(r.get_i64()?);
            }
            Ok(Value::IntArray(a))
        }
        tag => Err(EngineError::Storage(format!(
            "snapshot corrupt: unknown value tag {tag}"
        ))),
    }
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::IntArray => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Double),
        2 => Ok(DataType::Text),
        3 => Ok(DataType::Bool),
        4 => Ok(DataType::IntArray),
        t => Err(EngineError::Storage(format!(
            "snapshot corrupt: unknown data type tag {t}"
        ))),
    }
}

fn put_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u32(schema.columns.len() as u32);
    for c in &schema.columns {
        w.put_str(&c.name);
        w.put_u8(dtype_tag(c.dtype));
        w.put_u8(c.nullable as u8);
    }
    w.put_u32(schema.primary_key.len() as u32);
    for &i in &schema.primary_key {
        w.put_u32(i as u32);
    }
}

fn get_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let ncols = r.get_u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(r.remaining()));
    for _ in 0..ncols {
        let name = r.get_str()?;
        let dtype = dtype_from_tag(r.get_u8()?)?;
        let nullable = r.get_u8()? != 0;
        let mut col = Column::new(name, dtype);
        if !nullable {
            col = col.not_null();
        }
        columns.push(col);
    }
    let npk = r.get_u32()? as usize;
    let mut primary_key = Vec::with_capacity(npk.min(r.remaining()));
    for _ in 0..npk {
        let i = r.get_u32()? as usize;
        if i >= columns.len() {
            return Err(EngineError::Storage(format!(
                "snapshot corrupt: primary-key column index {i} out of range"
            )));
        }
        primary_key.push(i);
    }
    let mut s = Schema::new(columns);
    s.primary_key = primary_key;
    Ok(s)
}

fn join_strategy_tag(j: JoinStrategy) -> u8 {
    match j {
        JoinStrategy::Auto => 0,
        JoinStrategy::Hash => 1,
        JoinStrategy::Merge => 2,
        JoinStrategy::IndexNestedLoop => 3,
    }
}

fn join_strategy_from_tag(tag: u8) -> Result<JoinStrategy> {
    match tag {
        0 => Ok(JoinStrategy::Auto),
        1 => Ok(JoinStrategy::Hash),
        2 => Ok(JoinStrategy::Merge),
        3 => Ok(JoinStrategy::IndexNestedLoop),
        t => Err(EngineError::Storage(format!(
            "snapshot corrupt: unknown join strategy tag {t}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Table / database encoding.
// ---------------------------------------------------------------------------

fn put_table(w: &mut ByteWriter, table: &Table) {
    w.put_str(&table.name);
    put_schema(w, &table.schema);
    // Index definitions (data is rebuilt on load).
    w.put_u32(table.indexes().len() as u32);
    for idx in table.indexes() {
        w.put_str(&idx.name);
        w.put_u32(idx.columns.len() as u32);
        for &c in &idx.columns {
            w.put_u32(c as u32);
        }
        w.put_u8(idx.unique as u8);
        w.put_u8(matches!(idx.kind(), IndexKind::BTree) as u8);
    }
    // Physical clustering, if any.
    match table.clustered_on() {
        Some(cols) => {
            w.put_u8(1);
            w.put_u32(cols.len() as u32);
            for &c in cols {
                w.put_u32(c as u32);
            }
        }
        None => w.put_u8(0),
    }
    // Rows.
    w.put_u64(table.len() as u64);
    for row in table.rows() {
        for v in row {
            put_value(w, v);
        }
    }
}

struct IndexDef {
    name: String,
    columns: Vec<usize>,
    unique: bool,
    btree: bool,
}

fn get_table(r: &mut ByteReader<'_>) -> Result<Table> {
    let name = r.get_str()?;
    let schema = get_schema(r)?;
    let arity = schema.arity();

    let nidx = r.get_u32()? as usize;
    let mut index_defs = Vec::with_capacity(nidx.min(r.remaining()));
    for _ in 0..nidx {
        let idx_name = r.get_str()?;
        let ncols = r.get_u32()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(r.remaining()));
        for _ in 0..ncols {
            let c = r.get_u32()? as usize;
            if c >= arity {
                return Err(EngineError::Storage(format!(
                    "snapshot corrupt: index column {c} out of range for {name}"
                )));
            }
            columns.push(c);
        }
        let unique = r.get_u8()? != 0;
        let btree = r.get_u8()? != 0;
        index_defs.push(IndexDef {
            name: idx_name,
            columns,
            unique,
            btree,
        });
    }

    let clustered = if r.get_u8()? != 0 {
        let n = r.get_u32()? as usize;
        let mut cols = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let c = r.get_u32()? as usize;
            if c >= arity {
                return Err(EngineError::Storage(format!(
                    "snapshot corrupt: clustering column {c} out of range for {name}"
                )));
            }
            cols.push(c);
        }
        Some(cols)
    } else {
        None
    };

    let mut table = Table::new(name, schema);
    let nrows = r.get_u64()?;
    for _ in 0..nrows {
        let mut row: Row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(get_value(r)?);
        }
        table.insert(row)?;
    }

    // Rebuild secondary indexes (the PK index is created by Table::new).
    for def in index_defs {
        if table.index_named(&def.name).is_some() {
            continue;
        }
        let col_names: Vec<String> = def
            .columns
            .iter()
            .map(|&c| table.schema.column(c).name.clone())
            .collect();
        let refs: Vec<&str> = col_names.iter().map(|s| s.as_str()).collect();
        let kind = if def.btree {
            IndexKind::BTree
        } else {
            IndexKind::Hash
        };
        table.create_index(def.name, &refs, def.unique, kind)?;
    }

    // Restore physical clustering. The saved heap is already in clustered
    // order and the re-sort is stable, so row order is preserved exactly.
    if let Some(cols) = clustered {
        let col_names: Vec<String> = cols
            .iter()
            .map(|&c| table.schema.column(c).name.clone())
            .collect();
        let refs: Vec<&str> = col_names.iter().map(|s| s.as_str()).collect();
        table.cluster_by(&refs)?;
    }
    Ok(table)
}

/// Serialize a database into the snapshot payload (no header/checksum).
fn serialize_payload(db: &Database) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(join_strategy_tag(db.settings.join_strategy));
    let names = db.table_names();
    w.put_u32(names.len() as u32);
    for name in &names {
        put_table(&mut w, db.table(name).expect("catalog listed the table"));
    }
    w.into_bytes()
}

fn deserialize_payload(payload: &[u8]) -> Result<Database> {
    let mut r = ByteReader::new(payload);
    let mut db = Database::new();
    db.settings.join_strategy = join_strategy_from_tag(r.get_u8()?)?;
    let ntables = r.get_u32()? as usize;
    for _ in 0..ntables {
        db.add_table(get_table(&mut r)?)?;
    }
    if !r.is_exhausted() {
        return Err(EngineError::Storage(format!(
            "snapshot corrupt: {} trailing bytes after catalog",
            r.remaining()
        )));
    }
    Ok(db)
}

/// Serialize a database into a complete snapshot (header + payload + CRC).
pub fn serialize_database(db: &Database) -> Vec<u8> {
    let payload = serialize_payload(db);
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse a complete snapshot produced by [`serialize_database`].
pub fn deserialize_database(bytes: &[u8]) -> Result<Database> {
    let payload = verify_envelope(bytes)?;
    deserialize_payload(payload)
}

/// Validate the snapshot envelope (magic, version, length, checksum) and
/// return the payload slice. Exposed so higher layers embedding their own
/// sections in the same envelope can reuse the integrity checks.
pub fn verify_envelope(bytes: &[u8]) -> Result<&[u8]> {
    if bytes.len() < 16 {
        return Err(EngineError::Storage(
            "snapshot truncated: shorter than header".into(),
        ));
    }
    if &bytes[0..4] != MAGIC {
        return Err(EngineError::Storage(
            "not an OrpheusDB snapshot (bad magic)".into(),
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version > FORMAT_VERSION {
        return Err(EngineError::Storage(format!(
            "snapshot format version {version} is newer than supported {FORMAT_VERSION}"
        )));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let expected_total = 16usize.saturating_add(len).saturating_add(4);
    if bytes.len() != expected_total {
        return Err(EngineError::Storage(format!(
            "snapshot truncated: header declares {len} payload bytes, file holds {}",
            bytes.len().saturating_sub(20)
        )));
    }
    let payload = &bytes[16..16 + len];
    let stored_crc = u32::from_le_bytes(bytes[16 + len..].try_into().unwrap());
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(EngineError::Storage(format!(
            "snapshot checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    Ok(payload)
}

/// Wrap an already-serialized payload in the snapshot envelope.
pub fn wrap_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Save a database snapshot to `path` atomically (write temp + rename).
pub fn save_database(db: &Database, path: &Path) -> Result<()> {
    write_atomically(path, &serialize_database(db))
}

/// Load a database snapshot from `path`.
pub fn load_database(path: &Path) -> Result<Database> {
    let bytes = std::fs::read(path)
        .map_err(|e| EngineError::Storage(format!("cannot read {}: {e}", path.display())))?;
    deserialize_database(&bytes)
}

/// Write `bytes` to `path` via a sibling temp file and atomic rename,
/// then fsync the parent directory so the rename itself is durable.
///
/// The directory fsync is the step naive write-tmp-and-rename schemes
/// skip: without it a crash shortly after the rename can leave the
/// directory entry pointing at the *old* file — or at nothing — even
/// though the data blocks of the new file hit disk. Snapshot checkpoints
/// (and the WAL's `CURRENT` pointer) rely on rename being a durable
/// commit point, so the entry must be forced out too.
pub fn write_atomically(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = match dir {
        Some(d) => d.join(format!(
            ".{}.tmp.{}",
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("snapshot"),
            std::process::id()
        )),
        None => Path::new(&format!(".orpheus.tmp.{}", std::process::id())).to_path_buf(),
    };
    let io_err = |e: std::io::Error| EngineError::Storage(format!("cannot write snapshot: {e}"));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err(e));
    }
    fsync_dir(dir.unwrap_or_else(|| Path::new(".")))
}

/// Force a directory's entries to stable storage (fsync on the directory
/// handle). Needed after creating, renaming, or removing files whose
/// *existence* is load-bearing for crash recovery. Platforms whose
/// filesystems cannot sync directory handles report the open/sync error.
pub fn fsync_dir(dir: &Path) -> Result<()> {
    let d = std::fs::File::open(dir).map_err(|e| {
        EngineError::Storage(format!("cannot open directory {}: {e}", dir.display()))
    })?;
    d.sync_all()
        .map_err(|e| EngineError::Storage(format!("cannot fsync directory {}: {e}", dir.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE protein (p1 TEXT, p2 TEXT, score INT, weight DOUBLE, \
             flag BOOL, vlist INT[], PRIMARY KEY (p1, p2))",
        )
        .unwrap();
        db.execute(
            "INSERT INTO protein VALUES \
             ('a', 'b', 1, 1.5, true, ARRAY[1,2,3]), \
             ('a', 'c', 2, NULL, false, ARRAY[]), \
             ('δ', 'é', -7, 0.0, true, ARRAY[9])",
        )
        .unwrap();
        db.execute("CREATE TABLE empty_t (x INT)").unwrap();
        db
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn byte_writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(u32::MAX);
        w.put_u64(u64::MAX - 1);
        w.put_i64(i64::MIN);
        w.put_f64(f64::NAN);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), u32::MAX);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), i64::MIN);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_exhausted());
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn value_roundtrip_all_types() {
        let values = vec![
            Value::Null,
            Value::Int(i64::MIN),
            Value::Double(f64::INFINITY),
            Value::Double(-0.0),
            Value::Text(String::new()),
            Value::Text("πρωτεΐνη".into()),
            Value::Bool(true),
            Value::IntArray(vec![]),
            Value::IntArray(vec![i64::MIN, 0, i64::MAX]),
        ];
        let mut w = ByteWriter::new();
        for v in &values {
            put_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            let back = get_value(&mut r).unwrap();
            assert_eq!(back.to_string(), v.to_string());
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn database_roundtrip_preserves_catalog_rows_and_settings() {
        let mut db = sample_db();
        db.settings.join_strategy = JoinStrategy::Merge;
        let bytes = serialize_database(&db);
        let back = deserialize_database(&bytes).unwrap();

        assert_eq!(back.settings.join_strategy, JoinStrategy::Merge);
        assert_eq!(back.table_names(), db.table_names());
        let orig = db.table("protein").unwrap();
        let loaded = back.table("protein").unwrap();
        assert_eq!(loaded.schema, orig.schema);
        assert_eq!(loaded.rows(), orig.rows());
        assert_eq!(loaded.heap_bytes(), orig.heap_bytes());
        assert_eq!(loaded.indexes().len(), orig.indexes().len());
        assert_eq!(back.table("empty_t").unwrap().len(), 0);
    }

    #[test]
    fn roundtrip_rebuilds_usable_pk_index() {
        let db = sample_db();
        let mut back = deserialize_database(&serialize_database(&db)).unwrap();
        // The unique index must reject duplicates after reload.
        let err = back
            .execute("INSERT INTO protein VALUES ('a','b',9,9.0,false,ARRAY[])")
            .unwrap_err();
        assert!(matches!(err, EngineError::UniqueViolation(_)));
        // And serve lookups.
        let res = back
            .query("SELECT score FROM protein WHERE p1 = 'a' AND p2 = 'c'")
            .unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(2)));
    }

    #[test]
    fn roundtrip_preserves_secondary_indexes_and_clustering() {
        let mut db = Database::new();
        db.execute("CREATE TABLE d (rid INT, v TEXT, PRIMARY KEY (rid))")
            .unwrap();
        for i in [5i64, 3, 1, 4, 2] {
            db.execute(&format!("INSERT INTO d VALUES ({i}, 'x{i}')"))
                .unwrap();
        }
        db.table_mut("d")
            .unwrap()
            .create_index("d_v", &["v"], false, IndexKind::BTree)
            .unwrap();
        db.table_mut("d").unwrap().cluster_by(&["rid"]).unwrap();

        let back = deserialize_database(&serialize_database(&db)).unwrap();
        let t = back.table("d").unwrap();
        assert!(t.is_clustered_on(&[0]));
        let keys: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        let idx = t.index_named("d_v").unwrap();
        assert_eq!(idx.kind(), IndexKind::BTree);
        assert_eq!(idx.lookup(&vec!["x3".into()]).len(), 1);
    }

    #[test]
    fn empty_database_roundtrip() {
        let db = Database::new();
        let back = deserialize_database(&serialize_database(&db)).unwrap();
        assert!(back.table_names().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = serialize_database(&sample_db());
        bytes[0] = b'X';
        let err = deserialize_database(&bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn rejects_future_format_version() {
        let mut bytes = serialize_database(&sample_db());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = deserialize_database(&bytes).unwrap_err();
        assert!(err.to_string().contains("newer than supported"), "{err}");
    }

    #[test]
    fn rejects_truncation_at_every_prefix_length() {
        let bytes = serialize_database(&sample_db());
        // Every strict prefix must fail, never panic or half-load.
        for cut in [0, 3, 8, 15, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                deserialize_database(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly loaded"
            );
        }
    }

    #[test]
    fn rejects_single_bit_flips_in_payload() {
        let bytes = serialize_database(&sample_db());
        // Flip one bit in several payload positions; CRC must catch each.
        for pos in [16, 20, 40, bytes.len() - 6] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x01;
            let err = deserialize_database(&corrupted).unwrap_err();
            assert!(
                matches!(err, EngineError::Storage(_)),
                "flip at {pos}: {err}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = serialize_database(&sample_db());
        bytes.extend_from_slice(b"junk");
        assert!(deserialize_database(&bytes).is_err());
    }

    #[test]
    fn save_and_load_via_file_atomically() {
        let dir = std::env::temp_dir().join(format!("orpheus-storage-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.orpheus");

        let db = sample_db();
        save_database(&db, &path).unwrap();
        let back = load_database(&path).unwrap();
        assert_eq!(back.table_names(), db.table_names());

        // Overwriting an existing snapshot leaves no temp files behind.
        save_database(&back, &path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_is_a_storage_error() {
        let err = load_database(Path::new("/nonexistent/orpheus.snapshot")).unwrap_err();
        assert!(matches!(err, EngineError::Storage(_)));
    }

    #[test]
    fn envelope_helpers_roundtrip_custom_payloads() {
        let payload = b"middleware section".to_vec();
        let enveloped = wrap_envelope(&payload);
        assert_eq!(verify_envelope(&enveloped).unwrap(), payload.as_slice());
        let mut bad = enveloped.clone();
        let n = bad.len();
        bad[n - 7] ^= 0xFF;
        assert!(verify_envelope(&bad).is_err());
    }
}
