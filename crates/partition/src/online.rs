//! Online maintenance of partitionings as versions stream in
//! (Section 4.3).
//!
//! On every commit of a new version `vi` with (tree) parent `vj`, the
//! maintainer either appends `vi` to `vj`'s partition or opens a fresh
//! partition, reusing LyreSplit's intuition: a *weak* edge
//! (`w(vi, vj) ≤ δ*·|R|`) indicates little overlap, so a new partition is
//! worthwhile — but only while the storage budget allows (`S < γ`).
//!
//! The online checkout cost drifts away from the best achievable cost
//! `C*avg` (recomputed by running LyreSplit on the full, current version
//! tree); when `Cavg > µ·C*avg`, migration is triggered (Figures 14/15).

use crate::lyresplit::{lyresplit_for_budget, EdgePick, LyreSplitResult};
use crate::partitioning::Partitioning;
use crate::version_graph::VersionTree;
use crate::VersionId;

/// Configuration of the online maintainer.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Storage threshold as a multiple of the current |R| (the paper uses
    /// γ = 1.5|R| and γ = 2|R|).
    pub gamma_factor: f64,
    /// Tolerance factor µ: migration triggers when Cavg > µ·C*avg.
    pub mu: f64,
    /// Edge-pick strategy handed to LyreSplit.
    pub pick: EdgePick,
    /// Recompute `C*avg` only every this many commits (1 = every commit,
    /// exactly as the paper describes; larger values amortize the check for
    /// very long streams).
    pub check_every: usize,
}

impl Default for OnlineConfig {
    fn default() -> OnlineConfig {
        OnlineConfig {
            gamma_factor: 2.0,
            mu: 1.5,
            pick: EdgePick::BalancedVersions,
            check_every: 1,
        }
    }
}

/// Outcome of one online commit.
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    pub version: VersionId,
    /// Partition the version was placed in.
    pub partition: usize,
    /// True if a fresh partition was opened for this version.
    pub opened_partition: bool,
    /// Current (online) checkout cost after placement.
    pub cavg: f64,
    /// Best checkout cost found by LyreSplit at the last check.
    pub cavg_star: f64,
    /// When `Cavg > µ·C*avg`, the fresh LyreSplit partitioning to migrate
    /// to. The caller performs the migration (see [`crate::migration`]) and
    /// then calls [`OnlineMaintainer::apply_migration`].
    pub migration_target: Option<LyreSplitResult>,
}

/// Streaming partition maintainer.
#[derive(Debug, Clone)]
pub struct OnlineMaintainer {
    config: OnlineConfig,
    tree: VersionTree,
    assignment: Vec<usize>,
    num_partitions: usize,
    /// δ* from the last LyreSplit invocation.
    delta_star: f64,
    /// Cached C*avg from the last check.
    cavg_star: f64,
    commits_since_check: usize,
    migrations: usize,
}

impl OnlineMaintainer {
    /// Start with a single root version of `records` records.
    pub fn new(config: OnlineConfig, root_records: u64) -> OnlineMaintainer {
        let tree = VersionTree {
            parent: vec![None],
            weight_to_parent: vec![0],
            records: vec![root_records],
        };
        OnlineMaintainer {
            config,
            tree,
            assignment: vec![0],
            num_partitions: 1,
            delta_star: 0.5,
            cavg_star: root_records as f64,
            commits_since_check: 0,
            migrations: 0,
        }
    }

    pub fn tree(&self) -> &VersionTree {
        &self.tree
    }

    pub fn partitioning(&self) -> Partitioning {
        Partitioning::from_assignment(self.assignment.clone())
    }

    pub fn migrations_triggered(&self) -> usize {
        self.migrations
    }

    pub fn delta_star(&self) -> f64 {
        self.delta_star
    }

    /// Current (online) checkout cost.
    pub fn cavg(&self) -> f64 {
        self.partitioning().checkout_cost_tree(&self.tree)
    }

    /// Current storage cost.
    pub fn storage(&self) -> u64 {
        self.partitioning().storage_cost_tree(&self.tree)
    }

    /// Commit a new version derived from `parent` sharing `weight` records,
    /// containing `records` records in total.
    pub fn commit(&mut self, parent: VersionId, weight: u64, records: u64) -> CommitOutcome {
        assert!(parent < self.tree.num_versions(), "unknown parent version");
        self.tree.parent.push(Some(parent));
        self.tree.weight_to_parent.push(weight);
        self.tree.records.push(records);
        let v = self.tree.num_versions() - 1;

        // Placement decision (Section 4.3): weak edge AND slack in the
        // budget ⇒ open a new partition; otherwise join the parent.
        let total_r = self.tree.total_records();
        let gamma = (self.config.gamma_factor * total_r as f64) as u64;
        let weak_edge = (weight as f64) <= self.delta_star * total_r as f64;
        let current_s = {
            // Storage with v provisionally in the parent's partition.
            self.assignment.push(self.assignment[parent]);
            let s = self.storage();
            self.assignment.pop();
            s
        };
        let (partition, opened) = if weak_edge && current_s < gamma {
            self.num_partitions += 1;
            (self.num_partitions - 1, true)
        } else {
            (self.assignment[parent], false)
        };
        self.assignment.push(partition);

        // Periodically recompute the best achievable cost.
        self.commits_since_check += 1;
        if self.commits_since_check >= self.config.check_every {
            self.commits_since_check = 0;
            let (best, _) = lyresplit_for_budget(&self.tree, gamma, self.config.pick);
            self.delta_star = best.delta;
            self.cavg_star = best.partitioning.checkout_cost_tree(&self.tree);
            // Keep the candidate around in case migration triggers.
            let cavg = self.cavg();
            if cavg > self.config.mu * self.cavg_star {
                self.migrations += 1;
                return CommitOutcome {
                    version: v,
                    partition,
                    opened_partition: opened,
                    cavg,
                    cavg_star: self.cavg_star,
                    migration_target: Some(best),
                };
            }
        }

        CommitOutcome {
            version: v,
            partition,
            opened_partition: opened,
            cavg: self.cavg(),
            cavg_star: self.cavg_star,
            migration_target: None,
        }
    }

    /// Adopt a migration target produced by [`OnlineMaintainer::commit`].
    pub fn apply_migration(&mut self, target: &LyreSplitResult) {
        assert_eq!(
            target.partitioning.num_versions(),
            self.tree.num_versions(),
            "migration target must cover all versions"
        );
        self.assignment = target.partitioning.assignment.clone();
        self.num_partitions = target.partitioning.num_partitions;
        self.delta_star = target.delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stream a chain where each version shares most records with its
    /// parent: everything should stay in few partitions.
    #[test]
    fn strong_edges_stay_in_parent_partition() {
        let mut m = OnlineMaintainer::new(
            OnlineConfig {
                gamma_factor: 1.2,
                ..OnlineConfig::default()
            },
            1000,
        );
        for i in 0..10 {
            let out = m.commit(i, 990, 1000);
            assert!(!out.opened_partition || out.partition != 0 || i == 0);
        }
        assert!(m.partitioning().num_partitions <= 3);
    }

    #[test]
    fn weak_edges_open_partitions_within_budget() {
        let mut m = OnlineMaintainer::new(
            OnlineConfig {
                gamma_factor: 10.0, // plenty of slack
                mu: 100.0,          // no migrations in this test
                ..OnlineConfig::default()
            },
            1000,
        );
        // Each new version shares almost nothing with its parent.
        let mut opened = 0;
        for i in 0..5 {
            let out = m.commit(i, 1, 1000);
            if out.opened_partition {
                opened += 1;
            }
        }
        assert!(opened >= 4, "weak edges should open partitions ({opened})");
    }

    #[test]
    fn budget_exhaustion_prevents_new_partitions() {
        let mut m = OnlineMaintainer::new(
            OnlineConfig {
                gamma_factor: 1.0, // γ = |R|: no duplication allowed
                mu: 100.0,
                ..OnlineConfig::default()
            },
            100,
        );
        for i in 0..5 {
            let out = m.commit(i, 1, 100);
            assert!(
                !out.opened_partition,
                "γ=|R| leaves no slack for partition splits"
            );
        }
        assert_eq!(m.partitioning().num_partitions, 1);
    }

    #[test]
    fn migration_triggers_when_cost_drifts() {
        let mut m = OnlineMaintainer::new(
            OnlineConfig {
                gamma_factor: 1.0, // forces every version into one partition
                mu: 1.2,
                ..OnlineConfig::default()
            },
            500,
        );
        // Stream weak edges: Cavg (single partition) diverges from C*avg.
        // With γ=|R| LyreSplit also cannot split, so instead exhaust the
        // budget first, then relax it to see migration trigger.
        let mut triggered = false;
        for i in 0..8 {
            let out = m.commit(i, 2, 500);
            if let Some(target) = &out.migration_target {
                triggered = true;
                m.apply_migration(target);
                // After migration the online cost matches LyreSplit's.
                assert!(m.cavg() <= out.cavg + 1e-9);
                break;
            }
        }
        // With γ=1.0·|R| storage is capped; LyreSplit may still find a
        // better-connected single partition layout. Loosen γ to observe a
        // trigger deterministically.
        if !triggered {
            let mut m = OnlineMaintainer::new(
                OnlineConfig {
                    gamma_factor: 3.0,
                    mu: 1.05,
                    ..OnlineConfig::default()
                },
                500,
            );
            // Force bad placements: strong edges keep versions together,
            // while the optimum splits weak chains apart.
            for i in 0..30 {
                let parent = if i < 15 { i } else { 0 };
                let weight = if i % 2 == 0 { 450 } else { 3 };
                let out = m.commit(parent, weight, 500);
                if let Some(target) = &out.migration_target {
                    m.apply_migration(target);
                    triggered = true;
                    break;
                }
            }
            assert!(triggered, "migration never triggered");
        }
        assert!(m.migrations_triggered() >= 1 || triggered);
    }

    #[test]
    fn cavg_never_below_star_after_migration() {
        let mut m = OnlineMaintainer::new(OnlineConfig::default(), 200);
        for i in 0..20 {
            let w = if i % 3 == 0 { 5 } else { 180 };
            let out = m.commit(i, w, 200);
            if let Some(t) = &out.migration_target {
                m.apply_migration(t);
            }
        }
        // Online cost is at worst µ·C*avg after maintenance.
        assert!(
            m.cavg() <= m.config.mu * m.cavg_star + m.tree.total_records() as f64 * 0.01 + 1e-9
                || m.migrations_triggered() > 0
        );
    }
}
