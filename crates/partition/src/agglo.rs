//! AGGLO — the agglomerative-clustering baseline (Algorithm 4 of NScale
//! \[42\], re-implemented from the description in Section 5.1 of the
//! OrpheusDB paper).
//!
//! Each version starts as its own partition; partitions are sorted by a
//! min-hash **shingle** signature and repeatedly merged with the candidate
//! (within a look-ahead window of `l` partitions) sharing the most common
//! shingles, subject to (1) common shingles > τ and (2) the merged record
//! count staying within the capacity `BC`.
//!
//! Unlike LyreSplit, AGGLO operates on the full record sets — which is why
//! the paper measures it orders of magnitude slower (Figure 10/11).

use std::collections::HashSet;

use crate::bipartite::BipartiteGraph;
use crate::partitioning::Partitioning;
use crate::{RecordId, VersionId};

/// Number of min-hash functions per signature.
const NUM_SHINGLES: usize = 16;

/// Look-ahead window (the paper initializes l = 100).
pub const DEFAULT_WINDOW: usize = 100;

#[derive(Debug, Clone)]
struct Part {
    versions: Vec<VersionId>,
    records: HashSet<RecordId>,
    shingles: [u64; NUM_SHINGLES],
}

fn minhash(records: &HashSet<RecordId>) -> [u64; NUM_SHINGLES] {
    let mut sig = [u64::MAX; NUM_SHINGLES];
    for &r in records {
        for (i, s) in sig.iter_mut().enumerate() {
            // Splitmix-style per-seed hashing of the record id.
            let mut x = (r as u64).wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1));
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^= x >> 31;
            *s = (*s).min(x);
        }
    }
    sig
}

fn common_shingles(a: &[u64; NUM_SHINGLES], b: &[u64; NUM_SHINGLES]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x == y).count()
}

/// Run AGGLO with a partition capacity `BC` (max records per partition) and
/// a look-ahead window `l`.
pub fn agglo(bip: &BipartiteGraph, bc: usize, window: usize) -> Partitioning {
    let n = bip.num_versions();
    if n == 0 {
        return Partitioning {
            assignment: vec![],
            num_partitions: 0,
        };
    }

    let mut parts: Vec<Part> = (0..n)
        .map(|v| {
            let records: HashSet<RecordId> = bip.records_of(v).iter().copied().collect();
            let shingles = minhash(&records);
            Part {
                versions: vec![v],
                records,
                shingles,
            }
        })
        .collect();

    // τ via uniform sampling of partition pairs: mean common-shingle count.
    let tau = sample_tau(&parts);

    loop {
        // Shingle-based ordering.
        parts.sort_by_key(|a| a.shingles);
        let mut merged_any = false;
        let mut i = 0;
        while i < parts.len() {
            // Scan the following `window` partitions for the best candidate.
            let mut best: Option<(usize, usize)> = None; // (index, common)
            let hi = (i + 1 + window).min(parts.len());
            for j in (i + 1)..hi {
                let common = common_shingles(&parts[i].shingles, &parts[j].shingles);
                if common <= tau {
                    continue;
                }
                let union_size = union_size(&parts[i].records, &parts[j].records);
                if union_size > bc {
                    continue;
                }
                if best.map(|(_, c)| common > c).unwrap_or(true) {
                    best = Some((j, common));
                }
            }
            if let Some((j, _)) = best {
                let other = parts.remove(j);
                let me = &mut parts[i];
                me.versions.extend(other.versions);
                me.records.extend(other.records);
                me.shingles = minhash(&me.records);
                merged_any = true;
                // Re-consider the same position with its new signature.
            } else {
                i += 1;
            }
        }
        if !merged_any {
            break;
        }
    }

    partitioning_from_parts(n, &parts)
}

fn union_size(a: &HashSet<RecordId>, b: &HashSet<RecordId>) -> usize {
    let (small, large) = if a.len() < b.len() { (a, b) } else { (b, a) };
    large.len() + small.iter().filter(|r| !large.contains(r)).count()
}

fn sample_tau(parts: &[Part]) -> usize {
    if parts.len() < 2 {
        return 0;
    }
    // Deterministic uniform sampling over *arbitrary* pairs (not adjacent
    // ones, which would be biased toward similar partitions): mean common-
    // shingle count serves as the merge threshold τ.
    let n = parts.len();
    let mut total = 0usize;
    let mut count = 0usize;
    let mut i = 0usize;
    let mut j = n / 2;
    while count < 100 && count < n {
        if i != j {
            total += common_shingles(&parts[i].shingles, &parts[j].shingles);
            count += 1;
        }
        i = (i + 1) % n;
        j = (j + 7) % n;
    }
    total.checked_div(count).unwrap_or(0)
}

fn partitioning_from_parts(n: usize, parts: &[Part]) -> Partitioning {
    let mut assignment = vec![0usize; n];
    for (pid, part) in parts.iter().enumerate() {
        for &v in &part.versions {
            assignment[v] = pid;
        }
    }
    Partitioning {
        assignment,
        num_partitions: parts.len(),
    }
}

/// Statistics of the budget binary search over `BC`.
#[derive(Debug, Clone)]
pub struct AggloBudget {
    pub iterations: usize,
    pub final_bc: usize,
    pub storage: u64,
    /// False when even unbounded merging could not reach the budget (the
    /// τ threshold stops AGGLO from merging dissimilar partitions, so —
    /// unlike LyreSplit — tight budgets can be unreachable).
    pub feasible: bool,
}

/// Solve Problem 1 with AGGLO: binary search the capacity `BC` for the
/// smallest value whose storage cost still meets the budget γ (smaller BC ⇒
/// less merging ⇒ more partitions ⇒ more storage, less checkout cost).
///
/// When no probed capacity meets γ, the minimum-storage partitioning seen
/// is returned with `feasible = false`.
pub fn agglo_for_budget(bip: &BipartiteGraph, gamma: u64) -> (Partitioning, AggloBudget) {
    let max_version = (0..bip.num_versions())
        .map(|v| bip.version_size(v))
        .max()
        .unwrap_or(0);
    let mut lo = max_version; // below this nothing can merge at all
    let mut hi = bip.num_edges().max(1);
    let mut best = agglo(bip, hi, DEFAULT_WINDOW);
    let mut best_s = best.storage_cost(bip);
    let mut feasible = best_s <= gamma;
    let mut iterations = 0;

    while lo < hi && iterations < 20 {
        iterations += 1;
        let mid = lo + (hi - lo) / 2;
        let p = agglo(bip, mid, DEFAULT_WINDOW);
        let s = p.storage_cost(bip);
        let better = if feasible {
            s <= gamma // among feasible configs, prefer harder splits
        } else {
            s < best_s // infeasible so far: chase minimum storage
        };
        if s <= gamma && !feasible {
            feasible = true;
            best = p.clone();
            best_s = s;
        } else if better {
            best = p.clone();
            best_s = s;
        }
        if s <= gamma {
            // Feasible: try splitting harder (smaller capacity).
            hi = mid;
            if s as f64 >= 0.99 * gamma as f64 {
                break;
            }
        } else {
            lo = mid + 1;
        }
    }

    let stats = AggloBudget {
        iterations,
        final_bc: hi,
        storage: best_s,
        feasible,
    };
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn unlimited_capacity_merges_similar_versions() {
        let h = sim::chain(12, 200, 2, 5);
        let p = agglo(&h.bipartite, usize::MAX, DEFAULT_WINDOW);
        p.validate().unwrap();
        // A slowly-evolving chain is highly similar: expect heavy merging.
        assert!(p.num_partitions < 12);
    }

    #[test]
    fn tiny_capacity_prevents_merges() {
        let h = sim::chain(8, 100, 5, 2);
        // Capacity below any version size: nothing can merge.
        let p = agglo(&h.bipartite, 10, DEFAULT_WINDOW);
        assert_eq!(p.num_partitions, 8);
    }

    #[test]
    fn capacity_bound_is_respected_for_merged_partitions() {
        let h = sim::tree(30, 11);
        let bc = 150;
        let p = agglo(&h.bipartite, bc, DEFAULT_WINDOW);
        // A single version can exceed BC on its own (it must live
        // somewhere); the capacity constrains *merges*.
        for part in p.partitions() {
            if part.len() > 1 {
                assert!(
                    h.bipartite.distinct_records(&part) <= bc,
                    "merged partition {part:?} exceeds BC"
                );
            }
        }
    }

    #[test]
    fn budget_search_contract() {
        let h = sim::tree(25, 13);
        // A generous budget is feasible.
        let loose = (h.bipartite.num_edges()) as u64;
        let (p, stats) = agglo_for_budget(&h.bipartite, loose);
        p.validate().unwrap();
        assert!(stats.feasible);
        assert!(p.storage_cost(&h.bipartite) <= loose);
        assert_eq!(stats.storage, p.storage_cost(&h.bipartite));
        // A tight budget may be unreachable for AGGLO (τ blocks merging);
        // the contract is: feasible ⇒ within budget, infeasible ⇒ flagged.
        let tight = (h.bipartite.num_records() as f64 * 1.1) as u64;
        let (p, stats) = agglo_for_budget(&h.bipartite, tight);
        p.validate().unwrap();
        if stats.feasible {
            assert!(p.storage_cost(&h.bipartite) <= tight);
        } else {
            assert!(p.storage_cost(&h.bipartite) > tight);
        }
    }

    #[test]
    fn minhash_similarity_correlates_with_overlap() {
        let a: HashSet<RecordId> = (0..1000).collect();
        let b: HashSet<RecordId> = (0..1000).collect(); // identical
        let c: HashSet<RecordId> = (5000..6000).collect(); // disjoint
        let sa = minhash(&a);
        let sb = minhash(&b);
        let sc = minhash(&c);
        assert_eq!(common_shingles(&sa, &sb), NUM_SHINGLES);
        assert!(common_shingles(&sa, &sc) < NUM_SHINGLES / 2);
    }
}
