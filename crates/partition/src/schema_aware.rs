//! Schema-change-aware partitioning (Appendix C.3).
//!
//! Under the single-pool schema-evolution scheme (Section 3.3), versions
//! may differ in their attribute sets. The split condition then weighs an
//! edge by *both* its record overlap and its attribute overlap: edge
//! `(v_i, v_j)` qualifies for cutting when
//! `a(v_i, v_j) × w(v_i, v_j) ≤ δ × |A| × |R|`, where `a(·,·)` is the
//! number of common attributes and `|A|` the total number of attributes
//! across all versions. When no schema changes exist, `a(v_i, v_j) = |A|`
//! and the condition reduces to plain LyreSplit's `w ≤ δ|R|`.

use crate::lyresplit::{lyresplit_with_candidates, EdgePick, LyreSplitResult};
use crate::version_graph::VersionTree;

/// Attribute counts accompanying a version tree.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    /// `a(v)` — number of attributes in version v.
    pub attrs: Vec<u32>,
    /// `a(p(v), v)` — attributes shared with the tree parent (0 for roots).
    pub common_attrs_to_parent: Vec<u32>,
    /// `|A|` — total distinct attributes across all versions.
    pub total_attrs: u32,
}

impl SchemaInfo {
    /// A fixed schema of `attrs` attributes (no evolution): every version
    /// and edge carries the full attribute set.
    pub fn fixed(num_versions: usize, attrs: u32) -> SchemaInfo {
        SchemaInfo {
            attrs: vec![attrs; num_versions],
            common_attrs_to_parent: vec![attrs; num_versions],
            total_attrs: attrs,
        }
    }

    /// Validate sizes against a tree.
    pub fn check(&self, tree: &VersionTree) -> Result<(), String> {
        if self.attrs.len() != tree.num_versions()
            || self.common_attrs_to_parent.len() != tree.num_versions()
        {
            return Err("schema info length mismatch".into());
        }
        for v in 0..tree.num_versions() {
            if self.common_attrs_to_parent[v] > self.attrs[v] {
                return Err(format!("version {v}: common attrs exceed own attrs"));
            }
        }
        Ok(())
    }
}

/// Schema-aware LyreSplit (Appendix C.3): identical to Algorithm 1 except
/// for the candidate-edge condition (and candidates rank by the combined
/// weight `a(p(v), v) × w(p(v), v)` under [`EdgePick::SmallestWeight`], so
/// schema-divergent edges are cut first).
pub fn lyresplit_schema_aware(
    tree: &VersionTree,
    info: &SchemaInfo,
    delta: f64,
    pick: EdgePick,
) -> LyreSplitResult {
    info.check(tree).expect("schema info consistent with tree");
    let total_attrs = info.total_attrs.max(1) as f64;
    lyresplit_with_candidates(
        tree,
        delta,
        pick,
        &|v, comp_r| {
            let a = info.common_attrs_to_parent[v] as f64;
            let w = tree.weight_to_parent[v] as f64;
            a * w <= delta * total_attrs * comp_r as f64
        },
        &|v| info.common_attrs_to_parent[v] as u64 * tree.weight_to_parent[v],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lyresplit::lyresplit;
    use crate::sim;

    #[test]
    fn fixed_schema_reduces_to_plain_lyresplit() {
        let h = sim::tree(25, 77);
        let t = h.graph.to_tree();
        let info = SchemaInfo::fixed(25, 10);
        for &delta in &[0.3f64, 0.5, 0.9] {
            let plain = lyresplit(&t, delta, EdgePick::BalancedVersions);
            let aware = lyresplit_schema_aware(&t, &info, delta, EdgePick::BalancedVersions);
            assert_eq!(
                plain.partitioning, aware.partitioning,
                "fixed schema must reproduce plain LyreSplit at δ={delta}"
            );
        }
    }

    #[test]
    fn schema_divergence_changes_the_cut() {
        // A root with two equally-overlapping children (w = 80 both), but
        // child v2's schema shares only 1 of 10 attributes with the root.
        // Plain LyreSplit cannot tell the children apart and cuts the
        // first; the schema-aware variant cuts the schema-divergent edge.
        let t = VersionTree {
            parent: vec![None, Some(0), Some(0)],
            weight_to_parent: vec![0, 80, 80],
            records: vec![100, 100, 100],
        };
        // R = 140, E = 300 ⇒ splitting kicks in for δ ≥ 300/(140·3) ≈ 0.714.
        let delta = 0.75;
        let plain = lyresplit(&t, delta, EdgePick::SmallestWeight);
        assert_eq!(plain.partitioning.num_partitions, 2);
        // Tie on weight 80 breaks toward the smaller id: v1 is cut off.
        assert_ne!(
            plain.partitioning.partition_of(1),
            plain.partitioning.partition_of(0)
        );
        assert_eq!(
            plain.partitioning.partition_of(2),
            plain.partitioning.partition_of(0)
        );

        let info = SchemaInfo {
            attrs: vec![10, 10, 10],
            common_attrs_to_parent: vec![10, 10, 1],
            total_attrs: 10,
        };
        let aware = lyresplit_schema_aware(&t, &info, delta, EdgePick::SmallestWeight);
        assert_eq!(aware.partitioning.num_partitions, 2);
        // Effective weights: v1 → 800, v2 → 80 ⇒ v2 is cut off instead.
        assert_ne!(
            aware.partitioning.partition_of(2),
            aware.partitioning.partition_of(0)
        );
        assert_eq!(
            aware.partitioning.partition_of(1),
            aware.partitioning.partition_of(0)
        );
    }

    #[test]
    fn rejects_inconsistent_info() {
        let t = VersionTree {
            parent: vec![None],
            weight_to_parent: vec![0],
            records: vec![10],
        };
        let bad = SchemaInfo {
            attrs: vec![5],
            common_attrs_to_parent: vec![9], // > attrs
            total_attrs: 10,
        };
        assert!(bad.check(&t).is_err());
        let wrong_len = SchemaInfo::fixed(3, 4);
        assert!(wrong_len.check(&t).is_err());
    }
}
