//! Migration engine (Section 4.3): moving data from an existing
//! partitioning to a new one identified by LyreSplit, with far fewer
//! record writes than rebuilding from scratch.
//!
//! For every new partition `P'i` the engine finds the closest old partition
//! `Pj` by **modification cost** `|R'i \ Rj| + |Rj \ R'i|`. Costs are
//! *estimated* on the version graph (via the common versions of the two
//! partitions) without probing record sets; only the finally chosen pairs
//! have their concrete insert/delete lists computed. A new partition whose
//! best modification cost exceeds `|R'i|` is cheaper to build from scratch.

use std::collections::HashSet;

use crate::bipartite::BipartiteGraph;
use crate::partitioning::Partitioning;
use crate::version_graph::VersionTree;
use crate::RecordId;

/// One step of a migration plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationStep {
    /// Transform old partition `old` into new partition `new` by deleting
    /// and inserting the listed records.
    Reuse {
        old: usize,
        new: usize,
        inserts: Vec<RecordId>,
        deletes: Vec<RecordId>,
    },
    /// Create new partition `new` from scratch with the listed records.
    Build { new: usize, records: Vec<RecordId> },
    /// Drop old partition `old` (not reused by any new partition).
    Drop { old: usize },
}

/// A full migration plan plus its cost accounting. The *cost* of a plan is
/// the number of record writes (inserts + deletes + from-scratch builds),
/// which is what Figures 14b/15b measure as migration time.
#[derive(Debug, Clone, Default)]
pub struct MigrationPlan {
    pub steps: Vec<MigrationStep>,
    pub records_inserted: u64,
    pub records_deleted: u64,
    pub partitions_reused: usize,
    pub partitions_built: usize,
}

impl MigrationPlan {
    /// Total record modifications.
    pub fn total_modifications(&self) -> u64 {
        self.records_inserted + self.records_deleted
    }
}

/// The naive approach: drop everything, rebuild every new partition from
/// scratch.
pub fn plan_naive(bip: &BipartiteGraph, old: &Partitioning, new: &Partitioning) -> MigrationPlan {
    let mut plan = MigrationPlan::default();
    for (oldid, vs) in old.partitions().iter().enumerate() {
        plan.records_deleted += bip.distinct_records(vs) as u64;
        plan.steps.push(MigrationStep::Drop { old: oldid });
    }
    for (newid, vs) in new.partitions().iter().enumerate() {
        let records = bip.union_records(vs);
        plan.records_inserted += records.len() as u64;
        plan.partitions_built += 1;
        plan.steps.push(MigrationStep::Build {
            new: newid,
            records,
        });
    }
    plan
}

/// The intelligent approach of Section 4.3.
///
/// `tree` (when given) is used to estimate modification costs from version
/// counts alone — the paper's trick for avoiding record probes during the
/// pairing phase. Without it, estimates fall back to exact record counts.
pub fn plan_migration(
    bip: &BipartiteGraph,
    tree: Option<&VersionTree>,
    old: &Partitioning,
    new: &Partitioning,
) -> MigrationPlan {
    let old_parts = old.partitions();
    let new_parts = new.partitions();

    // Record counts per partition (new-partition sizes are needed for the
    // from-scratch comparison regardless of pairing estimates).
    let old_sizes: Vec<u64> = old_parts
        .iter()
        .map(|vs| estimate_records(bip, tree, vs))
        .collect();
    let new_sizes: Vec<u64> = new_parts
        .iter()
        .map(|vs| estimate_records(bip, tree, vs))
        .collect();

    // Step 1: estimated modification cost for each (new, old) pair.
    // cost = |R'i| + |Rj| − 2·|common records|, where the common records
    // are estimated through the common *versions* of the two partitions.
    let mut pairs: Vec<(u64, usize, usize)> = Vec::new();
    for (i, nvs) in new_parts.iter().enumerate() {
        let nset: HashSet<usize> = nvs.iter().copied().collect();
        for (j, ovs) in old_parts.iter().enumerate() {
            let common_versions: Vec<usize> =
                ovs.iter().copied().filter(|v| nset.contains(v)).collect();
            if common_versions.is_empty() {
                continue;
            }
            let common_records = estimate_records(bip, tree, &common_versions);
            let cost = new_sizes[i] + old_sizes[j]
                - 2 * common_records.min(new_sizes[i]).min(old_sizes[j]);
            pairs.push((cost, i, j));
        }
    }

    // Step 2: greedy pairing by smallest modification cost.
    pairs.sort();
    let mut new_assigned = vec![false; new_parts.len()];
    let mut old_assigned = vec![false; old_parts.len()];
    let mut chosen: Vec<(usize, usize)> = Vec::new();
    for (cost, i, j) in pairs {
        if new_assigned[i] || old_assigned[j] {
            continue;
        }
        // Building from scratch is cheaper when modifications exceed |R'i|.
        if cost > new_sizes[i] {
            continue;
        }
        new_assigned[i] = true;
        old_assigned[j] = true;
        chosen.push((i, j));
    }

    // Step 3: emit concrete steps.
    let mut plan = MigrationPlan::default();
    for (i, j) in chosen {
        let new_records: HashSet<RecordId> = bip.union_records(&new_parts[i]).into_iter().collect();
        let old_records: HashSet<RecordId> = bip.union_records(&old_parts[j]).into_iter().collect();
        let mut inserts: Vec<RecordId> = new_records.difference(&old_records).copied().collect();
        let mut deletes: Vec<RecordId> = old_records.difference(&new_records).copied().collect();
        inserts.sort_unstable();
        deletes.sort_unstable();
        plan.records_inserted += inserts.len() as u64;
        plan.records_deleted += deletes.len() as u64;
        plan.partitions_reused += 1;
        plan.steps.push(MigrationStep::Reuse {
            old: j,
            new: i,
            inserts,
            deletes,
        });
    }
    for (i, assigned) in new_assigned.iter().enumerate() {
        if !assigned {
            let records = bip.union_records(&new_parts[i]);
            plan.records_inserted += records.len() as u64;
            plan.partitions_built += 1;
            plan.steps.push(MigrationStep::Build { new: i, records });
        }
    }
    for (j, assigned) in old_assigned.iter().enumerate() {
        if !assigned {
            plan.records_deleted += old_sizes[j];
            plan.steps.push(MigrationStep::Drop { old: j });
        }
    }
    // Safety net: tree-based estimates can mispair on DAG-derived trees
    // (duplicated records skew the common-record counts). If the concrete
    // plan ended up moving more records than a full rebuild, rebuild.
    let naive = plan_naive(bip, old, new);
    if plan.total_modifications() > naive.total_modifications() {
        return naive;
    }
    plan
}

/// Record-count estimate for a version set: connected-component formula on
/// the tree when available (no record probing), exact bipartite count
/// otherwise.
fn estimate_records(bip: &BipartiteGraph, tree: Option<&VersionTree>, versions: &[usize]) -> u64 {
    match tree {
        Some(t) => t.component_records(versions),
        None => bip.distinct_records(versions) as u64,
    }
}

/// Verify a plan: applying the steps to the old partitions' record sets
/// must yield exactly the new partitions' record sets. Returns the final
/// record sets per new partition id.
pub fn apply_plan(
    bip: &BipartiteGraph,
    old: &Partitioning,
    plan: &MigrationPlan,
) -> Vec<(usize, Vec<RecordId>)> {
    let old_parts = old.partitions();
    let mut out = Vec::new();
    for step in &plan.steps {
        match step {
            MigrationStep::Reuse {
                old,
                new,
                inserts,
                deletes,
            } => {
                let mut set: HashSet<RecordId> =
                    bip.union_records(&old_parts[*old]).into_iter().collect();
                for d in deletes {
                    set.remove(d);
                }
                for i in inserts {
                    set.insert(*i);
                }
                let mut records: Vec<RecordId> = set.into_iter().collect();
                records.sort_unstable();
                out.push((*new, records));
            }
            MigrationStep::Build { new, records } => {
                out.push((*new, records.clone()));
            }
            MigrationStep::Drop { .. } => {}
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lyresplit::{lyresplit, EdgePick};
    use crate::sim;

    fn setup() -> (sim::SimHistory, Partitioning, Partitioning) {
        let h = sim::tree(30, 99);
        let t = h.graph.to_tree();
        let old = lyresplit(&t, 0.3, EdgePick::BalancedVersions).partitioning;
        let new = lyresplit(&t, 0.5, EdgePick::BalancedVersions).partitioning;
        (h, old, new)
    }

    #[test]
    fn intelligent_plan_is_correct() {
        let (h, old, new) = setup();
        let tree = h.graph.to_tree();
        let plan = plan_migration(&h.bipartite, Some(&tree), &old, &new);
        let result = apply_plan(&h.bipartite, &old, &plan);
        // Every new partition is produced with exactly its record set.
        let new_parts = new.partitions();
        assert_eq!(result.len(), new_parts.len());
        for (newid, records) in result {
            assert_eq!(records, h.bipartite.union_records(&new_parts[newid]));
        }
    }

    #[test]
    fn naive_plan_is_correct_but_expensive() {
        let (h, old, new) = setup();
        let tree = h.graph.to_tree();
        let naive = plan_naive(&h.bipartite, &old, &new);
        let smart = plan_migration(&h.bipartite, Some(&tree), &old, &new);
        // Both produce correct partitions...
        let result = apply_plan(&h.bipartite, &old, &naive);
        let new_parts = new.partitions();
        for (newid, records) in result {
            assert_eq!(records, h.bipartite.union_records(&new_parts[newid]));
        }
        // ...but the intelligent plan does fewer record writes when the
        // partitionings overlap (δ 0.3 → 0.5 shares most structure).
        assert!(
            smart.total_modifications() <= naive.total_modifications(),
            "smart {} vs naive {}",
            smart.total_modifications(),
            naive.total_modifications()
        );
    }

    #[test]
    fn identical_partitionings_cost_nothing() {
        let (h, old, _) = setup();
        let tree = h.graph.to_tree();
        let plan = plan_migration(&h.bipartite, Some(&tree), &old, &old);
        assert_eq!(plan.total_modifications(), 0);
        assert_eq!(plan.partitions_built, 0);
        assert_eq!(plan.partitions_reused, old.num_partitions);
    }

    #[test]
    fn from_scratch_when_no_overlap() {
        // Old partitioning groups {0}, new groups everything differently
        // with no common versions in one case.
        let h = sim::chain(4, 20, 5, 1);
        let old = Partitioning {
            assignment: vec![0, 0, 1, 1],
            num_partitions: 2,
        };
        let new = Partitioning {
            assignment: vec![0, 0, 0, 0],
            num_partitions: 1,
        };
        let plan = plan_migration(&h.bipartite, None, &old, &new);
        let result = apply_plan(&h.bipartite, &old, &plan);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].1.len(), h.bipartite.num_records());
    }

    #[test]
    fn plan_cost_fields_are_consistent() {
        let (h, old, new) = setup();
        let plan = plan_migration(&h.bipartite, None, &old, &new);
        let mut ins = 0u64;
        let mut del = 0u64;
        for s in &plan.steps {
            match s {
                MigrationStep::Reuse {
                    inserts, deletes, ..
                } => {
                    ins += inserts.len() as u64;
                    del += deletes.len() as u64;
                }
                MigrationStep::Build { records, .. } => ins += records.len() as u64,
                MigrationStep::Drop { .. } => {}
            }
        }
        assert_eq!(ins, plan.records_inserted);
        // Drops count deleted records too.
        assert!(del <= plan.records_deleted);
    }
}
