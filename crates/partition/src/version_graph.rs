//! The version graph (Section 3.3, Figure 4) and the version tree that
//! LyreSplit operates on, including the DAG → tree transformation of
//! Appendix C.1.

use std::collections::HashMap;

use crate::bipartite::BipartiteGraph;
use crate::VersionId;

/// A version DAG: nodes are versions; an edge `p → v` with weight
/// `w(p, v)` = number of records shared by `p` and `v`. A version with
/// multiple parents is a merge.
#[derive(Debug, Clone, Default)]
pub struct VersionGraph {
    /// `parents[v]` = (parent id, shared-record count) pairs.
    parents: Vec<Vec<(VersionId, u64)>>,
    /// `records[v]` = |R(v)|.
    records: Vec<u64>,
}

impl VersionGraph {
    pub fn new() -> VersionGraph {
        VersionGraph::default()
    }

    /// Derive the version graph from explicit parent lists plus the
    /// bipartite graph (weights = record overlaps).
    pub fn from_bipartite(parent_lists: &[Vec<VersionId>], bip: &BipartiteGraph) -> VersionGraph {
        let mut g = VersionGraph::new();
        for (v, ps) in parent_lists.iter().enumerate() {
            let weighted: Vec<(VersionId, u64)> = ps
                .iter()
                .map(|&p| (p, bip.common_records(p, v) as u64))
                .collect();
            g.parents.push(weighted);
            g.records.push(bip.version_size(v) as u64);
        }
        g
    }

    /// Append a version with the given weighted parents and record count.
    pub fn push_version(&mut self, parents: Vec<(VersionId, u64)>, records: u64) -> VersionId {
        for &(p, w) in &parents {
            debug_assert!(p < self.parents.len(), "parent {p} not yet present");
            debug_assert!(w <= self.records[p].max(records));
        }
        self.parents.push(parents);
        self.records.push(records);
        self.parents.len() - 1
    }

    pub fn num_versions(&self) -> usize {
        self.parents.len()
    }

    pub fn parents_of(&self, v: VersionId) -> &[(VersionId, u64)] {
        &self.parents[v]
    }

    pub fn records_of(&self, v: VersionId) -> u64 {
        self.records[v]
    }

    /// True if no version has more than one parent (no merges).
    pub fn is_tree(&self) -> bool {
        self.parents.iter().all(|p| p.len() <= 1)
    }

    /// Children adjacency (derived).
    pub fn children(&self) -> Vec<Vec<VersionId>> {
        let mut ch = vec![Vec::new(); self.num_versions()];
        for (v, ps) in self.parents.iter().enumerate() {
            for &(p, _) in ps {
                ch[p].push(v);
            }
        }
        ch
    }

    /// Depth `l(v)` of each version in topological order (roots at 1).
    pub fn levels(&self) -> Vec<usize> {
        let mut lv = vec![1usize; self.num_versions()];
        // Versions are appended after their parents, so ids are topo-sorted.
        for v in 0..self.num_versions() {
            for &(p, _) in &self.parents[v] {
                lv[v] = lv[v].max(lv[p] + 1);
            }
        }
        lv
    }

    /// All ancestors of `v` (transitive parents), excluding `v`.
    pub fn ancestors(&self, v: VersionId) -> Vec<VersionId> {
        let mut seen = vec![false; self.num_versions()];
        let mut stack = vec![v];
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            for &(p, _) in &self.parents[x] {
                if !seen[p] {
                    seen[p] = true;
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// All descendants of `v`, excluding `v`.
    pub fn descendants(&self, v: VersionId) -> Vec<VersionId> {
        let ch = self.children();
        let mut seen = vec![false; self.num_versions()];
        let mut stack = vec![v];
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            for &c in &ch[x] {
                if !seen[c] {
                    seen[c] = true;
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Transform the (possibly merged) version graph into a version tree by
    /// keeping, for each merge version, only the incoming edge with the
    /// highest weight (Appendix C.1). Ties break toward the smaller parent
    /// id for determinism.
    pub fn to_tree(&self) -> VersionTree {
        let n = self.num_versions();
        let mut parent = vec![None; n];
        let mut weight = vec![0u64; n];
        for v in 0..n {
            let best = self.parents[v]
                .iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
            if let Some(&(p, w)) = best {
                parent[v] = Some(p);
                weight[v] = w;
            }
        }
        VersionTree {
            parent,
            weight_to_parent: weight,
            records: self.records.clone(),
        }
    }

    /// Number of conceptually duplicated records `|R̂|` introduced by the
    /// tree transformation (Appendix C.1): records of a merge version that
    /// are shared with *some* parent but not with the kept parent are
    /// treated as new, hence duplicated. Requires the bipartite graph.
    pub fn duplicated_records(&self, bip: &BipartiteGraph) -> usize {
        let tree = self.to_tree();
        let mut dup = 0usize;
        for v in 0..self.num_versions() {
            if self.parents[v].len() < 2 {
                continue;
            }
            let kept = tree.parent[v].expect("merge version has a parent");
            let kept_set: std::collections::HashSet<usize> =
                bip.records_of(kept).iter().copied().collect();
            // Records of v present in the union of dropped parents but not
            // in the kept parent.
            let mut union_dropped = std::collections::HashSet::new();
            for &(p, _) in &self.parents[v] {
                if p != kept {
                    union_dropped.extend(bip.records_of(p).iter().copied());
                }
            }
            for r in bip.records_of(v) {
                if union_dropped.contains(r) && !kept_set.contains(r) {
                    dup += 1;
                }
            }
        }
        dup
    }
}

/// A version tree: each non-root version has exactly one parent. This is
/// the only structure LyreSplit reads — never the (much larger) bipartite
/// graph — which is the source of its speed advantage (Section 5.2).
#[derive(Debug, Clone, Default)]
pub struct VersionTree {
    /// `parent[v]`, `None` for roots.
    pub parent: Vec<Option<VersionId>>,
    /// `w(parent[v], v)`; 0 for roots.
    pub weight_to_parent: Vec<u64>,
    /// `|R(v)|` per version.
    pub records: Vec<u64>,
}

impl VersionTree {
    pub fn num_versions(&self) -> usize {
        self.parent.len()
    }

    /// Children adjacency.
    pub fn children(&self) -> Vec<Vec<VersionId>> {
        let mut ch = vec![Vec::new(); self.num_versions()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(v);
            }
        }
        ch
    }

    /// Total membership edges |E| = Σ |R(v)|.
    pub fn total_edges(&self) -> u64 {
        self.records.iter().sum()
    }

    /// Number of distinct records |R| implied by the tree under the
    /// no-cross-version-diff rule: the root contributes all its records,
    /// every other version contributes `|R(v)| − w(p(v), v)` new ones.
    ///
    /// For trees derived from DAGs this counts duplicated records `R̂` as
    /// distinct, exactly as the analysis in Appendix C.1 does.
    pub fn total_records(&self) -> u64 {
        let mut total = 0u64;
        for v in 0..self.num_versions() {
            match self.parent[v] {
                None => total += self.records[v],
                Some(_) => total += self.records[v].saturating_sub(self.weight_to_parent[v]),
            }
        }
        total
    }

    /// Distinct-record count of a *connected* component of the tree
    /// (identified by membership), computed purely from counts.
    pub fn component_records(&self, members: &[VersionId]) -> u64 {
        let member_set: HashMap<VersionId, ()> = members.iter().map(|&v| (v, ())).collect();
        let mut total = 0u64;
        for &v in members {
            match self.parent[v] {
                Some(p) if member_set.contains_key(&p) => {
                    total += self.records[v].saturating_sub(self.weight_to_parent[v]);
                }
                _ => total += self.records[v],
            }
        }
        total
    }

    /// Levels (depth) per version; roots at level 1.
    pub fn levels(&self) -> Vec<usize> {
        let mut lv = vec![1usize; self.num_versions()];
        for v in 0..self.num_versions() {
            if let Some(p) = self.parent[v] {
                lv[v] = lv[p] + 1;
            }
        }
        lv
    }
}

/// Build the version graph of Figure 4(b): v1 → {v2, v3}, v2 and v3 merge
/// into v4. Numbers from the paper: |R| per version 3,3,4,6; weights
/// w(v1,v2)=2, w(v1,v3)=1, w(v2,v4)=3, w(v3,v4)=4.
pub fn figure4_graph() -> VersionGraph {
    let mut g = VersionGraph::new();
    let v1 = g.push_version(vec![], 3);
    let v2 = g.push_version(vec![(v1, 2)], 3);
    let v3 = g.push_version(vec![(v1, 1)], 4);
    let _v4 = g.push_version(vec![(v2, 3), (v3, 4)], 6);
    let _ = (v2, v3);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::figure6_graph;

    #[test]
    fn figure4_tree_transform_keeps_heavier_edge() {
        let g = figure4_graph();
        assert!(!g.is_tree());
        let t = g.to_tree();
        // v4 keeps parent v3 (weight 4 > 3), per Figure 17.
        assert_eq!(t.parent[3], Some(2));
        assert_eq!(t.weight_to_parent[3], 4);
        assert!(g.to_tree().parent[1] == Some(0));
    }

    #[test]
    fn figure17_duplicated_records() {
        // Figure 17: after dropping edge (v2, v4), records r̂2 and r̂4 are
        // duplicated: |R̂| = 2.
        let bip = figure6_graph();
        let g = VersionGraph::from_bipartite(&[vec![], vec![0], vec![0], vec![1, 2]], &bip);
        assert_eq!(g.duplicated_records(&bip), 2);
    }

    #[test]
    fn tree_total_records_matches_figure17() {
        // The constructed tree Tˆ has 9 records (7 real + 2 duplicated) and
        // 16 bipartite edges.
        let bip = figure6_graph();
        let g = VersionGraph::from_bipartite(&[vec![], vec![0], vec![0], vec![1, 2]], &bip);
        let t = g.to_tree();
        assert_eq!(t.total_edges(), 16);
        assert_eq!(t.total_records(), 9);
    }

    #[test]
    fn levels_and_lineage() {
        let g = figure4_graph();
        assert_eq!(g.levels(), vec![1, 2, 2, 3]);
        assert_eq!(g.ancestors(3), vec![0, 1, 2]);
        assert_eq!(g.descendants(0), vec![1, 2, 3]);
        assert_eq!(g.descendants(3), Vec::<usize>::new());
    }

    #[test]
    fn component_records_on_figure8_style_split() {
        // A chain r=10 -> 9 shared -> 10 -> 2 shared -> 10: cutting the weak
        // edge yields components of 11 and 10 distinct records.
        let t = VersionTree {
            parent: vec![None, Some(0), Some(1)],
            weight_to_parent: vec![0, 9, 2],
            records: vec![10, 10, 10],
        };
        assert_eq!(t.total_records(), 10 + 1 + 8);
        assert_eq!(t.component_records(&[0, 1]), 11);
        assert_eq!(t.component_records(&[2]), 10);
    }

    #[test]
    fn from_bipartite_derives_weights() {
        let bip = figure6_graph();
        let g = VersionGraph::from_bipartite(&[vec![], vec![0], vec![0], vec![1, 2]], &bip);
        assert_eq!(g.parents_of(3), &[(1, 3), (2, 4)]);
        assert_eq!(g.records_of(3), 6);
    }
}
