//! Weighted checkout cost (Appendix C.2): versions are checked out with
//! different frequencies `f_i`, e.g. recent versions far more often than
//! old ones.
//!
//! The paper's construction: duplicate each version `v_i` into a chain of
//! `f_i` copies (intra-chain edges share all records), run plain LyreSplit
//! on the expanded tree `T'`, then post-process by collapsing each
//! version's copies into the member partition with the fewest records. The
//! result carries the same ((1+δ)^ℓ, 1/δ) guarantee against the weighted
//! optimum.

use crate::bipartite::BipartiteGraph;
use crate::lyresplit::{lyresplit, EdgePick, LyreSplitResult};
use crate::partitioning::Partitioning;
use crate::version_graph::VersionTree;
use crate::VersionId;

/// Weighted checkout cost `Cw = Σ f_i·C_i / Σ f_i` (exact, via the
/// bipartite graph).
pub fn weighted_checkout_cost(part: &Partitioning, bip: &BipartiteGraph, freqs: &[u64]) -> f64 {
    assert_eq!(part.num_versions(), freqs.len());
    let parts = part.partitions();
    let sizes: Vec<u64> = parts
        .iter()
        .map(|vs| bip.distinct_records(vs) as u64)
        .collect();
    let mut num = 0u128;
    let mut den = 0u128;
    for (v, &f) in freqs.iter().enumerate() {
        num += (f as u128) * sizes[part.partition_of(v)] as u128;
        den += f as u128;
    }
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The weighted-optimum floor `ζ = Σ f_i·|R(v_i)| / Σ f_i` — achieved when
/// every version sits in its own partition.
pub fn weighted_cost_floor(bip: &BipartiteGraph, freqs: &[u64]) -> f64 {
    let mut num = 0u128;
    let mut den = 0u128;
    for (v, &f) in freqs.iter().enumerate() {
        num += (f as u128) * bip.version_size(v) as u128;
        den += f as u128;
    }
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// LyreSplit for the weighted case (Appendix C.2): expand, split, collapse.
/// Frequencies of zero are treated as one (every version must live
/// somewhere).
pub fn lyresplit_weighted(
    tree: &VersionTree,
    freqs: &[u64],
    delta: f64,
    pick: EdgePick,
) -> LyreSplitResult {
    let n = tree.num_versions();
    assert_eq!(n, freqs.len());

    // Build the expanded tree T': copies[v] = range of expanded ids.
    let mut expanded_parent: Vec<Option<VersionId>> = Vec::new();
    let mut expanded_weight: Vec<u64> = Vec::new();
    let mut expanded_records: Vec<u64> = Vec::new();
    let mut first_copy: Vec<usize> = Vec::with_capacity(n);
    let mut last_copy: Vec<usize> = Vec::with_capacity(n);
    // Original versions are topologically ordered by id, so parents'
    // copies exist before children are expanded.
    for (v, &freq) in freqs.iter().enumerate() {
        let f = freq.max(1) as usize;
        let start = expanded_parent.len();
        for j in 0..f {
            if j == 0 {
                match tree.parent[v] {
                    Some(p) => {
                        expanded_parent.push(Some(last_copy[p]));
                        expanded_weight.push(tree.weight_to_parent[v]);
                    }
                    None => {
                        expanded_parent.push(None);
                        expanded_weight.push(0);
                    }
                }
            } else {
                // Chain copy: shares all records with the previous copy.
                expanded_parent.push(Some(start + j - 1));
                expanded_weight.push(tree.records[v]);
            }
            expanded_records.push(tree.records[v]);
        }
        first_copy.push(start);
        last_copy.push(start + f - 1);
    }
    let expanded = VersionTree {
        parent: expanded_parent,
        weight_to_parent: expanded_weight,
        records: expanded_records,
    };

    // Plain LyreSplit on T'.
    let expanded_result = lyresplit(&expanded, delta, pick);

    // Collapse: each original version joins the smallest (by records)
    // partition among its copies' partitions.
    let parts = expanded_result.partitioning.partitions();
    let part_records: Vec<u64> = parts
        .iter()
        .map(|vs| expanded.component_records(vs))
        .collect();
    let mut raw_assignment = Vec::with_capacity(n);
    for v in 0..n {
        let f = freqs[v].max(1) as usize;
        let best = (first_copy[v]..first_copy[v] + f)
            .map(|c| expanded_result.partitioning.partition_of(c))
            .min_by_key(|&p| part_records[p])
            .expect("at least one copy");
        raw_assignment.push(best);
    }

    LyreSplitResult {
        partitioning: Partitioning::from_assignment(raw_assignment),
        levels: expanded_result.levels,
        delta,
    }
}

/// Solve Problem 1 in the weighted case for a storage budget γ: binary
/// search δ over the same interval as the unweighted search, running
/// [`lyresplit_weighted`] at each probe and measuring storage on the
/// *original* tree (the expanded copies share all records, so only the
/// collapsed partitioning's storage is real).
pub fn lyresplit_weighted_for_budget(
    tree: &VersionTree,
    freqs: &[u64],
    gamma: u64,
    pick: EdgePick,
) -> LyreSplitResult {
    let r = tree.total_records().max(1);
    let v = tree.num_versions().max(1) as u64;
    let e = tree.total_edges().max(1);
    let mut lo = (e as f64 / (r as f64 * v as f64)).min(1.0);
    let mut hi = 1.0f64;

    let mut best = lyresplit_weighted(tree, freqs, lo, pick);
    if best.partitioning.storage_cost_tree(tree) > gamma {
        // γ < |R| is infeasible (Observation 2); fall back to the
        // minimum-storage single partition.
        best = LyreSplitResult {
            partitioning: Partitioning::single(tree.num_versions()),
            levels: 0,
            delta: lo,
        };
    }
    for _ in 0..64 {
        if hi - lo < 1e-9 {
            break;
        }
        let mid = 0.5 * (lo + hi);
        let res = lyresplit_weighted(tree, freqs, mid, pick);
        let s = res.partitioning.storage_cost_tree(tree);
        if s <= gamma {
            best = res;
            lo = mid;
            if s as f64 >= 0.99 * gamma as f64 {
                break;
            }
        } else {
            hi = mid;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn uniform_frequencies_match_unweighted_cost() {
        let h = sim::tree(20, 17);
        let t = h.graph.to_tree();
        let freqs = vec![1u64; 20];
        let p = lyresplit(&t, 0.5, EdgePick::BalancedVersions).partitioning;
        let cw = weighted_checkout_cost(&p, &h.bipartite, &freqs);
        let cavg = p.checkout_cost(&h.bipartite);
        assert!((cw - cavg).abs() < 1e-9);
    }

    #[test]
    fn expansion_respects_structure() {
        let h = sim::tree(12, 23);
        let t = h.graph.to_tree();
        let freqs: Vec<u64> = (0..12).map(|i| 1 + (i % 3) as u64).collect();
        let r = lyresplit_weighted(&t, &freqs, 0.5, EdgePick::BalancedVersions);
        r.partitioning.validate().unwrap();
        assert_eq!(r.partitioning.num_versions(), 12);
    }

    #[test]
    fn hot_versions_bias_partitioning() {
        // A chain with a cheap prefix and expensive suffix: when the hot
        // version is the tip, the weighted cost of the tip's partition
        // matters most. We check the invariant Cw ≥ ζ (floor) and that the
        // weighted algorithm is never (much) worse than unweighted on the
        // weighted metric.
        let h = sim::chain(16, 100, 30, 3);
        let t = h.graph.to_tree();
        let mut freqs = vec![1u64; 16];
        freqs[15] = 50; // the tip is hot
        let unweighted = lyresplit(&t, 0.6, EdgePick::BalancedVersions).partitioning;
        let weighted = lyresplit_weighted(&t, &freqs, 0.6, EdgePick::BalancedVersions).partitioning;
        let floor = weighted_cost_floor(&h.bipartite, &freqs);
        let cw_u = weighted_checkout_cost(&unweighted, &h.bipartite, &freqs);
        let cw_w = weighted_checkout_cost(&weighted, &h.bipartite, &freqs);
        assert!(cw_w + 1e-9 >= floor);
        assert!(cw_u + 1e-9 >= floor);
        // The guarantee: Cw ≤ (1/δ)·ζ.
        assert!(
            cw_w <= floor / 0.6 + 1e-6,
            "weighted guarantee violated: {cw_w} > {}",
            floor / 0.6
        );
    }

    #[test]
    fn zero_frequencies_are_tolerated() {
        let h = sim::tree(8, 31);
        let t = h.graph.to_tree();
        let freqs = vec![0u64; 8];
        let r = lyresplit_weighted(&t, &freqs, 0.5, EdgePick::SmallestWeight);
        r.partitioning.validate().unwrap();
    }

    #[test]
    fn budget_search_respects_gamma() {
        let h = sim::tree(30, 99);
        let t = h.graph.to_tree();
        let freqs: Vec<u64> = (0..30).map(|i| 1 + (i as u64 % 7) * 3).collect();
        for factor in [1.2f64, 1.5, 2.0, 3.0] {
            let gamma = (factor * t.total_records() as f64) as u64;
            let r = lyresplit_weighted_for_budget(&t, &freqs, gamma, EdgePick::BalancedVersions);
            r.partitioning.validate().unwrap();
            assert!(
                r.partitioning.storage_cost_tree(&t) <= gamma,
                "γ-factor {factor}: storage {} > {gamma}",
                r.partitioning.storage_cost_tree(&t)
            );
        }
    }

    #[test]
    fn budget_search_weighted_cost_shrinks_with_budget() {
        let h = sim::tree(40, 5);
        let t = h.graph.to_tree();
        let mut freqs = vec![1u64; 40];
        freqs[39] = 100;
        let tight = lyresplit_weighted_for_budget(
            &t,
            &freqs,
            (1.1 * t.total_records() as f64) as u64,
            EdgePick::BalancedVersions,
        );
        let loose = lyresplit_weighted_for_budget(
            &t,
            &freqs,
            (3.0 * t.total_records() as f64) as u64,
            EdgePick::BalancedVersions,
        );
        let cw_tight = weighted_checkout_cost(&tight.partitioning, &h.bipartite, &freqs);
        let cw_loose = weighted_checkout_cost(&loose.partitioning, &h.bipartite, &freqs);
        assert!(cw_loose <= cw_tight + 1e-9, "{cw_loose} > {cw_tight}");
    }
}
