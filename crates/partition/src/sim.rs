//! Small synthetic version-history simulator.
//!
//! Generates random-but-consistent version histories (record sets, version
//! graph and derived weights all agree) for unit and property tests across
//! the workspace. The full SCI/CUR benchmark generator of Section 5.1 lives
//! in `orpheus-bench`; this module is deliberately minimal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bipartite::BipartiteGraph;
use crate::version_graph::VersionGraph;
use crate::{RecordId, VersionId};

/// A generated history: record membership plus the matching version graph.
#[derive(Debug, Clone)]
pub struct SimHistory {
    pub bipartite: BipartiteGraph,
    pub graph: VersionGraph,
    pub parent_lists: Vec<Vec<VersionId>>,
}

/// Parameters for [`simulate`].
#[derive(Debug, Clone)]
pub struct SimParams {
    pub versions: usize,
    /// Records in the root version.
    pub base_records: usize,
    /// New records inserted per derived version.
    pub inserts: usize,
    /// Records deleted per derived version (bounded by parent size).
    pub deletes: usize,
    /// Probability of branching from a random ancestor instead of the tip.
    pub branch_prob: f64,
    /// Probability that a new version merges two existing versions
    /// (0 ⇒ the history is a tree).
    pub merge_prob: f64,
    pub seed: u64,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            versions: 20,
            base_records: 50,
            inserts: 10,
            deletes: 3,
            branch_prob: 0.3,
            merge_prob: 0.0,
            seed: 7,
        }
    }
}

/// Generate a history under the no-cross-version-diff rule: every inserted
/// record gets a globally fresh id, deleted-then-readded data would get a
/// fresh id too (Section 2.2).
pub fn simulate(params: &SimParams) -> SimHistory {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut version_records: Vec<Vec<RecordId>> = Vec::with_capacity(params.versions);
    let mut parent_lists: Vec<Vec<VersionId>> = Vec::with_capacity(params.versions);

    // Root version.
    let root: Vec<RecordId> = (0..params.base_records).collect();
    let mut next_record: RecordId = params.base_records;
    version_records.push(root);
    parent_lists.push(Vec::new());

    for v in 1..params.versions {
        let do_merge = v >= 2 && rng.gen_bool(params.merge_prob);
        if do_merge {
            // Merge two distinct existing versions: union of their records.
            let a = rng.gen_range(0..v);
            let mut b = rng.gen_range(0..v);
            while b == a {
                b = rng.gen_range(0..v);
            }
            let mut records: Vec<RecordId> = version_records[a]
                .iter()
                .chain(version_records[b].iter())
                .copied()
                .collect();
            records.sort_unstable();
            records.dedup();
            version_records.push(records);
            parent_lists.push(vec![a.min(b), a.max(b)]);
        } else {
            let parent = if rng.gen_bool(params.branch_prob) {
                rng.gen_range(0..v)
            } else {
                v - 1
            };
            let mut records = version_records[parent].clone();
            // Delete a few random records.
            for _ in 0..params.deletes.min(records.len().saturating_sub(1)) {
                let idx = rng.gen_range(0..records.len());
                records.swap_remove(idx);
            }
            // Insert fresh records.
            for _ in 0..params.inserts {
                records.push(next_record);
                next_record += 1;
            }
            records.sort_unstable();
            version_records.push(records);
            parent_lists.push(vec![parent]);
        }
    }

    let bipartite = BipartiteGraph::new(version_records);
    let graph = VersionGraph::from_bipartite(&parent_lists, &bipartite);
    SimHistory {
        bipartite,
        graph,
        parent_lists,
    }
}

/// Convenience: a linear chain (temporal-database-like history).
pub fn chain(versions: usize, base_records: usize, inserts: usize, seed: u64) -> SimHistory {
    simulate(&SimParams {
        versions,
        base_records,
        inserts,
        deletes: 0,
        branch_prob: 0.0,
        merge_prob: 0.0,
        seed,
    })
}

/// Convenience: a branched tree without merges (SCI-like).
pub fn tree(versions: usize, seed: u64) -> SimHistory {
    simulate(&SimParams {
        versions,
        merge_prob: 0.0,
        seed,
        ..SimParams::default()
    })
}

/// Convenience: a DAG with merges (CUR-like).
pub fn dag(versions: usize, seed: u64) -> SimHistory {
    simulate(&SimParams {
        versions,
        merge_prob: 0.25,
        branch_prob: 0.4,
        seed,
        ..SimParams::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shapes() {
        let h = chain(10, 100, 5, 1);
        assert_eq!(h.bipartite.num_versions(), 10);
        assert!(h.graph.is_tree());
        // Chain: every non-root version has exactly the previous as parent.
        for v in 1..10 {
            assert_eq!(h.parent_lists[v], vec![v - 1]);
        }
        // With zero deletes, |R| = base + 9×inserts.
        assert_eq!(h.bipartite.num_records(), 100 + 9 * 5);
    }

    #[test]
    fn weights_equal_true_overlaps() {
        let h = tree(25, 42);
        for v in 1..25 {
            for &(p, w) in h.graph.parents_of(v) {
                assert_eq!(w as usize, h.bipartite.common_records(p, v));
            }
        }
    }

    #[test]
    fn dag_contains_merges() {
        let h = dag(40, 3);
        assert!(!h.graph.is_tree());
        let merges = (0..40).filter(|&v| h.parent_lists[v].len() > 1).count();
        assert!(merges > 0);
        // Merge versions contain the union of their parents' records.
        for v in 0..40 {
            if h.parent_lists[v].len() == 2 {
                let (a, b) = (h.parent_lists[v][0], h.parent_lists[v][1]);
                let union = h.bipartite.union_records(&[a, b]);
                assert_eq!(h.bipartite.records_of(v), union.as_slice());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tree(15, 9);
        let b = tree(15, 9);
        assert_eq!(a.parent_lists, b.parent_lists);
        assert_eq!(a.bipartite.num_records(), b.bipartite.num_records());
        let c = tree(15, 10);
        assert!(
            a.parent_lists != c.parent_lists
                || a.bipartite.num_records() != c.bipartite.num_records()
        );
    }

    #[test]
    fn tree_estimate_exact_on_trees() {
        // Cross-check the Lemma 1 identity against ground truth on a
        // generated tree: tree-derived |R| equals the bipartite's |R|.
        let h = tree(30, 5);
        let t = h.graph.to_tree();
        assert_eq!(t.total_records() as usize, h.bipartite.num_records());
    }
}
