//! The version-record bipartite graph `G = (V, R, E)` (Section 4.1,
//! Figure 6): an edge `(vi, rj)` exists iff version `vi` contains record
//! `rj`.

use crate::{RecordId, VersionId};

/// Version-record membership, stored as a sorted record list per version.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    /// `version_records[v]` = sorted, deduplicated record ids of version v.
    version_records: Vec<Vec<RecordId>>,
    /// Total number of distinct records |R|.
    num_records: usize,
    /// Total number of edges |E| = Σ |R(v)|.
    num_edges: usize,
}

impl BipartiteGraph {
    /// Build from per-version record lists (deduplicated and sorted here).
    pub fn new(mut version_records: Vec<Vec<RecordId>>) -> BipartiteGraph {
        let mut max_record: Option<RecordId> = None;
        let mut num_edges = 0;
        let mut seen = std::collections::HashSet::new();
        for records in &mut version_records {
            records.sort_unstable();
            records.dedup();
            num_edges += records.len();
            for &r in records.iter() {
                seen.insert(r);
                max_record = Some(max_record.map_or(r, |m: usize| m.max(r)));
            }
        }
        BipartiteGraph {
            version_records,
            num_records: seen.len(),
            num_edges,
        }
    }

    /// Number of versions |V|.
    pub fn num_versions(&self) -> usize {
        self.version_records.len()
    }

    /// Number of distinct records |R|.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Number of membership edges |E|.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted record ids of version `v`.
    pub fn records_of(&self, v: VersionId) -> &[RecordId] {
        &self.version_records[v]
    }

    /// Number of records in version `v`.
    pub fn version_size(&self, v: VersionId) -> usize {
        self.version_records[v].len()
    }

    /// Number of common records between two versions — the edge weight
    /// `w(vi, vj)` of the version graph.
    pub fn common_records(&self, a: VersionId, b: VersionId) -> usize {
        sorted_intersection_size(&self.version_records[a], &self.version_records[b])
    }

    /// Number of distinct records across a set of versions.
    pub fn distinct_records(&self, versions: &[VersionId]) -> usize {
        match versions.len() {
            0 => 0,
            1 => self.version_records[versions[0]].len(),
            _ => {
                let mut set = std::collections::HashSet::new();
                for &v in versions {
                    set.extend(self.version_records[v].iter().copied());
                }
                set.len()
            }
        }
    }

    /// Distinct record ids across a set of versions, sorted.
    pub fn union_records(&self, versions: &[VersionId]) -> Vec<RecordId> {
        let mut set = std::collections::HashSet::new();
        for &v in versions {
            set.extend(self.version_records[v].iter().copied());
        }
        let mut out: Vec<RecordId> = set.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Lower bound on the checkout cost: `|E| / |V|` — achieved by storing
    /// each version as its own partition (Observation 1).
    pub fn min_checkout_cost(&self) -> f64 {
        if self.num_versions() == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_versions() as f64
        }
    }

    /// Lower bound on storage: `|R|` — all versions in one partition
    /// (Observation 2).
    pub fn min_storage_cost(&self) -> usize {
        self.num_records
    }

    /// Append a new version with the given records (used by online
    /// maintenance as commits stream in).
    pub fn push_version(&mut self, mut records: Vec<RecordId>) -> VersionId {
        records.sort_unstable();
        records.dedup();
        self.num_edges += records.len();
        // Recompute |R| incrementally: records unseen so far are new.
        let mut new_records = 0;
        {
            let mut seen: std::collections::HashSet<RecordId> = std::collections::HashSet::new();
            for v in &self.version_records {
                seen.extend(v.iter().copied());
            }
            for r in &records {
                if !seen.contains(r) {
                    new_records += 1;
                }
            }
        }
        self.num_records += new_records;
        self.version_records.push(records);
        self.version_records.len() - 1
    }
}

/// Size of the intersection of two sorted slices.
pub fn sorted_intersection_size(a: &[RecordId], b: &[RecordId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The bipartite graph of Figure 6(a) in the paper (versions v1..v4 over
/// records r1..r7), used as a shared fixture across the crate's tests.
#[cfg(test)]
pub fn figure6_graph() -> BipartiteGraph {
    // v1 = {r1, r2, r3}; v2 = {r2, r3, r4}; v3 = {r3, r5, r6, r7};
    // v4 = {r2, r3, r4, r5, r6, r7}  (0-indexed below)
    BipartiteGraph::new(vec![
        vec![0, 1, 2],
        vec![1, 2, 3],
        vec![2, 4, 5, 6],
        vec![1, 2, 3, 4, 5, 6],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_counts() {
        let g = figure6_graph();
        assert_eq!(g.num_versions(), 4);
        assert_eq!(g.num_records(), 7);
        assert_eq!(g.num_edges(), 3 + 3 + 4 + 6);
    }

    #[test]
    fn common_records_matches_figure4_weights() {
        let g = figure6_graph();
        // Weights from Figure 4(b): w(v1,v2)=2, w(v1,v3)=1, w(v2,v4)=3,
        // w(v3,v4)=4.
        assert_eq!(g.common_records(0, 1), 2);
        assert_eq!(g.common_records(0, 2), 1);
        assert_eq!(g.common_records(1, 3), 3);
        assert_eq!(g.common_records(2, 3), 4);
    }

    #[test]
    fn distinct_and_union() {
        let g = figure6_graph();
        assert_eq!(g.distinct_records(&[0, 1]), 4);
        assert_eq!(g.union_records(&[0, 1]), vec![0, 1, 2, 3]);
        assert_eq!(g.distinct_records(&[0, 1, 2, 3]), 7);
        assert_eq!(g.distinct_records(&[]), 0);
    }

    #[test]
    fn extreme_scheme_bounds() {
        let g = figure6_graph();
        assert_eq!(g.min_storage_cost(), 7);
        assert!((g.min_checkout_cost() - 16.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn push_version_updates_counts() {
        let mut g = figure6_graph();
        let v = g.push_version(vec![6, 7, 8]);
        assert_eq!(v, 4);
        assert_eq!(g.num_versions(), 5);
        assert_eq!(g.num_records(), 9); // r8, r9 are new
        assert_eq!(g.num_edges(), 16 + 3);
    }

    #[test]
    fn dedups_and_sorts_input() {
        let g = BipartiteGraph::new(vec![vec![3, 1, 3, 2]]);
        assert_eq!(g.records_of(0), &[1, 2, 3]);
        assert_eq!(g.num_edges(), 3);
    }

    /// The 3-PARTITION reduction gadget from the proof of Theorem 1: for
    /// each integer a_i, a biclique of a_i versions × a_i records, plus D
    /// dummy records connected to every version. This pins the construction
    /// the NP-hardness proof relies on.
    #[test]
    fn three_partition_gadget() {
        let a = [2usize, 3, 4];
        let dummies = 2;
        let total: usize = a.iter().sum();
        let mut version_records = Vec::new();
        let mut next_record = dummies; // records 0..dummies are dummy
        for &ai in &a {
            let recs: Vec<RecordId> = (next_record..next_record + ai).collect();
            next_record += ai;
            for _ in 0..ai {
                let mut r = recs.clone();
                r.extend(0..dummies);
                version_records.push(r);
            }
        }
        let g = BipartiteGraph::new(version_records);
        assert_eq!(g.num_versions(), total);
        assert_eq!(g.num_records(), total + dummies);
        // Every version of block i shares only the dummies with blocks j≠i.
        assert_eq!(g.common_records(0, 2), dummies);
        assert_eq!(g.common_records(0, 1), a[0] + dummies);
    }
}
