//! LYRESPLIT (Algorithm 1): the light-weight ((1+δ)^ℓ, 1/δ)-approximation
//! for the NP-hard storage/checkout partitioning problem (Problem 1).
//!
//! The algorithm operates **only on the version tree**, never on the
//! version-record bipartite graph; per-component record counts come from
//! the telescoping identity of Lemma 1
//! (`|R| = Σ|R(v)| − Σ w(p(v), v)`), which is what makes LyreSplit ~10³×
//! faster than the record-set-based baselines (Section 5.2).
//!
//! Recursive step: a component `(V, R, E)` stays whole if
//! `|R|·|V| < |E|/δ`; otherwise some tree edge has weight `≤ δ|R|`
//! (guaranteed by Lemma 1), and cutting it splits the component in two.
//! The recursion level `ℓ` at termination bounds the storage blow-up by
//! `(1+δ)^ℓ` (Theorem 2).

use crate::partitioning::Partitioning;
use crate::version_graph::VersionTree;
use crate::VersionId;

/// Strategy for choosing among qualifying cut edges (the guarantee holds
/// for any choice; the paper uses version balance with a record-balance
/// tie-break).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgePick {
    /// Cut the edge with the smallest weight.
    SmallestWeight,
    /// Cut the edge that best balances version counts between the two
    /// sides, breaking ties by record balance (the paper's choice).
    #[default]
    BalancedVersions,
}

/// Outcome of a LyreSplit run.
#[derive(Debug, Clone)]
pub struct LyreSplitResult {
    pub partitioning: Partitioning,
    /// Recursion level `ℓ` at termination (0 when no split happened).
    pub levels: usize,
    /// The δ used.
    pub delta: f64,
}

/// Run LyreSplit with a fixed δ (Algorithm 1).
pub fn lyresplit(tree: &VersionTree, delta: f64, pick: EdgePick) -> LyreSplitResult {
    lyresplit_with_candidates(
        tree,
        delta,
        pick,
        &|v, comp_r| tree.weight_to_parent[v] as f64 <= delta * comp_r as f64,
        &|v| tree.weight_to_parent[v],
    )
}

/// Algorithm 1 with a custom candidate-edge predicate and ranking weight:
/// `candidate(v, |R|)` decides whether the edge `(p(v), v)` qualifies for
/// cutting given the current component's record count, and
/// `effective_weight(v)` is the weight used to rank candidates under
/// [`EdgePick::SmallestWeight`]. This generalization supports the
/// schema-aware variant of Appendix C.3.
pub(crate) fn lyresplit_with_candidates(
    tree: &VersionTree,
    delta: f64,
    pick: EdgePick,
    candidate: &dyn Fn(VersionId, u64) -> bool,
    effective_weight: &dyn Fn(VersionId) -> u64,
) -> LyreSplitResult {
    let n = tree.num_versions();
    let mut assignment = vec![0usize; n];
    if n == 0 {
        return LyreSplitResult {
            partitioning: Partitioning {
                assignment,
                num_partitions: 0,
            },
            levels: 0,
            delta,
        };
    }

    // Work queue of (component members, recursion level).
    let mut queue: Vec<(Vec<VersionId>, usize)> = vec![((0..n).collect(), 0)];
    let mut next_partition = 0usize;
    let mut max_level = 0usize;

    while let Some((members, level)) = queue.pop() {
        max_level = max_level.max(level);
        match try_split(tree, &members, delta, pick, candidate, effective_weight) {
            Some((side_a, side_b)) => {
                queue.push((side_a, level + 1));
                queue.push((side_b, level + 1));
            }
            None => {
                for &v in &members {
                    assignment[v] = next_partition;
                }
                next_partition += 1;
            }
        }
    }

    LyreSplitResult {
        partitioning: Partitioning {
            assignment,
            num_partitions: next_partition,
        },
        levels: max_level,
        delta,
    }
}

/// Component statistics computed from tree counts alone.
struct CompStats {
    /// Membership flags for O(1) parent-in-component checks.
    in_comp: Vec<bool>,
    r: u64,
    v: u64,
    e: u64,
}

fn comp_stats(tree: &VersionTree, members: &[VersionId], scratch: &mut Vec<bool>) -> CompStats {
    scratch.clear();
    scratch.resize(tree.num_versions(), false);
    for &v in members {
        scratch[v] = true;
    }
    let mut r = 0u64;
    let mut e = 0u64;
    for &v in members {
        e += tree.records[v];
        match tree.parent[v] {
            Some(p) if scratch[p] => r += tree.records[v].saturating_sub(tree.weight_to_parent[v]),
            _ => r += tree.records[v],
        }
    }
    CompStats {
        in_comp: scratch.clone(),
        r,
        v: members.len() as u64,
        e,
    }
}

/// One recursive step: `None` when the component is final, otherwise the
/// two sides after cutting the chosen edge.
fn try_split(
    tree: &VersionTree,
    members: &[VersionId],
    delta: f64,
    pick: EdgePick,
    candidate: &dyn Fn(VersionId, u64) -> bool,
    effective_weight: &dyn Fn(VersionId) -> u64,
) -> Option<(Vec<VersionId>, Vec<VersionId>)> {
    if members.len() <= 1 {
        return None;
    }
    let mut scratch = Vec::new();
    let stats = comp_stats(tree, members, &mut scratch);

    // Line 1: termination check |R|·|V| < |E|/δ.
    if (stats.r as f64) * (stats.v as f64) < stats.e as f64 / delta {
        return None;
    }

    // Line 5: qualifying edges Ω = {v | w(p(v), v) ≤ δ|R|, p(v) in comp}
    // (or the caller-supplied generalization of that predicate).
    let candidates: Vec<VersionId> = members
        .iter()
        .copied()
        .filter(|&v| match tree.parent[v] {
            Some(p) => stats.in_comp[p] && candidate(v, stats.r),
            None => false,
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }

    let cut = match pick {
        EdgePick::SmallestWeight => candidates
            .iter()
            .copied()
            .min_by_key(|&v| (effective_weight(v), v))
            .expect("candidates nonempty"),
        EdgePick::BalancedVersions => pick_balanced(tree, members, &stats, &candidates),
    };

    // Split: subtree rooted at `cut` (within the component) vs. the rest.
    let children = component_children(tree, members, &stats);
    let mut sub = Vec::new();
    let mut stack = vec![cut];
    let mut in_sub = vec![false; tree.num_versions()];
    while let Some(x) = stack.pop() {
        in_sub[x] = true;
        sub.push(x);
        for &c in &children[x] {
            stack.push(c);
        }
    }
    let rest: Vec<VersionId> = members.iter().copied().filter(|&v| !in_sub[v]).collect();
    debug_assert!(!rest.is_empty());
    Some((sub, rest))
}

/// Children lists restricted to the component.
fn component_children(
    tree: &VersionTree,
    members: &[VersionId],
    stats: &CompStats,
) -> Vec<Vec<VersionId>> {
    let mut ch = vec![Vec::new(); tree.num_versions()];
    for &v in members {
        if let Some(p) = tree.parent[v] {
            if stats.in_comp[p] {
                ch[p].push(v);
            }
        }
    }
    ch
}

/// The paper's edge-pick: minimize the version-count imbalance of the two
/// sides; ties broken by record balance. Both quantities come from a single
/// bottom-up pass over the component.
fn pick_balanced(
    tree: &VersionTree,
    members: &[VersionId],
    stats: &CompStats,
    candidates: &[VersionId],
) -> VersionId {
    // Bottom-up accumulation of subtree version counts and new-record sums.
    // Members are processed in reverse topological order: version ids are
    // assigned parent-before-child, so sorting suffices.
    let mut order: Vec<VersionId> = members.to_vec();
    order.sort_unstable();
    let mut sub_versions = vec![0u64; tree.num_versions()];
    let mut sub_newrecs = vec![0u64; tree.num_versions()];
    for &v in order.iter().rev() {
        let newrec = match tree.parent[v] {
            Some(p) if stats.in_comp[p] => tree.records[v].saturating_sub(tree.weight_to_parent[v]),
            _ => tree.records[v],
        };
        sub_versions[v] += 1;
        sub_newrecs[v] += newrec;
        if let Some(p) = tree.parent[v] {
            if stats.in_comp[p] {
                sub_versions[p] += sub_versions[v];
                sub_newrecs[p] += sub_newrecs[v];
            }
        }
    }

    let mut best = candidates[0];
    let mut best_key = (u64::MAX, u64::MAX, usize::MAX);
    for &v in candidates {
        let vs = sub_versions[v];
        let version_imbalance = (stats.v as i64 - 2 * vs as i64).unsigned_abs();
        // After the cut, the subtree side regains w(p(v), v) records at its
        // root (they are no longer shared within the component).
        let sub_records = sub_newrecs[v] + tree.weight_to_parent[v];
        let rest_records = stats.r - sub_newrecs[v];
        let record_imbalance = sub_records.abs_diff(rest_records);
        let key = (version_imbalance, record_imbalance, v);
        if key < best_key {
            best_key = key;
            best = v;
        }
    }
    best
}

/// Statistics of the δ binary search (Appendix B); also what Figures 10/11
/// time ("running time per binary-search iteration").
#[derive(Debug, Clone)]
pub struct BudgetSearch {
    pub iterations: usize,
    pub final_delta: f64,
    /// Tree-estimated storage cost of the returned partitioning.
    pub storage: u64,
}

/// Solve Problem 1 for a storage budget γ: binary search δ over
/// `[|E|/(|R||V|), 1]` until the resulting storage lands in `[0.99γ, γ]`
/// (Appendix B). Returns the best partitioning with `S ≤ γ` seen.
pub fn lyresplit_for_budget(
    tree: &VersionTree,
    gamma: u64,
    pick: EdgePick,
) -> (LyreSplitResult, BudgetSearch) {
    let r = tree.total_records().max(1);
    let v = tree.num_versions().max(1) as u64;
    let e = tree.total_edges().max(1);
    let mut lo = e as f64 / (r as f64 * v as f64);
    let mut hi = 1.0f64;
    lo = lo.min(1.0);

    // δ = lo keeps everything in (nearly) one partition. If even that
    // overshoots γ (possible only through float edge-cases or γ < |R|,
    // which is infeasible by Observation 2), fall back to the minimum-
    // storage single partition.
    let mut best = lyresplit(tree, lo, pick);
    let mut best_s = best.partitioning.storage_cost_tree(tree);
    if best_s > gamma {
        best = LyreSplitResult {
            partitioning: Partitioning::single(tree.num_versions()),
            levels: 0,
            delta: lo,
        };
        best_s = best.partitioning.storage_cost_tree(tree);
    }
    let mut iterations = 0usize;

    // Larger δ ⇒ more splits ⇒ more storage, less checkout cost. Find the
    // largest δ whose storage stays within budget.
    for _ in 0..64 {
        if hi - lo < 1e-9 {
            break;
        }
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        let res = lyresplit(tree, mid, pick);
        let s = res.partitioning.storage_cost_tree(tree);
        if s <= gamma {
            // Feasible: prefer it (more splits than `best` at smaller δ).
            best = res;
            best_s = s;
            lo = mid;
            if s as f64 >= 0.99 * gamma as f64 {
                break;
            }
        } else {
            hi = mid;
        }
    }

    let search = BudgetSearch {
        iterations,
        final_delta: best.delta,
        storage: best_s,
    };
    (best, search)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 8 example: a 7-version tree; with δ = 0.5 the algorithm
    /// terminates with three partitions after two levels.
    fn figure8_tree() -> VersionTree {
        // v1 (30 records) with children v2 (w=12), v3 (w=10);
        // v2 → v4 (w=3*... )
        // Weights/records from Figure 8: nodes carry record counts
        // 30, 12?, ... The figure labels edges 7,10,8,10,12,30 / 6,8,6,8,7,6.
        // We reconstruct a consistent tree matching the split behaviour:
        // node records:   v1=30, v2=12, v3=10, v4=7, v5=8, v6=10, v7=8
        // edge weights:   (v1,v2)=6, (v1,v3)=8, (v2,v4)=6, (v2,v5)=7,
        //                 (v3,v6)=8, (v3,v7)=6
        VersionTree {
            parent: vec![None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
            weight_to_parent: vec![0, 6, 8, 6, 7, 8, 6],
            records: vec![30, 12, 10, 7, 8, 10, 8],
        }
    }

    #[test]
    fn single_version_is_one_partition() {
        let t = VersionTree {
            parent: vec![None],
            weight_to_parent: vec![0],
            records: vec![5],
        };
        let r = lyresplit(&t, 0.5, EdgePick::BalancedVersions);
        assert_eq!(r.partitioning.num_partitions, 1);
        assert_eq!(r.levels, 0);
    }

    #[test]
    fn splits_recursively_at_half_delta() {
        let t = figure8_tree();
        let r = lyresplit(&t, 0.5, EdgePick::BalancedVersions);
        r.partitioning.validate().unwrap();
        assert!(r.partitioning.num_partitions >= 2);
        assert!(r.levels >= 1);
        // Each partition must be non-empty and cover all versions.
        let parts = r.partitioning.partitions();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn tiny_delta_keeps_single_partition() {
        let t = figure8_tree();
        // δ at the theoretical floor: |E|/(|R||V|).
        let delta = t.total_edges() as f64 / (t.total_records() as f64 * t.num_versions() as f64);
        let r = lyresplit(&t, delta * 0.999, EdgePick::BalancedVersions);
        assert_eq!(r.partitioning.num_partitions, 1);
    }

    #[test]
    fn delta_one_reaches_per_version_cost_bound() {
        let t = figure8_tree();
        let r = lyresplit(&t, 1.0, EdgePick::SmallestWeight);
        // Guarantee: Cavg < (1/δ)·|E|/|V| = |E|/|V| is the optimum, so with
        // δ=1 the bound says Cavg < |E|/|V| / 1... the strict bound of
        // Lemma 1 applies per-partition; check the theorem's inequality.
        let cavg = r.partitioning.checkout_cost_tree(&t);
        let bound = (1.0 / r.delta) * t.total_edges() as f64 / t.num_versions() as f64;
        assert!(cavg <= bound + 1e-9, "cavg={cavg} bound={bound}");
    }

    #[test]
    fn theorem2_bounds_hold_for_figure8() {
        let t = figure8_tree();
        for &delta in &[0.3f64, 0.5, 0.8, 1.0] {
            for pick in [EdgePick::SmallestWeight, EdgePick::BalancedVersions] {
                let r = lyresplit(&t, delta, pick);
                r.partitioning.validate().unwrap();
                let s = r.partitioning.storage_cost_tree(&t) as f64;
                let storage_bound = (1.0 + delta).powi(r.levels as i32) * t.total_records() as f64;
                assert!(
                    s <= storage_bound + 1e-9,
                    "S={s} > bound={storage_bound} at δ={delta} {pick:?}"
                );
                let cavg = r.partitioning.checkout_cost_tree(&t);
                let checkout_bound =
                    (1.0 / delta) * t.total_edges() as f64 / t.num_versions() as f64;
                assert!(
                    cavg <= checkout_bound + 1e-9,
                    "Cavg={cavg} > bound={checkout_bound} at δ={delta} {pick:?}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_delta() {
        let t = figure8_tree();
        let mut prev_s = 0u64;
        // Storage is monotone nondecreasing in δ (superset property of
        // Appendix B) for the smallest-weight pick.
        for &delta in &[0.2f64, 0.4, 0.6, 0.8, 1.0] {
            let r = lyresplit(&t, delta, EdgePick::SmallestWeight);
            let s = r.partitioning.storage_cost_tree(&t);
            assert!(s >= prev_s, "S({delta}) = {s} < {prev_s}");
            prev_s = s;
        }
    }

    #[test]
    fn budget_search_respects_gamma() {
        let t = figure8_tree();
        let r_total = t.total_records();
        for factor in [1.0f64, 1.2, 1.5, 2.0] {
            let gamma = (r_total as f64 * factor) as u64;
            let (res, search) = lyresplit_for_budget(&t, gamma, EdgePick::BalancedVersions);
            let s = res.partitioning.storage_cost_tree(&t);
            assert!(s <= gamma, "S={s} > γ={gamma}");
            assert!(search.storage == s);
        }
    }

    #[test]
    fn budget_search_uses_budget_to_reduce_checkout() {
        let t = figure8_tree();
        let tight = lyresplit_for_budget(&t, t.total_records(), EdgePick::BalancedVersions);
        let loose = lyresplit_for_budget(&t, 2 * t.total_records(), EdgePick::BalancedVersions);
        let c_tight = tight.0.partitioning.checkout_cost_tree(&t);
        let c_loose = loose.0.partitioning.checkout_cost_tree(&t);
        assert!(
            c_loose <= c_tight + 1e-9,
            "looser budget should not increase checkout cost ({c_loose} vs {c_tight})"
        );
    }

    #[test]
    fn partitions_are_connected_in_tree() {
        let t = figure8_tree();
        let r = lyresplit(&t, 0.6, EdgePick::BalancedVersions);
        for part in r.partitioning.partitions() {
            // Connectivity: exactly one member lacks an in-partition parent.
            let set: std::collections::HashSet<_> = part.iter().copied().collect();
            let roots = part
                .iter()
                .filter(|&&v| match t.parent[v] {
                    Some(p) => !set.contains(&p),
                    None => true,
                })
                .count();
            assert_eq!(roots, 1, "partition {part:?} is not connected");
        }
    }
}
