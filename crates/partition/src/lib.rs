//! # orpheus-partition
//!
//! The partition optimizer of OrpheusDB (Section 4 of the paper), as a
//! standalone, engine-independent crate.
//!
//! A collaborative versioned dataset induces a **version-record bipartite
//! graph** `G = (V, R, E)` (which version contains which record) and a much
//! smaller **version graph** (which version was derived from which). The
//! optimizer partitions versions — duplicating records across partitions —
//! to trade storage cost `S = Σ|Rk|` against checkout cost
//! `Cavg = Σ|Vk||Rk| / n`. Finding the optimal trade-off is NP-hard
//! (Theorem 1, by reduction from 3-PARTITION).
//!
//! This crate implements:
//! * [`mod@lyresplit`] — the paper's light-weight ((1+δ)^ℓ, 1/δ)-approximation
//!   operating only on the version tree (Algorithm 1), plus the binary
//!   search on δ for a storage budget (Appendix B);
//! * [`agglo`] and [`kmeans`] — the NScale baselines re-implemented from
//!   their description in Section 5.1;
//! * [`online`] — incremental maintenance as versions stream in, and
//! * [`migration`] — the intelligent migration engine (Section 4.3);
//! * [`weighted`] — weighted checkout cost (Appendix C.2) and
//! * [`schema_aware`] — schema-change-aware splitting (Appendix C.3).

pub mod agglo;
pub mod bipartite;
pub mod kmeans;
pub mod lyresplit;
pub mod migration;
pub mod online;
pub mod partitioning;
pub mod schema_aware;
pub mod sim;
pub mod version_graph;
pub mod weighted;

pub use bipartite::BipartiteGraph;
pub use lyresplit::{lyresplit, lyresplit_for_budget, EdgePick, LyreSplitResult};
pub use partitioning::Partitioning;
pub use version_graph::{VersionGraph, VersionTree};

/// Version identifier: dense index into the version set.
pub type VersionId = usize;

/// Record identifier: dense index into the record universe.
pub type RecordId = usize;
