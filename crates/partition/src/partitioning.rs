//! Partitionings of the version set, and the storage/checkout cost metrics
//! of Section 4.1.
//!
//! A partitioning assigns **every version to exactly one partition**;
//! records may be duplicated across partitions (Figure 6b). Costs:
//!
//! * storage cost `S = Σk |Rk|` (Equation 4.1),
//! * checkout cost `Cavg = Σk |Vk||Rk| / n` (Equation 4.2).

use crate::bipartite::BipartiteGraph;
use crate::version_graph::VersionTree;
use crate::VersionId;

/// Assignment of versions to partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[v]` = partition id in `0..num_partitions`.
    pub assignment: Vec<usize>,
    pub num_partitions: usize,
}

impl Partitioning {
    /// All versions in a single partition.
    pub fn single(num_versions: usize) -> Partitioning {
        Partitioning {
            assignment: vec![0; num_versions],
            num_partitions: if num_versions == 0 { 0 } else { 1 },
        }
    }

    /// Each version in its own partition.
    pub fn singletons(num_versions: usize) -> Partitioning {
        Partitioning {
            assignment: (0..num_versions).collect(),
            num_partitions: num_versions,
        }
    }

    /// Build from an assignment vector, compacting partition ids to a dense
    /// `0..K` range (stable in order of first appearance).
    pub fn from_assignment(raw: Vec<usize>) -> Partitioning {
        let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(raw.len());
        for a in raw {
            let next = remap.len();
            let id = *remap.entry(a).or_insert(next);
            assignment.push(id);
        }
        Partitioning {
            assignment,
            num_partitions: remap.len(),
        }
    }

    pub fn num_versions(&self) -> usize {
        self.assignment.len()
    }

    /// Versions per partition.
    pub fn partitions(&self) -> Vec<Vec<VersionId>> {
        let mut out = vec![Vec::new(); self.num_partitions];
        for (v, &p) in self.assignment.iter().enumerate() {
            out[p].push(v);
        }
        out
    }

    /// Partition id of a version.
    pub fn partition_of(&self, v: VersionId) -> usize {
        self.assignment[v]
    }

    /// Exact storage cost `S = Σ |Rk|` against the bipartite graph.
    pub fn storage_cost(&self, bip: &BipartiteGraph) -> u64 {
        self.partitions()
            .iter()
            .map(|vs| bip.distinct_records(vs) as u64)
            .sum()
    }

    /// Exact checkout cost `Cavg = Σ |Vk||Rk| / n`.
    pub fn checkout_cost(&self, bip: &BipartiteGraph) -> f64 {
        let n = self.num_versions();
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self
            .partitions()
            .iter()
            .map(|vs| (vs.len() * bip.distinct_records(vs)) as u64)
            .sum();
        total as f64 / n as f64
    }

    /// Checkout cost `Ci = |Rk|` of one version.
    pub fn checkout_cost_of(&self, bip: &BipartiteGraph, v: VersionId) -> u64 {
        let parts = self.partitions();
        bip.distinct_records(&parts[self.assignment[v]]) as u64
    }

    /// Tree-estimated storage cost: uses the connected-component record
    /// formula instead of probing record sets. Exact when every partition is
    /// connected in the tree (always true for LyreSplit output).
    pub fn storage_cost_tree(&self, tree: &VersionTree) -> u64 {
        self.partitions()
            .iter()
            .map(|vs| tree.component_records(vs))
            .sum()
    }

    /// Tree-estimated checkout cost (same caveat as
    /// [`Partitioning::storage_cost_tree`]).
    pub fn checkout_cost_tree(&self, tree: &VersionTree) -> f64 {
        let n = self.num_versions();
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self
            .partitions()
            .iter()
            .map(|vs| vs.len() as u64 * tree.component_records(vs))
            .sum();
        total as f64 / n as f64
    }

    /// Validate structural invariants: every version is assigned to exactly
    /// one in-range partition and no partition is empty.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.num_partitions];
        for (v, &p) in self.assignment.iter().enumerate() {
            if p >= self.num_partitions {
                return Err(format!(
                    "version {v} assigned to out-of-range partition {p}"
                ));
            }
            seen[p] = true;
        }
        if let Some(empty) = seen.iter().position(|s| !s) {
            return Err(format!("partition {empty} is empty"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::figure6_graph;

    #[test]
    fn extreme_partitionings_match_observations() {
        let g = figure6_graph();
        // Observation 2: single partition minimizes storage at |R|.
        let single = Partitioning::single(4);
        assert_eq!(single.storage_cost(&g), 7);
        assert_eq!(single.checkout_cost(&g), 7.0);
        // Observation 1: per-version partitions minimize checkout at |E|/|V|.
        let each = Partitioning::singletons(4);
        assert_eq!(each.storage_cost(&g), 16);
        assert!((each.checkout_cost(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn figure6b_partitioning_costs() {
        let g = figure6_graph();
        // P1 = {v1, v2}, P2 = {v3, v4} (Figure 6b): r2, r3, r4 duplicated.
        let p = Partitioning {
            assignment: vec![0, 0, 1, 1],
            num_partitions: 2,
        };
        assert_eq!(p.storage_cost(&g), 4 + 6);
        assert!((p.checkout_cost(&g) - (2.0 * 4.0 + 2.0 * 6.0) / 4.0).abs() < 1e-12);
        assert_eq!(p.checkout_cost_of(&g, 0), 4);
        assert_eq!(p.checkout_cost_of(&g, 3), 6);
    }

    #[test]
    fn from_assignment_compacts_ids() {
        let p = Partitioning::from_assignment(vec![7, 7, 3, 9]);
        assert_eq!(p.num_partitions, 3);
        assert_eq!(p.assignment, vec![0, 0, 1, 2]);
        p.validate().unwrap();
    }

    #[test]
    fn validate_catches_empty_partitions() {
        let p = Partitioning {
            assignment: vec![0, 0],
            num_partitions: 2,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn tree_estimates_agree_with_exact_for_connected_partitions() {
        let g = figure6_graph();
        let vg = crate::version_graph::VersionGraph::from_bipartite(
            &[vec![], vec![0], vec![0], vec![1, 2]],
            &g,
        );
        let tree = vg.to_tree();
        // Partition along the tree: {v1, v2} and {v3, v4} — v4's tree parent
        // is v3, so both components are connected.
        let p = Partitioning {
            assignment: vec![0, 0, 1, 1],
            num_partitions: 2,
        };
        // The tree treats v4's records shared with v2 as duplicated, so the
        // tree estimate may exceed the exact count, never undercount.
        assert!(p.storage_cost_tree(&tree) >= p.storage_cost(&g));
        assert!(p.checkout_cost_tree(&tree) >= p.checkout_cost(&g) - 1e-12);
        // On a pure tree (no merges) the estimate is exact.
        let vg2 = crate::version_graph::VersionGraph::from_bipartite(
            &[vec![], vec![0], vec![0], vec![2]],
            &g,
        );
        let tree2 = vg2.to_tree();
        assert_eq!(p.storage_cost_tree(&tree2), p.storage_cost(&g));
    }
}
