//! KMEANS — the k-means-clustering baseline (Algorithm 5 of NScale \[42\],
//! re-implemented from Section 5.1 of the OrpheusDB paper).
//!
//! K random versions seed the partitions; every other version joins the
//! centroid it shares the most records with; centroids become the union of
//! their members' records. Subsequent iterations move versions so as to
//! minimize the total record count across partitions. The paper runs 10
//! iterations and binary-searches K for a storage budget.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::bipartite::BipartiteGraph;
use crate::partitioning::Partitioning;
use crate::RecordId;

/// Number of refinement iterations (per the paper).
pub const DEFAULT_ITERATIONS: usize = 10;

/// Run KMEANS with `k` partitions. `bc` is the per-partition record
/// capacity; the paper's experiments use unbounded capacity (`usize::MAX`).
// `v` is simultaneously a version id (for `records_of`) and an index into
// `assignment`; the range loop is the clearest expression of that.
#[allow(clippy::needless_range_loop)]
pub fn kmeans(bip: &BipartiteGraph, k: usize, bc: usize, seed: u64) -> Partitioning {
    let n = bip.num_versions();
    if n == 0 {
        return Partitioning {
            assignment: vec![],
            num_partitions: 0,
        };
    }
    let k = k.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);

    // Seed with K random distinct versions.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let seeds: Vec<usize> = order[..k].to_vec();

    let mut centroids: Vec<HashSet<RecordId>> = seeds
        .iter()
        .map(|&v| bip.records_of(v).iter().copied().collect())
        .collect();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for (pid, &v) in seeds.iter().enumerate() {
        assignment[v] = Some(pid);
    }

    // Initial assignment: nearest centroid by common-record count.
    for v in 0..n {
        if assignment[v].is_some() {
            continue;
        }
        let recs = bip.records_of(v);
        let mut best = 0usize;
        let mut best_common = usize::MIN;
        for (pid, c) in centroids.iter().enumerate() {
            let common = recs.iter().filter(|r| c.contains(r)).count();
            if common > best_common && centroid_fits(recs, c, bc) {
                best_common = common;
                best = pid;
            }
        }
        assignment[v] = Some(best);
        centroids[best].extend(recs.iter().copied());
    }
    let mut assignment: Vec<usize> = assignment.into_iter().map(|a| a.unwrap()).collect();

    // Refinement: move each version to the partition minimizing the total
    // number of records across partitions, i.e. the marginal increase
    // |records(v) \ centroid|.
    for _ in 0..DEFAULT_ITERATIONS {
        let mut moved = false;
        for v in 0..n {
            let recs = bip.records_of(v);
            let current = assignment[v];
            let mut best = current;
            let mut best_increase = usize::MAX;
            for (pid, c) in centroids.iter().enumerate() {
                let increase = recs.iter().filter(|r| !c.contains(r)).count();
                if increase < best_increase && (pid == current || centroid_fits(recs, c, bc)) {
                    best_increase = increase;
                    best = pid;
                }
            }
            if best != current {
                assignment[v] = best;
                moved = true;
            }
        }
        // Recompute centroids as the union of member records.
        for c in &mut centroids {
            c.clear();
        }
        for v in 0..n {
            centroids[assignment[v]].extend(bip.records_of(v).iter().copied());
        }
        if !moved {
            break;
        }
    }

    Partitioning::from_assignment(assignment)
}

fn centroid_fits(recs: &[RecordId], centroid: &HashSet<RecordId>, bc: usize) -> bool {
    if bc == usize::MAX {
        return true;
    }
    let increase = recs.iter().filter(|r| !centroid.contains(r)).count();
    centroid.len() + increase <= bc
}

/// Statistics of the budget binary search over `K`.
#[derive(Debug, Clone)]
pub struct KmeansBudget {
    pub iterations: usize,
    pub final_k: usize,
    pub storage: u64,
}

/// Solve Problem 1 with KMEANS: binary search the number of partitions `K`
/// for the largest value whose storage cost meets the budget γ (larger K ⇒
/// more partitions ⇒ more storage, less checkout cost).
pub fn kmeans_for_budget(
    bip: &BipartiteGraph,
    gamma: u64,
    seed: u64,
) -> (Partitioning, KmeansBudget) {
    let n = bip.num_versions().max(1);
    let mut lo = 1usize;
    let mut hi = n;
    let mut best = kmeans(bip, 1, usize::MAX, seed);
    let mut best_s = best.storage_cost(bip);
    let mut best_k = 1usize;
    let mut iterations = 0;

    while lo <= hi && iterations < 20 {
        iterations += 1;
        let mid = lo + (hi - lo) / 2;
        let p = kmeans(bip, mid, usize::MAX, seed);
        let s = p.storage_cost(bip);
        if s <= gamma {
            best = p;
            best_s = s;
            best_k = mid;
            lo = mid + 1;
            if s as f64 >= 0.99 * gamma as f64 {
                break;
            }
        } else {
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        }
    }

    let stats = KmeansBudget {
        iterations,
        final_k: best_k,
        storage: best_s,
    };
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn k_one_is_single_partition() {
        let h = sim::tree(15, 3);
        let p = kmeans(&h.bipartite, 1, usize::MAX, 7);
        assert_eq!(p.num_partitions, 1);
        assert_eq!(
            p.storage_cost(&h.bipartite),
            h.bipartite.num_records() as u64
        );
    }

    #[test]
    fn k_equals_n_is_nearly_per_version() {
        let h = sim::tree(10, 4);
        let p = kmeans(&h.bipartite, 10, usize::MAX, 7);
        p.validate().unwrap();
        // Similar versions may still collapse together, but the partition
        // count must be substantial and the checkout cost near the floor.
        assert!(p.num_partitions >= 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let h = sim::tree(20, 8);
        let a = kmeans(&h.bipartite, 4, usize::MAX, 42);
        let b = kmeans(&h.bipartite, 4, usize::MAX, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn more_partitions_trade_storage_for_checkout() {
        let h = sim::tree(30, 15);
        let p2 = kmeans(&h.bipartite, 2, usize::MAX, 1);
        let p8 = kmeans(&h.bipartite, 8, usize::MAX, 1);
        let (s2, c2) = (
            p2.storage_cost(&h.bipartite),
            p2.checkout_cost(&h.bipartite),
        );
        let (s8, c8) = (
            p8.storage_cost(&h.bipartite),
            p8.checkout_cost(&h.bipartite),
        );
        assert!(s8 >= s2, "storage should grow with K ({s8} vs {s2})");
        assert!(c8 <= c2, "checkout should shrink with K ({c8} vs {c2})");
    }

    #[test]
    fn budget_search_meets_gamma() {
        let h = sim::tree(25, 21);
        let gamma = (h.bipartite.num_records() as f64 * 1.5) as u64;
        let (p, stats) = kmeans_for_budget(&h.bipartite, gamma, 5);
        p.validate().unwrap();
        assert!(p.storage_cost(&h.bipartite) <= gamma);
        assert!(stats.final_k >= 1);
    }
}
