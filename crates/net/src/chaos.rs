//! Fault-injection proxy for exercising the service layer's resilience.
//!
//! [`FlakyProxy`] sits between a [`crate::RemoteExecutor`] and a
//! [`crate::NetServer`], forwarding frames verbatim — until it severs the
//! connection. The cut is **frame-aware**: the proxy parses the length
//! prefix of every client-bound-for-server frame, forwards the frame
//! whole, and (when the configured countdown fires on a request frame)
//! kills both sockets *after* the request reached the server but *before*
//! its response can travel back. That is exactly the window where an
//! acknowledged-but-unobserved commit lives, so driving a client through
//! this proxy proves the reconnect + idempotent-replay path end to end: a
//! retry after the cut must return the original outcome, not execute the
//! commit twice.
//!
//! Only request frames (`Req`/`Batch` tags) arm the cut — handshake
//! frames pass freely so a reconnect can always complete. The countdown
//! is global across connections: with `drop_every = n`, every `n`-th
//! request frame through the proxy (across all connections and
//! reconnects) severs its connection, producing a steady storm of cuts
//! under sustained load.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use orpheus_core::{CoreError, Result};
use parking_lot::Mutex;

/// Frame tags that count toward the drop countdown (requests — the
/// frames whose lost ACK the replay machinery exists for). Values match
/// `proto.rs`.
const TAG_REQ: u8 = 3;
const TAG_BATCH: u8 = 4;

/// How often the accept loop polls between connection attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Shared proxy state: the countdown, counters, and the sockets to slam
/// on shutdown.
struct ProxyState {
    /// Sever the connection after every `drop_every`-th request frame;
    /// zero disables cutting (a transparent proxy).
    drop_every: u64,
    /// Request frames forwarded so far (all connections).
    requests: AtomicU64,
    /// Connections severed so far.
    cuts: AtomicU64,
    stop: AtomicBool,
    /// Live socket clones, shut down on stop so forwarding threads
    /// blocked in reads exit promptly.
    live: Mutex<Vec<TcpStream>>,
}

impl ProxyState {
    /// Whether this request frame is the one that kills the connection.
    // `u64::is_multiple_of` postdates the pinned MSRV (1.78).
    #[allow(clippy::manual_is_multiple_of)]
    fn fires(&self) -> bool {
        if self.drop_every == 0 {
            return false;
        }
        let n = self.requests.fetch_add(1, Ordering::SeqCst) + 1;
        n % self.drop_every == 0
    }
}

/// A TCP proxy that drops connections at frame boundaries — between a
/// forwarded request and its response. See the module docs.
#[derive(Debug)]
pub struct FlakyProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept: Option<JoinHandle<()>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ProxyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyState")
            .field("drop_every", &self.drop_every)
            .field("requests", &self.requests.load(Ordering::SeqCst))
            .field("cuts", &self.cuts.load(Ordering::SeqCst))
            .finish()
    }
}

impl FlakyProxy {
    /// Listen on an ephemeral local port and forward every connection to
    /// `upstream`, severing one connection per `drop_every` request
    /// frames (0 = never sever).
    pub fn start(upstream: impl ToSocketAddrs, drop_every: u64) -> Result<FlakyProxy> {
        let upstream = upstream
            .to_socket_addrs()
            .map_err(|e| CoreError::Network(format!("resolve failed: {e}")))?
            .next()
            .ok_or_else(|| CoreError::Network("upstream resolved to no address".to_string()))?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| CoreError::Network(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CoreError::Network(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| CoreError::Network(format!("set_nonblocking failed: {e}")))?;
        let state = Arc::new(ProxyState {
            drop_every,
            requests: AtomicU64::new(0),
            cuts: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            live: Mutex::new(Vec::new()),
        });
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let state = Arc::clone(&state);
            let threads = Arc::clone(&threads);
            std::thread::spawn(move || accept_loop(listener, upstream, state, threads))
        };
        Ok(FlakyProxy {
            addr,
            state,
            accept: Some(accept),
            threads,
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections severed so far.
    pub fn cuts(&self) -> u64 {
        self.state.cuts.load(Ordering::SeqCst)
    }

    /// Request frames forwarded so far.
    pub fn forwarded_requests(&self) -> u64 {
        self.state.requests.load(Ordering::SeqCst)
    }

    /// Stop proxying: slam every live connection and join all threads.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        for stream in self.state.live.lock().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for thread in std::mem::take(&mut *self.threads.lock()) {
            let _ = thread.join();
        }
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    state: Arc<ProxyState>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                {
                    let mut live = state.live.lock();
                    if let (Ok(c), Ok(s)) = (client.try_clone(), server.try_clone()) {
                        live.push(c);
                        live.push(s);
                    }
                }
                let forward = {
                    let state = Arc::clone(&state);
                    std::thread::spawn(move || forward_frames(client_r, server, state))
                };
                let backward = std::thread::spawn(move || copy_bytes(server_r, client));
                let mut ts = threads.lock();
                ts.push(forward);
                ts.push(backward);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Client → server direction: forward whole frames, and after forwarding
/// the request frame the countdown lands on, sever both sockets — the
/// request reached the server; its response never reaches the client.
fn forward_frames(mut client: TcpStream, mut server: TcpStream, state: Arc<ProxyState>) {
    loop {
        let mut len_buf = [0u8; 4];
        if read_exact_or_close(&mut client, &mut len_buf).is_err() {
            break;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        if read_exact_or_close(&mut client, &mut payload).is_err() {
            break;
        }
        if server.write_all(&len_buf).is_err() || server.write_all(&payload).is_err() {
            break;
        }
        let _ = server.flush();
        let is_request = payload.first() == Some(&TAG_REQ) || payload.first() == Some(&TAG_BATCH);
        if is_request && state.fires() {
            state.cuts.fetch_add(1, Ordering::SeqCst);
            break;
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

/// Server → client direction: raw byte relay (framing only matters on
/// the cut-deciding direction).
fn copy_bytes(mut server: TcpStream, mut client: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match server.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if client.write_all(&buf[..n]).is_err() {
                    break;
                }
                let _ = client.flush();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

fn read_exact_or_close(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    stream.read_exact(buf)
}
