//! Remote client: an [`Executor`] over a TCP connection.
//!
//! [`RemoteExecutor::connect`] performs the handshake (magic, protocol
//! version, user — login is connection setup) and then exposes the exact
//! [`Executor`] contract the rest of the workspace is written against:
//! `execute` round-trips one request, `batch` pipelines a whole vector in
//! one frame with per-request outcomes in submission order. The CLI, the
//! REPL, and the bench harness's `drive` run against it unchanged.
//!
//! Internally a response-reader thread owns the receive half of the
//! socket and fulfills [`Ticket`]s parked in a correlation-id map, so
//! [`RemoteExecutor::submit`] is fire-and-forget just like
//! [`orpheus_core::AsyncHandle::submit`] — callers overlap many requests
//! on one connection. Every wait goes through [`Ticket::wait_for`] with
//! the connection's timeout: a hung server yields a clean
//! [`CoreError::Network`] timeout instead of blocking the client forever.
//! A dead connection poisons all parked tickets, and later submissions
//! fail fast.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use orpheus_core::{CoreError, Executor, Request, Response, Result, Ticket, TicketFulfiller};
use parking_lot::Mutex;

use crate::proto::{read_frame, write_frame, Frame, MAX_FRAME, PROTOCOL_VERSION};

/// Default patience for one response before the wait reports a hung
/// connection.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// What a correlation id is waiting for.
enum Waiter {
    Single(TicketFulfiller),
    Batch(Vec<TicketFulfiller>),
}

#[derive(Default)]
struct PendingMap {
    waiters: HashMap<u64, Waiter>,
    /// Rendered message of a terminal server error (a `Resp` with id 0),
    /// kept so the poison message names the real cause instead of a bare
    /// "connection closed".
    last_server_error: Option<String>,
}

/// A connection to a [`crate::NetServer`], usable anywhere an
/// [`Executor`] is.
#[derive(Debug)]
pub struct RemoteExecutor {
    stream: TcpStream,
    user: String,
    timeout: Duration,
    next_id: u64,
    pending: Arc<Mutex<PendingMap>>,
    dead: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for PendingMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingMap")
            .field("waiting", &self.waiters.len())
            .finish()
    }
}

impl RemoteExecutor {
    /// Connect to `addr` and bind the connection to `user` (registering
    /// the account if needed, like `--as` locally).
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> Result<RemoteExecutor> {
        RemoteExecutor::connect_with(addr, user, DEFAULT_TIMEOUT)
    }

    /// [`RemoteExecutor::connect`] with an explicit response timeout.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        user: &str,
        timeout: Duration,
    ) -> Result<RemoteExecutor> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| CoreError::Network(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);

        // Handshake happens synchronously on the caller's thread, under
        // the same timeout discipline as every later wait.
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| CoreError::Network(format!("set_read_timeout failed: {e}")))?;
        write_frame(
            &mut stream,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                user: user.to_string(),
            },
        )?;
        let user = match read_frame(&mut stream, MAX_FRAME)? {
            Some(Frame::Welcome { version, user }) => {
                if version != PROTOCOL_VERSION {
                    return Err(CoreError::Protocol(format!(
                        "server answered with protocol version {version}, expected {PROTOCOL_VERSION}"
                    )));
                }
                user
            }
            Some(Frame::Resp { outcome, .. }) => {
                return Err((*outcome).err().unwrap_or_else(|| {
                    CoreError::Protocol("handshake rejected without an error".to_string())
                }));
            }
            Some(_) => {
                return Err(CoreError::Protocol(
                    "expected a welcome frame from the server".to_string(),
                ));
            }
            None => {
                return Err(CoreError::Network(
                    "server closed the connection during the handshake".to_string(),
                ));
            }
        };
        // From here the reader thread owns receiving; it blocks on the
        // socket until the connection ends (drop shuts the socket down,
        // which unblocks it). Ticket waits carry the timeout instead.
        stream
            .set_read_timeout(None)
            .map_err(|e| CoreError::Network(format!("set_read_timeout failed: {e}")))?;

        let pending: Arc<Mutex<PendingMap>> = Arc::new(Mutex::new(PendingMap::default()));
        let dead = Arc::new(AtomicBool::new(false));
        let reader = {
            let stream = stream
                .try_clone()
                .map_err(|e| CoreError::Network(format!("socket clone failed: {e}")))?;
            let pending = Arc::clone(&pending);
            let dead = Arc::clone(&dead);
            std::thread::spawn(move || reader_loop(stream, pending, dead))
        };
        Ok(RemoteExecutor {
            stream,
            user,
            timeout,
            next_id: 1,
            pending,
            dead,
            reader: Some(reader),
        })
    }

    /// The identity this connection acts as (rebound by a successful
    /// `Login`).
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The per-response timeout in force.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Change the per-response timeout for later waits.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    fn dead_error(&self) -> CoreError {
        let pending = self.pending.lock();
        match &pending.last_server_error {
            Some(message) => CoreError::Network(format!("connection lost: {message}")),
            None => CoreError::Network("connection lost".to_string()),
        }
    }

    /// Fire one request down the wire and return a [`Ticket`] the reader
    /// thread will fulfill. Never blocks on the response.
    pub fn submit(&mut self, request: impl Into<Request>) -> Ticket {
        if self.dead.load(Ordering::SeqCst) {
            return Ticket::ready(Err(self.dead_error()));
        }
        let id = self.next_id;
        self.next_id += 1;
        let (ticket, fulfiller) = Ticket::pending();
        self.pending
            .lock()
            .waiters
            .insert(id, Waiter::Single(fulfiller));
        let frame = Frame::Req {
            id,
            request: request.into(),
        };
        if let Err(e) = write_frame(&mut self.stream, &frame) {
            self.dead.store(true, Ordering::SeqCst);
            if let Some(Waiter::Single(fulfiller)) = self.pending.lock().waiters.remove(&id) {
                fulfiller.fulfill(Err(e));
            }
        }
        ticket
    }

    /// Fire a whole request vector as **one** frame, returning one ticket
    /// per request in submission order. The server plans the batch as a
    /// unit ([`orpheus_core::Executor::batch`] semantics: submission
    /// order, independent failures).
    pub fn submit_batch(&mut self, requests: Vec<Request>) -> Vec<Ticket> {
        if requests.is_empty() {
            return Vec::new();
        }
        if self.dead.load(Ordering::SeqCst) {
            let n = requests.len();
            return (0..n)
                .map(|_| Ticket::ready(Err(self.dead_error())))
                .collect();
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut tickets = Vec::with_capacity(requests.len());
        let mut fulfillers = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            let (ticket, fulfiller) = Ticket::pending();
            tickets.push(ticket);
            fulfillers.push(fulfiller);
        }
        self.pending
            .lock()
            .waiters
            .insert(id, Waiter::Batch(fulfillers));
        if let Err(e) = write_frame(&mut self.stream, &Frame::Batch { id, requests }) {
            self.dead.store(true, Ordering::SeqCst);
            if let Some(Waiter::Batch(fulfillers)) = self.pending.lock().waiters.remove(&id) {
                let message = e.to_string();
                for fulfiller in fulfillers {
                    fulfiller.fulfill(Err(CoreError::Network(message.clone())));
                }
            }
        }
        tickets
    }

    /// Wait on a ticket under this connection's timeout; a hung server
    /// becomes a [`CoreError::Network`] timeout, never an infinite block.
    fn wait(&self, ticket: &Ticket) -> Result<Response> {
        match ticket.wait_for(self.timeout) {
            Some(result) => result,
            None => Err(CoreError::Network(format!(
                "timed out after {:.1}s waiting for a response",
                self.timeout.as_secs_f64()
            ))),
        }
    }
}

impl Executor for RemoteExecutor {
    fn execute(&mut self, request: Request) -> Result<Response> {
        let rebind = match &request {
            Request::Login(login) => Some(login.user.clone()),
            _ => None,
        };
        let ticket = self.submit(request);
        let result = self.wait(&ticket);
        if let (Some(user), Ok(_)) = (rebind, &result) {
            // The server rebinds its connection handle on the same
            // outcome, so both sides agree on the identity.
            self.user = user;
        }
        result
    }

    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        let requests: Vec<Request> = requests.into_iter().collect();
        let rebinds: Vec<Option<String>> = requests
            .iter()
            .map(|r| match r {
                Request::Login(login) => Some(login.user.clone()),
                _ => None,
            })
            .collect();
        let tickets = self.submit_batch(requests);
        let results: Vec<Result<Response>> =
            tickets.iter().map(|ticket| self.wait(ticket)).collect();
        for (rebind, result) in rebinds.into_iter().zip(&results) {
            if let (Some(user), Ok(_)) = (rebind, result) {
                self.user = user;
            }
        }
        results
    }
}

impl Drop for RemoteExecutor {
    fn drop(&mut self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn poison(message: &str, pending: &Mutex<PendingMap>) {
    let mut pending = pending.lock();
    let message = match &pending.last_server_error {
        Some(cause) => format!("{message}: {cause}"),
        None => message.to_string(),
    };
    for (_, waiter) in pending.waiters.drain() {
        match waiter {
            Waiter::Single(fulfiller) => {
                fulfiller.fulfill(Err(CoreError::Network(message.clone())));
            }
            Waiter::Batch(fulfillers) => {
                for fulfiller in fulfillers {
                    fulfiller.fulfill(Err(CoreError::Network(message.clone())));
                }
            }
        }
    }
}

fn fulfill_mismatch(waiter: Waiter, what: &str) {
    let error = || CoreError::Protocol(format!("server answered a {what} for the wrong shape"));
    match waiter {
        Waiter::Single(fulfiller) => fulfiller.fulfill(Err(error())),
        Waiter::Batch(fulfillers) => {
            for fulfiller in fulfillers {
                fulfiller.fulfill(Err(error()));
            }
        }
    }
}

fn reader_loop(mut stream: TcpStream, pending: Arc<Mutex<PendingMap>>, dead: Arc<AtomicBool>) {
    loop {
        match read_frame(&mut stream, MAX_FRAME) {
            Ok(Some(Frame::Resp { id: 0, outcome })) => {
                // Terminal server-side report (handshake/protocol errors
                // carry no correlation id); remember it for the poison
                // message and let the close that follows end the loop.
                if let Err(e) = *outcome {
                    pending.lock().last_server_error = Some(e.to_string());
                }
            }
            Ok(Some(Frame::Resp { id, outcome })) => {
                match pending.lock().waiters.remove(&id) {
                    Some(Waiter::Single(fulfiller)) => fulfiller.fulfill(*outcome),
                    Some(waiter) => fulfill_mismatch(waiter, "single response"),
                    None => {} // abandoned after a timeout; drop it
                }
            }
            Ok(Some(Frame::BatchResp { id, outcomes })) => {
                match pending.lock().waiters.remove(&id) {
                    Some(Waiter::Batch(fulfillers)) => {
                        if fulfillers.len() == outcomes.len() {
                            for (fulfiller, outcome) in fulfillers.into_iter().zip(outcomes) {
                                fulfiller.fulfill(outcome);
                            }
                        } else {
                            for fulfiller in fulfillers {
                                fulfiller.fulfill(Err(CoreError::Protocol(
                                    "batch response arity mismatch".to_string(),
                                )));
                            }
                        }
                    }
                    Some(waiter) => fulfill_mismatch(waiter, "batch response"),
                    None => {}
                }
            }
            Ok(Some(_)) => {
                dead.store(true, Ordering::SeqCst);
                poison("unexpected client-bound frame", &pending);
                break;
            }
            Ok(None) => {
                dead.store(true, Ordering::SeqCst);
                poison("connection closed", &pending);
                break;
            }
            Err(e) => {
                dead.store(true, Ordering::SeqCst);
                pending
                    .lock()
                    .last_server_error
                    .get_or_insert_with(|| e.to_string());
                poison("connection failed", &pending);
                break;
            }
        }
    }
}
