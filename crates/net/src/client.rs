//! Remote client: an [`Executor`] over a TCP connection, with
//! reconnect-and-replay fault tolerance.
//!
//! [`RemoteExecutor::connect`] performs the handshake (magic, protocol
//! version, user — login is connection setup) and then exposes the exact
//! [`Executor`] contract the rest of the workspace is written against:
//! `execute` round-trips one request, `batch` pipelines a whole vector in
//! one frame with per-request outcomes in submission order. The CLI, the
//! REPL, and the bench harness's `drive` run against it unchanged.
//!
//! Internally a **link thread** owns the receive half of the socket and
//! fulfills [`Ticket`]s parked in a correlation-id map, so
//! [`RemoteExecutor::submit`] is fire-and-forget just like
//! [`orpheus_core::AsyncHandle::submit`] — callers overlap many requests
//! on one connection. Every wait goes through [`Ticket::wait_for`] with
//! the connection's timeout: a hung server yields a clean
//! [`CoreError::ResponseTimeout`] (naming the last-known link state)
//! instead of blocking the client forever.
//!
//! # Reconnect and idempotent replay
//!
//! When the connection drops, the link thread reconnects with capped
//! exponential backoff plus jitter ([`RetryPolicy`]), quoting the session
//! id the server issued at the first handshake. On a successful resume it
//! **replays** every in-flight frame — the stored wire bytes, in id order
//! — before new submissions proceed; the server's per-session replay
//! cache answers frames it already executed with their original outcome,
//! so a commit whose ACK was lost lands exactly once. Submissions made
//! while disconnected queue in the same map and are flushed by the
//! replay. Two outcomes end the optimism: the server no longer knows the
//! session (in-flight requests fail with a clear "session lost" error —
//! their outcomes are unknowable — while the connection stays usable for
//! new work), or the reconnect budget is exhausted (the link dies and
//! every pending and later request fails fast).
//!
//! A shed request ([`CoreError::Overloaded`]) never executed, so
//! [`RemoteExecutor::execute`] transparently retries it — honoring the
//! server's `retry_after_ms` hint — up to
//! [`RetryPolicy::overload_retries`] times before surfacing the error.

use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hasher};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use orpheus_core::{CoreError, Executor, Request, Response, Result, Ticket, TicketFulfiller};
use parking_lot::Mutex;

use crate::proto::{read_frame, write_frame, write_payload, Frame, MAX_FRAME, PROTOCOL_VERSION};

/// Default patience for one response before the wait reports a hung
/// connection.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// How long one reconnect's TCP connect may take before counting as a
/// failed attempt (also bounds how long a drop can stall on the link
/// thread).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Reconnect/retry tuning for [`RemoteExecutor::connect_with_policy`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Consecutive failed reconnect attempts before the link is declared
    /// dead. Zero disables reconnection entirely (a drop poisons all
    /// pending requests immediately, the pre-resilience behavior).
    pub max_reconnects: u32,
    /// First backoff delay; attempt *n* waits `base_delay * 2^n`, capped.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a random
    /// factor in `[1 - jitter/2, 1 + jitter/2]` so a fleet of clients
    /// severed together does not reconnect in lockstep.
    pub jitter: f64,
    /// Transparent retries of a request shed with
    /// [`CoreError::Overloaded`] before the error surfaces to the caller.
    pub overload_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_reconnects: 8,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(1),
            jitter: 0.5,
            overload_retries: 4,
        }
    }
}

impl RetryPolicy {
    /// A policy that never reconnects and never retries: failures surface
    /// immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_reconnects: 0,
            overload_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Counters of the resilience machinery, for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Successful reconnect handshakes after a dropped connection.
    pub reconnects: u64,
    /// In-flight frames re-sent during reconnect replays.
    pub replayed: u64,
    /// Transparent retries after an [`CoreError::Overloaded`] shed.
    pub overload_retries: u64,
}

/// What a correlation id is waiting for.
enum Waiter {
    Single(TicketFulfiller),
    Batch(Vec<TicketFulfiller>),
}

/// One in-flight frame: its waiter plus the encoded wire bytes kept for
/// reconnect replay.
struct InFlight {
    waiter: Waiter,
    wire: Vec<u8>,
}

#[derive(Default)]
struct PendingMap {
    /// Ordered by correlation id so a replay re-sends frames in their
    /// original submission order (the server's writer answers in order).
    waiters: BTreeMap<u64, InFlight>,
    /// Rendered message of a terminal server error (a `Resp` with id 0),
    /// kept so the poison message names the real cause instead of a bare
    /// "connection closed".
    last_server_error: Option<String>,
}

/// State shared between the caller-facing [`RemoteExecutor`] and its link
/// thread. Lock order where both are needed: `write` before `pending`.
struct Link {
    /// The send half of the current connection; `None` while the link
    /// thread is between connections (submissions then queue in `pending`
    /// and ride the next replay).
    write: Mutex<Option<TcpStream>>,
    pending: Mutex<PendingMap>,
    /// Set once the link is permanently down (drop, reconnects exhausted,
    /// protocol violation): pending requests are poisoned and later
    /// submissions fail fast.
    dead: AtomicBool,
    /// The session id the server issued; quoted on every reconnect.
    session: AtomicU64,
    /// Identity for reconnect handshakes (tracks `Login` rebinds).
    user: Mutex<String>,
    /// Human-readable link state, embedded in
    /// [`CoreError::ResponseTimeout`] so a timeout names what the client
    /// knew ("reconnecting", "connected", ...).
    state: Mutex<String>,
    server: SocketAddr,
    reconnects: AtomicU64,
    replayed: AtomicU64,
    overload_retries: AtomicU64,
}

impl Link {
    fn set_state(&self, state: String) {
        *self.state.lock() = state;
    }

    fn describe(&self) -> String {
        let in_flight = self.pending.lock().waiters.len();
        format!("{}; {} in flight", *self.state.lock(), in_flight)
    }
}

/// A connection to a [`crate::NetServer`], usable anywhere an
/// [`Executor`] is.
pub struct RemoteExecutor {
    link: Arc<Link>,
    user: String,
    timeout: Duration,
    policy: RetryPolicy,
    next_id: u64,
    reader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RemoteExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteExecutor")
            .field("user", &self.user)
            .field("server", &self.link.server)
            .field("state", &self.link.describe())
            .finish()
    }
}

impl RemoteExecutor {
    /// Connect to `addr` and bind the connection to `user` (registering
    /// the account if needed, like `--as` locally).
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> Result<RemoteExecutor> {
        RemoteExecutor::connect_with(addr, user, DEFAULT_TIMEOUT)
    }

    /// [`RemoteExecutor::connect`] with an explicit response timeout.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        user: &str,
        timeout: Duration,
    ) -> Result<RemoteExecutor> {
        RemoteExecutor::connect_with_policy(addr, user, timeout, RetryPolicy::default())
    }

    /// [`RemoteExecutor::connect`] with explicit timeout and
    /// reconnect/retry policy. The initial connect is synchronous and
    /// one-shot (its errors surface here); the policy governs what
    /// happens when an *established* connection drops.
    pub fn connect_with_policy(
        addr: impl ToSocketAddrs,
        user: &str,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<RemoteExecutor> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| CoreError::Network(format!("connect failed: {e}")))?;
        let server = stream
            .peer_addr()
            .map_err(|e| CoreError::Network(format!("peer_addr failed: {e}")))?;
        let (user, session) = handshake(&mut stream, user, None, timeout)?;
        let link = Arc::new(Link {
            write: Mutex::new(Some(
                stream
                    .try_clone()
                    .map_err(|e| CoreError::Network(format!("socket clone failed: {e}")))?,
            )),
            pending: Mutex::new(PendingMap::default()),
            dead: AtomicBool::new(false),
            session: AtomicU64::new(session),
            user: Mutex::new(user.clone()),
            state: Mutex::new(format!("connected (session {session})")),
            server,
            reconnects: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            overload_retries: AtomicU64::new(0),
        });
        let reader = {
            let link = Arc::clone(&link);
            std::thread::spawn(move || link_loop(link, stream, policy, timeout))
        };
        Ok(RemoteExecutor {
            link,
            user,
            timeout,
            policy,
            next_id: 1,
            reader: Some(reader),
        })
    }

    /// The identity this connection acts as (rebound by a successful
    /// `Login`).
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The per-response timeout in force.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Change the per-response timeout for later waits.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The session id the server issued at the handshake.
    pub fn session(&self) -> u64 {
        self.link.session.load(Ordering::SeqCst)
    }

    /// The link's resilience counters so far.
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats {
            reconnects: self.link.reconnects.load(Ordering::SeqCst),
            replayed: self.link.replayed.load(Ordering::SeqCst),
            overload_retries: self.link.overload_retries.load(Ordering::SeqCst),
        }
    }

    /// The last-known link state, as embedded in timeout errors.
    pub fn link_state(&self) -> String {
        self.link.describe()
    }

    fn dead_error(&self) -> CoreError {
        let pending = self.link.pending.lock();
        match &pending.last_server_error {
            Some(message) => CoreError::Network(format!("connection lost: {message}")),
            None => CoreError::Network("connection lost".to_string()),
        }
    }

    /// Fire one request down the wire and return a [`Ticket`] the link
    /// thread will fulfill. Never blocks on the response. While the link
    /// is between connections the frame queues and rides the next
    /// reconnect's replay.
    pub fn submit(&mut self, request: impl Into<Request>) -> Ticket {
        if self.link.dead.load(Ordering::SeqCst) {
            return Ticket::ready(Err(self.dead_error()));
        }
        let id = self.next_id;
        self.next_id += 1;
        let (ticket, fulfiller) = Ticket::pending();
        let wire = Frame::Req {
            id,
            request: request.into(),
        }
        .encode();
        self.send(id, Waiter::Single(fulfiller), wire);
        ticket
    }

    /// Fire a whole request vector as **one** frame, returning one ticket
    /// per request in submission order. The server plans the batch as a
    /// unit ([`orpheus_core::Executor::batch`] semantics: submission
    /// order, independent failures).
    pub fn submit_batch(&mut self, requests: Vec<Request>) -> Vec<Ticket> {
        if requests.is_empty() {
            return Vec::new();
        }
        if self.link.dead.load(Ordering::SeqCst) {
            let n = requests.len();
            return (0..n)
                .map(|_| Ticket::ready(Err(self.dead_error())))
                .collect();
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut tickets = Vec::with_capacity(requests.len());
        let mut fulfillers = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            let (ticket, fulfiller) = Ticket::pending();
            tickets.push(ticket);
            fulfillers.push(fulfiller);
        }
        let wire = Frame::Batch { id, requests }.encode();
        self.send(id, Waiter::Batch(fulfillers), wire);
        tickets
    }

    /// Register the in-flight entry and attempt to send it. Registration
    /// happens under the write lock *before* the send, so a reconnect
    /// replay racing this call either sees the entry (and replays it —
    /// the send below then hit the old, dead socket) or does not (and
    /// this send lands on the fresh socket once the lock is free); the
    /// frame is never lost and never sent twice on one connection.
    fn send(&mut self, id: u64, waiter: Waiter, wire: Vec<u8>) {
        let mut write = self.link.write.lock();
        self.link.pending.lock().waiters.insert(
            id,
            InFlight {
                waiter,
                wire: wire.clone(),
            },
        );
        if let Some(stream) = write.as_mut() {
            if write_payload(stream, &wire).is_err() {
                // The connection broke under us. Shut the socket down so
                // the link thread's blocking read notices immediately and
                // starts the reconnect (which will replay this frame).
                let _ = stream.shutdown(Shutdown::Both);
                *write = None;
            }
        }
    }

    /// Wait on a ticket under this connection's timeout; a hung server
    /// becomes a [`CoreError::ResponseTimeout`] naming the last-known
    /// link state, never an infinite block.
    fn wait(&self, ticket: &Ticket) -> Result<Response> {
        match ticket.wait_for(self.timeout) {
            Some(result) => result,
            None => Err(CoreError::ResponseTimeout {
                waited_ms: self.timeout.as_millis() as u64,
                state: self.link.describe(),
            }),
        }
    }

    /// One execute round-trip without the overload-retry loop.
    fn execute_once(&mut self, request: Request) -> Result<Response> {
        let rebind = match &request {
            Request::Login(login) => Some(login.user.clone()),
            _ => None,
        };
        let ticket = self.submit(request);
        let result = self.wait(&ticket);
        if let (Some(user), Ok(_)) = (rebind, &result) {
            // The server rebinds its connection handle on the same
            // outcome, so both sides agree on the identity.
            self.user = user.clone();
            *self.link.user.lock() = user;
        }
        result
    }

    /// Sleep out an [`CoreError::Overloaded`] shed before retrying:
    /// whichever is longer of the server's `retry_after_ms` hint and this
    /// attempt's jittered backoff.
    fn overload_backoff(&self, attempt: u32, retry_after_ms: u64) {
        let backoff = backoff_delay(&self.policy, attempt, &mut rng_seed());
        let hint = Duration::from_millis(retry_after_ms);
        std::thread::sleep(backoff.max(hint));
    }
}

impl Executor for RemoteExecutor {
    fn execute(&mut self, request: Request) -> Result<Response> {
        let mut attempt = 0;
        loop {
            let result = self.execute_once(request.clone());
            match &result {
                // A shed request provably never executed, so retrying it
                // (as fresh work, under a fresh id) is safe.
                Err(CoreError::Overloaded { retry_after_ms })
                    if attempt < self.policy.overload_retries =>
                {
                    let retry_after_ms = *retry_after_ms;
                    attempt += 1;
                    self.link.overload_retries.fetch_add(1, Ordering::SeqCst);
                    self.overload_backoff(attempt, retry_after_ms);
                }
                _ => return result,
            }
        }
    }

    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        let requests: Vec<Request> = requests.into_iter().collect();
        let rebinds: Vec<Option<String>> = requests
            .iter()
            .map(|r| match r {
                Request::Login(login) => Some(login.user.clone()),
                _ => None,
            })
            .collect();
        let mut attempt = 0;
        let results = loop {
            let tickets = self.submit_batch(requests.clone());
            let results: Vec<Result<Response>> =
                tickets.iter().map(|ticket| self.wait(ticket)).collect();
            // The server sheds a batch wholesale (it never partially
            // executes an overloaded batch), so retrying is safe exactly
            // when *every* outcome is the shed error.
            let all_shed = !results.is_empty()
                && results
                    .iter()
                    .all(|r| matches!(r, Err(CoreError::Overloaded { .. })));
            if !all_shed || attempt >= self.policy.overload_retries {
                break results;
            }
            let retry_after_ms = results
                .iter()
                .find_map(|r| match r {
                    Err(CoreError::Overloaded { retry_after_ms }) => Some(*retry_after_ms),
                    _ => None,
                })
                .unwrap_or(0);
            attempt += 1;
            self.link.overload_retries.fetch_add(1, Ordering::SeqCst);
            self.overload_backoff(attempt, retry_after_ms);
        };
        for (rebind, result) in rebinds.into_iter().zip(&results) {
            if let (Some(user), Ok(_)) = (rebind, result) {
                self.user = user.clone();
                *self.link.user.lock() = user;
            }
        }
        results
    }
}

impl Drop for RemoteExecutor {
    fn drop(&mut self) {
        self.link.dead.store(true, Ordering::SeqCst);
        if let Some(stream) = self.link.write.lock().as_ref() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake (shared by first connect and reconnects).
// ---------------------------------------------------------------------------

/// Say hello and digest the answer: `(bound user, session id)` on a fresh
/// session. With `resume`, the error distinguishes an outright refusal
/// from a lost session via [`HandshakeError`].
fn handshake(
    stream: &mut TcpStream,
    user: &str,
    resume: Option<u64>,
    timeout: Duration,
) -> Result<(String, u64)> {
    let (user, session, _resumed) = handshake_inner(stream, user, resume, timeout)?;
    Ok((user, session))
}

fn handshake_inner(
    stream: &mut TcpStream,
    user: &str,
    resume: Option<u64>,
    timeout: Duration,
) -> Result<(String, u64, bool)> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| CoreError::Network(format!("set_read_timeout failed: {e}")))?;
    write_frame(
        stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            user: user.to_string(),
            resume,
        },
    )?;
    match read_frame(stream, MAX_FRAME)? {
        Some(Frame::Welcome {
            version,
            user,
            session,
            resumed,
        }) => {
            if version != PROTOCOL_VERSION {
                return Err(CoreError::Protocol(format!(
                    "server answered with protocol version {version}, expected {PROTOCOL_VERSION}"
                )));
            }
            // From here the link thread owns receiving; it blocks on the
            // socket until the connection ends. Ticket waits carry the
            // timeout instead.
            stream
                .set_read_timeout(None)
                .map_err(|e| CoreError::Network(format!("set_read_timeout failed: {e}")))?;
            Ok((user, session, resumed))
        }
        Some(Frame::Resp { outcome, .. }) => Err((*outcome).err().unwrap_or_else(|| {
            CoreError::Protocol("handshake rejected without an error".to_string())
        })),
        Some(_) => Err(CoreError::Protocol(
            "expected a welcome frame from the server".to_string(),
        )),
        None => Err(CoreError::Network(
            "server closed the connection during the handshake".to_string(),
        )),
    }
}

// ---------------------------------------------------------------------------
// The link thread: read, and on disconnect reconnect-and-replay.
// ---------------------------------------------------------------------------

/// A cheap xorshift64* generator for backoff jitter, seeded from the
/// process's hash randomness (no `rand` dependency in this crate).
fn rng_seed() -> u64 {
    let seed = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    seed | 1 // xorshift must not start at zero
}

fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Attempt `n`'s delay: `base * 2^n` capped at `max_delay`, scaled by a
/// jitter factor in `[1 - jitter/2, 1 + jitter/2]`.
fn backoff_delay(policy: &RetryPolicy, attempt: u32, rng: &mut u64) -> Duration {
    let base = policy.base_delay.as_secs_f64() * f64::from(2u32.saturating_pow(attempt.min(20)));
    let capped = base.min(policy.max_delay.as_secs_f64());
    let jitter = policy.jitter.clamp(0.0, 1.0);
    let unit = (next_rand(rng) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    let factor = 1.0 - jitter / 2.0 + jitter * unit;
    Duration::from_secs_f64((capped * factor).max(0.0))
}

/// Sleep `delay` in short slices, bailing out early if the link dies
/// (drop must not wait out a long backoff).
fn sleep_unless_dead(link: &Link, delay: Duration) -> bool {
    let slice = Duration::from_millis(20);
    let mut remaining = delay;
    while remaining > Duration::ZERO {
        if link.dead.load(Ordering::SeqCst) {
            return false;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
    !link.dead.load(Ordering::SeqCst)
}

fn poison(message: &str, link: &Link) {
    let mut pending = link.pending.lock();
    let message = match &pending.last_server_error {
        Some(cause) => format!("{message}: {cause}"),
        None => message.to_string(),
    };
    for (_, in_flight) in std::mem::take(&mut pending.waiters) {
        fulfill_error(in_flight.waiter, CoreError::Network(message.clone()));
    }
}

fn fulfill_error(waiter: Waiter, error: CoreError) {
    match waiter {
        Waiter::Single(fulfiller) => fulfiller.fulfill(Err(error)),
        Waiter::Batch(fulfillers) => {
            for fulfiller in fulfillers {
                fulfiller.fulfill(Err(error.clone()));
            }
        }
    }
}

fn fulfill_mismatch(waiter: Waiter, what: &str) {
    fulfill_error(
        waiter,
        CoreError::Protocol(format!("server answered a {what} for the wrong shape")),
    );
}

/// Why the read phase ended.
enum ReadEnd {
    /// The socket closed or failed: reconnectable.
    Disconnected(String),
    /// The server spoke gibberish: not reconnectable (replaying against a
    /// peer we cannot parse is hopeless).
    Fatal(String),
}

/// Drain responses off one connection until it ends.
fn read_phase(link: &Link, stream: &mut TcpStream) -> ReadEnd {
    loop {
        match read_frame(stream, MAX_FRAME) {
            Ok(Some(Frame::Resp { id: 0, outcome })) => {
                // Terminal server-side report (handshake/protocol errors
                // carry no correlation id); remember it for the poison
                // message and let the close that follows end the loop.
                if let Err(e) = *outcome {
                    link.pending.lock().last_server_error = Some(e.to_string());
                }
            }
            Ok(Some(Frame::Resp { id, outcome })) => {
                match link.pending.lock().waiters.remove(&id) {
                    Some(InFlight {
                        waiter: Waiter::Single(fulfiller),
                        ..
                    }) => fulfiller.fulfill(*outcome),
                    Some(in_flight) => fulfill_mismatch(in_flight.waiter, "single response"),
                    None => {} // abandoned after a timeout; drop it
                }
            }
            Ok(Some(Frame::BatchResp { id, outcomes })) => {
                match link.pending.lock().waiters.remove(&id) {
                    Some(InFlight {
                        waiter: Waiter::Batch(fulfillers),
                        ..
                    }) => {
                        if fulfillers.len() == outcomes.len() {
                            for (fulfiller, outcome) in fulfillers.into_iter().zip(outcomes) {
                                fulfiller.fulfill(outcome);
                            }
                        } else {
                            for fulfiller in fulfillers {
                                fulfiller.fulfill(Err(CoreError::Protocol(
                                    "batch response arity mismatch".to_string(),
                                )));
                            }
                        }
                    }
                    Some(in_flight) => fulfill_mismatch(in_flight.waiter, "batch response"),
                    None => {}
                }
            }
            Ok(Some(_)) => {
                return ReadEnd::Fatal("unexpected client-bound frame".to_string());
            }
            Ok(None) => {
                return ReadEnd::Disconnected("connection closed".to_string());
            }
            Err(CoreError::Protocol(m)) => {
                return ReadEnd::Fatal(format!("protocol error: {m}"));
            }
            Err(e) => {
                return ReadEnd::Disconnected(e.to_string());
            }
        }
    }
}

/// One reconnect attempt: dial, resume the session, replay in-flight
/// frames, install the new send half. On a resume the server did not
/// recognize, pending requests are failed (their outcomes are unknowable
/// without the server's dedup state) but the fresh connection is still
/// installed for new work.
fn try_reconnect(link: &Link, timeout: Duration) -> Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&link.server, CONNECT_TIMEOUT)
        .map_err(|e| CoreError::Network(format!("connect failed: {e}")))?;
    let user = link.user.lock().clone();
    let session = link.session.load(Ordering::SeqCst);
    let (_user, new_session, resumed) =
        handshake_inner(&mut stream, &user, Some(session), timeout)?;
    let mut write = link.write.lock();
    let mut pending = link.pending.lock();
    if resumed {
        // Replay every in-flight frame in id order; the server's replay
        // cache answers already-executed ids with their original outcome.
        for in_flight in pending.waiters.values() {
            write_payload(&mut stream, &in_flight.wire)?;
            link.replayed.fetch_add(1, Ordering::SeqCst);
        }
    } else {
        link.session.store(new_session, Ordering::SeqCst);
        let error = CoreError::Network(
            "session lost by server; the outcome of this in-flight request is unknown".to_string(),
        );
        for (_, in_flight) in std::mem::take(&mut pending.waiters) {
            fulfill_error(in_flight.waiter, error.clone());
        }
    }
    *write = Some(
        stream
            .try_clone()
            .map_err(|e| CoreError::Network(format!("socket clone failed: {e}")))?,
    );
    Ok(stream)
}

/// Reconnect with capped exponential backoff and jitter; honors
/// [`CoreError::Overloaded`] refusals' `retry_after_ms` hint. `None`
/// means the budget is exhausted (or the link died while waiting).
fn reconnect(link: &Link, policy: &RetryPolicy, timeout: Duration) -> Option<TcpStream> {
    let mut rng = rng_seed();
    for attempt in 0..policy.max_reconnects {
        if link.dead.load(Ordering::SeqCst) {
            return None;
        }
        link.set_state(format!(
            "reconnecting (attempt {}/{})",
            attempt + 1,
            policy.max_reconnects
        ));
        let delay = backoff_delay(policy, attempt, &mut rng);
        if !sleep_unless_dead(link, delay) {
            return None;
        }
        match try_reconnect(link, timeout) {
            Ok(stream) => {
                link.reconnects.fetch_add(1, Ordering::SeqCst);
                let session = link.session.load(Ordering::SeqCst);
                link.set_state(format!("connected (session {session})"));
                return Some(stream);
            }
            Err(CoreError::Overloaded { retry_after_ms }) => {
                // The server is shedding connections; its hint extends
                // (never shortens) this attempt's backoff.
                link.set_state("server overloaded; backing off".to_string());
                if !sleep_unless_dead(link, Duration::from_millis(retry_after_ms)) {
                    return None;
                }
            }
            Err(e) => {
                link.set_state(format!("reconnect attempt failed: {e}"));
            }
        }
    }
    None
}

/// The link thread: drain responses; on disconnect, reconnect and replay;
/// on permanent failure, poison everything and die.
fn link_loop(link: Arc<Link>, mut stream: TcpStream, policy: RetryPolicy, timeout: Duration) {
    loop {
        let end = read_phase(&link, &mut stream);
        // Whatever happens next, the old send half must not be used.
        *link.write.lock() = None;
        if link.dead.load(Ordering::SeqCst) {
            poison("connection closed", &link);
            return;
        }
        let cause = match end {
            ReadEnd::Fatal(cause) => {
                link.dead.store(true, Ordering::SeqCst);
                link.set_state(format!("link dead: {cause}"));
                poison(&cause, &link);
                return;
            }
            ReadEnd::Disconnected(cause) => cause,
        };
        link.set_state(format!("disconnected: {cause}"));
        match reconnect(&link, &policy, timeout) {
            Some(new_stream) => stream = new_stream,
            None => {
                link.dead.store(true, Ordering::SeqCst);
                link.set_state(format!(
                    "link dead after {} reconnect attempts (last cause: {cause})",
                    policy.max_reconnects
                ));
                poison("connection lost (reconnect budget exhausted)", &link);
                return;
            }
        }
    }
}
