//! Frame layer of the wire protocol: length-prefixed, versioned, typed.
//!
//! Every message on the socket is one frame:
//!
//! ```text
//! [u32 BE payload length][payload]
//!           payload = [u8 frame tag][frame body]
//! ```
//!
//! The length prefix is big-endian (network order, like the TCP/IP stack
//! the frames ride on); everything inside the payload uses the
//! little-endian [`crate::codec`]. A connection starts with a handshake:
//! the client sends [`Frame::Hello`] carrying the [`MAGIC`] bytes, its
//! [`PROTOCOL_VERSION`], and the user it wants to act as (login is part of
//! connection setup, like `--as` on the CLI); the server answers
//! [`Frame::Welcome`] or an error outcome and closes. After that the
//! client pipelines [`Frame::Req`]/[`Frame::Batch`] frames, each tagged
//! with a client-chosen correlation id, and the server streams back one
//! [`Frame::Resp`]/[`Frame::BatchResp`] per submission **in submission
//! order** (the async executor's ordering contract extends across the
//! wire).
//!
//! Defense at the boundary: [`read_frame`] refuses payloads larger than
//! the caller's `max_frame` before allocating, and every decode failure is
//! a [`CoreError::Protocol`] — never a panic — so one hostile peer cannot
//! take a connection thread down.

use std::io::{ErrorKind, Read, Write};

use orpheus_core::{CoreError, Request, Response, Result};

use crate::codec::{
    put_outcome, put_request, put_str, put_u16, put_u64, read_outcome, read_request, Reader,
};

/// First bytes of every [`Frame::Hello`]; rejects non-Orpheus peers (or
/// plain-text probes) before any further parsing.
pub const MAGIC: [u8; 4] = *b"ORPH";

/// Version of the frame/codec layout. Bumped on any incompatible change;
/// the handshake rejects mismatches with a clear error instead of
/// misdecoding. Version 2 added session resumption to the handshake
/// ([`Frame::Hello`]'s `resume`, [`Frame::Welcome`]'s `session`/`resumed`)
/// for the client's reconnect-with-idempotent-replay path.
pub const PROTOCOL_VERSION: u16 = 2;

/// Default cap on a single frame's payload, generous enough for the CSV
/// blobs `commit -f` ships but far below anything that could exhaust
/// memory: 32 MiB.
pub const MAX_FRAME: usize = 32 * 1024 * 1024;

/// One message of the wire protocol.
#[derive(Debug)]
pub enum Frame {
    /// Client → server connection setup: magic, protocol version, user,
    /// and — on reconnect — the session id to resume, so the server can
    /// reattach the connection to that session's replay cache.
    Hello {
        version: u16,
        user: String,
        resume: Option<u64>,
    },
    /// Server → client handshake acceptance: the negotiated version, the
    /// bound user, the session id to quote on later reconnects, and
    /// whether a requested resume actually found the session (`false`
    /// means the server lost it — the client must fail any requests whose
    /// outcome it was still waiting on, because replay can no longer be
    /// deduplicated).
    Welcome {
        version: u16,
        user: String,
        session: u64,
        resumed: bool,
    },
    /// Client → server: one request under a correlation id.
    Req { id: u64, request: Request },
    /// Client → server: a request batch under one correlation id, executed
    /// with [`orpheus_core::Executor::batch`] semantics (submission order,
    /// independent failures).
    Batch { id: u64, requests: Vec<Request> },
    /// Server → client: the outcome of the [`Frame::Req`] with the same id.
    /// Also used with id 0 to report handshake/protocol errors.
    Resp {
        id: u64,
        outcome: Box<Result<Response>>,
    },
    /// Server → client: per-request outcomes of the [`Frame::Batch`] with
    /// the same id, in the batch's own order.
    BatchResp {
        id: u64,
        outcomes: Vec<Result<Response>>,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_REQ: u8 = 3;
const TAG_BATCH: u8 = 4;
const TAG_RESP: u8 = 5;
const TAG_BATCH_RESP: u8 = 6;

impl Frame {
    /// Encode this frame's payload (tag + body, without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello {
                version,
                user,
                resume,
            } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&MAGIC);
                put_u16(&mut out, *version);
                put_str(&mut out, user);
                match resume {
                    Some(id) => {
                        out.push(1);
                        put_u64(&mut out, *id);
                    }
                    None => out.push(0),
                }
            }
            Frame::Welcome {
                version,
                user,
                session,
                resumed,
            } => {
                out.push(TAG_WELCOME);
                put_u16(&mut out, *version);
                put_str(&mut out, user);
                put_u64(&mut out, *session);
                out.push(u8::from(*resumed));
            }
            Frame::Req { id, request } => {
                out.push(TAG_REQ);
                put_u64(&mut out, *id);
                put_request(&mut out, request);
            }
            Frame::Batch { id, requests } => {
                out.push(TAG_BATCH);
                put_u64(&mut out, *id);
                crate::codec::put_u32(&mut out, requests.len() as u32);
                for request in requests {
                    put_request(&mut out, request);
                }
            }
            Frame::Resp { id, outcome } => {
                out.push(TAG_RESP);
                put_u64(&mut out, *id);
                put_outcome(&mut out, outcome);
            }
            Frame::BatchResp { id, outcomes } => {
                out.push(TAG_BATCH_RESP);
                put_u64(&mut out, *id);
                crate::codec::put_u32(&mut out, outcomes.len() as u32);
                for outcome in outcomes {
                    put_outcome(&mut out, outcome);
                }
            }
        }
        out
    }

    /// Decode a frame from a received payload. The whole payload must be
    /// consumed; trailing bytes are a protocol error.
    pub fn decode(payload: &[u8]) -> Result<Frame> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            TAG_HELLO => {
                let mut magic = [0u8; 4];
                for b in &mut magic {
                    *b = r.u8()?;
                }
                if magic != MAGIC {
                    return Err(CoreError::Protocol(format!(
                        "bad magic {magic:?}; not an OrpheusDB client"
                    )));
                }
                let version = r.u16()?;
                let user = r.str()?;
                let resume = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    b => {
                        return Err(CoreError::Protocol(format!("bad resume flag {b} in Hello")));
                    }
                };
                Frame::Hello {
                    version,
                    user,
                    resume,
                }
            }
            TAG_WELCOME => {
                let version = r.u16()?;
                let user = r.str()?;
                let session = r.u64()?;
                let resumed = match r.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(CoreError::Protocol(format!(
                            "bad resumed flag {b} in Welcome"
                        )));
                    }
                };
                Frame::Welcome {
                    version,
                    user,
                    session,
                    resumed,
                }
            }
            TAG_REQ => Frame::Req {
                id: r.u64()?,
                request: read_request(&mut r)?,
            },
            TAG_BATCH => {
                let id = r.u64()?;
                let n = r.count("batch request")?;
                let mut requests = Vec::with_capacity(n);
                for _ in 0..n {
                    requests.push(read_request(&mut r)?);
                }
                Frame::Batch { id, requests }
            }
            TAG_RESP => Frame::Resp {
                id: r.u64()?,
                outcome: Box::new(read_outcome(&mut r)?),
            },
            TAG_BATCH_RESP => {
                let id = r.u64()?;
                let n = r.count("batch outcome")?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    outcomes.push(read_outcome(&mut r)?);
                }
                Frame::BatchResp { id, outcomes }
            }
            t => {
                return Err(CoreError::Protocol(format!("unknown frame tag {t}")));
            }
        };
        r.finish("frame")?;
        Ok(frame)
    }
}

/// Write one frame: `u32` big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    write_payload(w, &frame.encode())
}

/// [`write_frame`] for an already-encoded payload — the client's replay
/// path stores each in-flight frame's wire bytes and re-sends them
/// verbatim on reconnect, so a replay is bit-identical to the original.
pub fn write_payload(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| CoreError::Protocol("frame payload exceeds u32 length".to_string()))?;
    let io = |e: std::io::Error| CoreError::Network(format!("write failed: {e}"));
    w.write_all(&len.to_be_bytes()).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)?;
    Ok(())
}

/// Read one frame, refusing payloads above `max_frame` before allocating.
///
/// Returns `Ok(None)` on a clean EOF **at a frame boundary** (the peer
/// closed the connection between frames). EOF inside the length prefix or
/// payload means a truncated frame and is a [`CoreError::Protocol`]; other
/// I/O failures map to [`CoreError::Network`]. A read timeout set on the
/// underlying socket surfaces as `Network` containing "timed out", which
/// the server's connection loop treats as "no frame yet, poll again".
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(CoreError::Protocol(
                    "connection closed mid length prefix".to_string(),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if filled == 0 && would_block(&e) => {
                return Err(CoreError::Network("read timed out".to_string()));
            }
            Err(e) => return Err(CoreError::Network(format!("read failed: {e}"))),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(CoreError::Protocol(format!(
            "frame of {len} bytes exceeds the {max_frame} byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(CoreError::Protocol(
                    "connection closed mid frame".to_string(),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Once the length prefix arrived, keep waiting for the rest of
            // the frame across socket read timeouts: a slow writer is not
            // a protocol violation.
            Err(e) if would_block(&e) => {}
            Err(e) => return Err(CoreError::Network(format!("read failed: {e}"))),
        }
    }
    Frame::decode(&payload).map(Some)
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Whether an error from [`read_frame`] is a socket read timeout (no frame
/// arrived within the poll interval) rather than a real failure.
pub fn is_timeout(error: &CoreError) -> bool {
    matches!(error, CoreError::Network(m) if m.contains("timed out"))
}
