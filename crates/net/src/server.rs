//! TCP server in front of the async executor.
//!
//! [`NetServer::bind`] owns an [`AsyncExecutor`] over the shared instance
//! and an accept loop; every connection gets one reader thread and one
//! writer thread:
//!
//! * The **reader** performs the handshake ([`Frame::Hello`] →
//!   [`Frame::Welcome`], binding the connection to a user via
//!   [`AsyncExecutor::handle`] and to a private `Session` carrying the replay
//!   cache), then turns each incoming frame into a non-blocking
//!   submission — [`AsyncHandle::submit`] / [`AsyncHandle::submit_batch`]
//!   — and hands the resulting tickets to the writer. Requests therefore
//!   pipeline: the reader is already parsing frame *n+1* while the pool
//!   executes frame *n*. `Login` is the one exception: its outcome
//!   rebinds the connection identity, so the reader executes it
//!   synchronously (a pipeline barrier, matching [`AsyncHandle::batch`]
//!   semantics) before reading further frames.
//! * The **writer** resolves tickets strictly in submission order and
//!   streams the response frames back, so the wire order equals the
//!   submission order even though execution overlaps.
//!
//! The channel between them is *bounded* ([`ServerConfig::window`]): when
//! a client has that many submissions in flight, the reader stops reading
//! its socket, which shows up at the client as TCP backpressure — a fast
//! writer cannot queue unbounded work in server memory.
//!
//! # At-most-once execution (idempotent replay)
//!
//! A client that loses its connection after sending a commit cannot know
//! whether the server executed it — blind resending would double-commit.
//! The handshake therefore issues a **session id**; on reconnect the
//! client quotes it ([`Frame::Hello`]'s `resume`) and the connection
//! reattaches to the same `Session`, whose bounded **replay cache**
//! remembers the outcome of the last [`ServerConfig::dedup_cache`] frame
//! ids. A retried frame whose id is already cached gets the *original*
//! outcome back without re-executing; one still in flight waits for the
//! in-flight execution instead of starting a second. Refusals that never
//! executed anything — load shedding, the shutdown grace window — are
//! deliberately **not** cached: a retry after them must re-execute.
//!
//! # Self-protection
//!
//! Three admission controls keep an overloaded server shedding work with
//! typed, retryable errors instead of stalling or falling over:
//!
//! * a **connection cap** ([`ServerConfig::max_connections`]) — excess
//!   connections are refused at accept time with
//!   [`CoreError::Overloaded`];
//! * **queue-depth shedding** ([`ServerConfig::max_queue_depth`]) — when
//!   the executor's accepted-but-unfinished backlog crosses the ceiling,
//!   new frames are answered with [`CoreError::Overloaded`] (carrying
//!   `retry_after_ms` for the client's backoff) without being submitted;
//! * a **per-request deadline** ([`ServerConfig::request_deadline`]) —
//!   the writer bounds its wait on every ticket and answers
//!   [`CoreError::DeadlineExceeded`] when it elapses; the outcome is
//!   cached, so a replay of that id reports the same verdict instead of
//!   executing twice.
//!
//! Disconnects and shutdown drain rather than drop: accepted submissions
//! always execute (the writer waits every ticket even when the socket is
//! gone, and [`AsyncExecutor`]'s own drop drains its queue), while frames
//! arriving after [`NetServer::begin_shutdown`] are refused with a clean
//! [`CoreError::Network`] error during a short grace window instead of a
//! slammed connection.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use orpheus_core::{
    AsyncExecutor, AsyncHandle, CoreError, Executor, Request, Response, Result, SharedOrpheusDB,
    Ticket,
};
use parking_lot::{Condvar, Mutex};

use crate::proto::{is_timeout, read_frame, write_frame, Frame, MAX_FRAME, PROTOCOL_VERSION};

/// How often blocked reads wake up to check the shutdown flag.
const POLL: Duration = Duration::from_millis(100);
/// How often the accept loop polls between connection attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How long a connection keeps answering late frames with a clean
/// "shutting down" error before closing.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);
/// How long a fresh connection may take to say hello.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);
/// The `retry_after_ms` hint shed responses carry: long enough to let a
/// burst drain, short enough that a shed client retries within human
/// latency tolerances.
const RETRY_AFTER_MS: u64 = 50;

/// Tuning knobs for [`NetServer::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Largest frame payload accepted from a client, in bytes.
    pub max_frame: usize,
    /// Per-connection in-flight submission window; beyond it the reader
    /// stops reading the socket (backpressure).
    pub window: usize,
    /// Connection cap: accepts beyond it are refused with a retryable
    /// [`CoreError::Overloaded`] instead of spawning threads without
    /// bound.
    pub max_connections: usize,
    /// Queue-depth ceiling for load shedding: while the executor's
    /// accepted-but-unfinished backlog is at or above this, new frames
    /// are shed with [`CoreError::Overloaded`] without being submitted.
    pub max_queue_depth: usize,
    /// Per-request deadline: the writer bounds its wait on every ticket
    /// and answers [`CoreError::DeadlineExceeded`] when it elapses.
    pub request_deadline: Duration,
    /// Replay-cache capacity per session, in frame ids. Bounds dedup
    /// memory; a client replaying an id older than its session's last
    /// `dedup_cache` frames re-executes (in practice reconnect replays
    /// only in-flight ids, far fewer than this).
    pub dedup_cache: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_frame: MAX_FRAME,
            window: 64,
            max_connections: 256,
            max_queue_depth: 1024,
            request_deadline: Duration::from_secs(30),
            dedup_cache: 256,
        }
    }
}

/// Counters the admission controls and the replay cache bump; exposed
/// through [`NetServer::stats`] so tests and the chaos benchmark can
/// assert shedding/dedup actually happened.
#[derive(Debug, Default)]
struct ServerCounters {
    shed: AtomicU64,
    deduped: AtomicU64,
    deadline_exceeded: AtomicU64,
    refused_connections: AtomicU64,
}

/// A point-in-time copy of the server's self-protection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Frames refused with [`CoreError::Overloaded`] by queue-depth
    /// shedding (requests counted individually for batches).
    pub shed: u64,
    /// Frames answered from the replay cache (or coalesced onto an
    /// in-flight execution) instead of executing again.
    pub deduped: u64,
    /// Tickets whose [`ServerConfig::request_deadline`] elapsed before
    /// the pool resolved them.
    pub deadline_exceeded: u64,
    /// Connections refused at accept time by the connection cap.
    pub refused_connections: u64,
}

// ---------------------------------------------------------------------------
// Sessions and the replay cache.
// ---------------------------------------------------------------------------

/// The outcome of one executed frame, cached for idempotent replay.
#[derive(Debug, Clone)]
enum CachedOutcome {
    Single(Result<Response>),
    Batch(Vec<Result<Response>>),
}

/// Bounded per-session memory of executed frames: `done` holds outcomes
/// (evicted FIFO via `order` beyond the configured capacity), `in_flight`
/// marks ids submitted but not yet resolved so a duplicate coalesces onto
/// the running execution instead of starting a second.
#[derive(Debug, Default)]
struct ReplayCache {
    done: HashMap<u64, CachedOutcome>,
    order: VecDeque<u64>,
    in_flight: HashSet<u64>,
}

/// One client's logical stream across reconnects: issued at handshake,
/// resumed by quoting its id in a later [`Frame::Hello`]. Carries nothing
/// but the replay cache — identity still binds per connection.
#[derive(Debug)]
struct Session {
    replay: Mutex<ReplayCache>,
    /// Signalled whenever an id moves from `in_flight` to `done`, waking
    /// writers that are answering a duplicate of an in-flight frame.
    resolved: Condvar,
}

impl Session {
    fn new() -> Arc<Session> {
        Arc::new(Session {
            replay: Mutex::new(ReplayCache::default()),
            resolved: Condvar::new(),
        })
    }

    /// Record an executed frame's outcome and wake duplicate-waiters.
    fn finish(&self, id: u64, outcome: CachedOutcome, capacity: usize) {
        let mut cache = self.replay.lock();
        cache.in_flight.remove(&id);
        if cache.done.insert(id, outcome).is_none() {
            cache.order.push_back(id);
        }
        while cache.order.len() > capacity.max(1) {
            if let Some(old) = cache.order.pop_front() {
                cache.done.remove(&old);
            }
        }
        drop(cache);
        self.resolved.notify_all();
    }

    /// Wait until `id` resolves (a duplicate of an in-flight frame), up
    /// to `deadline` from now. `None` means the wait timed out.
    fn await_done(&self, id: u64, deadline: Duration) -> Option<CachedOutcome> {
        let until = Instant::now() + deadline;
        let mut cache = self.replay.lock();
        loop {
            if let Some(outcome) = cache.done.get(&id) {
                return Some(outcome.clone());
            }
            if !cache.in_flight.contains(&id) {
                // The execution this duplicate was coalesced onto got
                // evicted or was never recorded — give up rather than
                // park forever.
                return None;
            }
            let now = Instant::now();
            if now >= until {
                return None;
            }
            self.resolved.wait_for(&mut cache, until - now);
        }
    }
}

/// Everything the accept loop shares with connections: the executor, the
/// session registry, counters, and config.
#[derive(Debug)]
struct Service {
    pool: Arc<AsyncExecutor>,
    config: ServerConfig,
    counters: ServerCounters,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    next_session: AtomicU64,
    /// Live connection count for the accept-time cap.
    live: AtomicUsize,
}

impl Service {
    /// Whether new work should be shed right now.
    fn overloaded(&self) -> bool {
        self.pool.queue_depth() >= self.config.max_queue_depth
    }

    fn shed_error(&self) -> CoreError {
        CoreError::Overloaded {
            retry_after_ms: RETRY_AFTER_MS,
        }
    }
}

/// A listening OrpheusDB service. Dropping it (or calling
/// [`NetServer::shutdown`]) stops accepting, drains every accepted
/// submission, and joins all threads.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    /// Kept directly (not borrowed through the pool) so
    /// [`NetServer::shared`] works at every point in the server's
    /// lifecycle, including after shutdown dropped the executor.
    shared: SharedOrpheusDB,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    service: Option<Arc<Service>>,
    stats: ServerStats,
}

impl NetServer {
    /// Bind with default [`ServerConfig`].
    pub fn bind(addr: impl ToSocketAddrs, shared: SharedOrpheusDB) -> Result<NetServer> {
        NetServer::bind_with(addr, shared, ServerConfig::default())
    }

    /// Bind a listener on `addr` (use port 0 for an ephemeral port, then
    /// read the resolved one from [`NetServer::local_addr`]) and start
    /// serving `shared` through a fresh [`AsyncExecutor`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        shared: SharedOrpheusDB,
        config: ServerConfig,
    ) -> Result<NetServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| CoreError::Network(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CoreError::Network(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| CoreError::Network(format!("set_nonblocking failed: {e}")))?;
        let pool = Arc::new(AsyncExecutor::new(shared.clone()));
        let service = Arc::new(Service {
            pool,
            config,
            counters: ServerCounters::default(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            live: AtomicUsize::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || accept_loop(listener, service, shutdown, connections))
        };
        Ok(NetServer {
            addr,
            shared,
            shutdown,
            accept: Some(accept),
            connections,
            service: Some(service),
            stats: ServerStats {
                shed: 0,
                deduped: 0,
                deadline_exceeded: 0,
                refused_connections: 0,
            },
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared instance being served (snapshots, direct reads). Valid
    /// at every point in the server's lifecycle — even a call racing
    /// [`NetServer::begin_shutdown`] gets the instance, never a panic.
    pub fn shared(&self) -> SharedOrpheusDB {
        self.shared.clone()
    }

    /// A snapshot of the self-protection counters (shed frames, replay
    /// dedups, deadline expiries, refused connections).
    pub fn stats(&self) -> ServerStats {
        match &self.service {
            Some(service) => ServerStats {
                shed: service.counters.shed.load(Ordering::SeqCst),
                deduped: service.counters.deduped.load(Ordering::SeqCst),
                deadline_exceeded: service.counters.deadline_exceeded.load(Ordering::SeqCst),
                refused_connections: service.counters.refused_connections.load(Ordering::SeqCst),
            },
            None => self.stats,
        }
    }

    /// Flip the shutdown flag without joining anything: connections keep
    /// draining accepted work but refuse frames arriving from now on.
    /// Tests use this to observe the refusal window; normal teardown goes
    /// through [`NetServer::shutdown`] or drop.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful stop: refuse new work, drain accepted submissions, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let connections = std::mem::take(&mut *self.connections.lock());
        for connection in connections {
            let _ = connection.join();
        }
        // Freeze the final counter values, then drop the service —
        // dropping the executor drains everything it accepted.
        self.stats = self.stats();
        self.service.take();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Decrements the live-connection gauge when a connection thread exits,
/// whatever path it takes out.
struct ConnectionGuard(Arc<Service>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Connection cap: admission control happens before a
                // thread is spawned, so a connection storm costs one
                // refusal frame each, not a thread each.
                if service.live.load(Ordering::SeqCst) >= service.config.max_connections {
                    service
                        .counters
                        .refused_connections
                        .fetch_add(1, Ordering::SeqCst);
                    refuse_connection(stream, service.shed_error());
                    continue;
                }
                service.live.fetch_add(1, Ordering::SeqCst);
                let service = Arc::clone(&service);
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::spawn(move || {
                    let _guard = ConnectionGuard(Arc::clone(&service));
                    serve_connection(stream, service, shutdown);
                });
                connections.lock().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept failures (e.g. a connection reset in the
            // backlog) must not kill the listener.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// What the reader hands the writer: a resolved outcome (barriers,
/// refusals, cache hits), a ticket to wait on in order, or a duplicate of
/// an in-flight frame to coalesce onto.
enum Slot {
    Done(Result<Response>),
    Pending { ticket: Ticket, since: Instant },
}

enum Outgoing {
    Resp {
        id: u64,
        slot: Slot,
        /// Record the outcome in the session's replay cache (false for
        /// refusals that never executed — they must not dedup a retry).
        cache: bool,
    },
    BatchResp {
        id: u64,
        slots: Vec<Slot>,
        cache: bool,
    },
    /// A duplicate of a frame currently in flight: wait for the original
    /// execution to resolve and echo its outcome.
    Duplicate { id: u64 },
}

fn refusal() -> CoreError {
    CoreError::Network("server shutting down; request refused".to_string())
}

/// Send a terminal error on a connection that never completed its
/// handshake, then close it.
fn refuse_connection(mut stream: TcpStream, error: CoreError) {
    let _ = write_frame(
        &mut stream,
        &Frame::Resp {
            id: 0,
            outcome: Box::new(Err(error)),
        },
    );
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handshake: wait for a [`Frame::Hello`], validate it, bind the user and
/// session (resuming the quoted session when it is still known).
fn handshake(
    stream: &mut TcpStream,
    service: &Service,
    shutdown: &AtomicBool,
) -> Option<(AsyncHandle, Arc<Session>)> {
    let deadline = Instant::now() + HANDSHAKE_DEADLINE;
    loop {
        match read_frame(stream, service.config.max_frame) {
            Ok(Some(Frame::Hello {
                version,
                user,
                resume,
            })) => {
                if version != PROTOCOL_VERSION {
                    refuse_connection(
                        stream.try_clone().ok()?,
                        CoreError::Protocol(format!(
                            "protocol version {version} not supported; server speaks {PROTOCOL_VERSION}"
                        )),
                    );
                    return None;
                }
                match service.pool.handle(&user) {
                    Ok(handle) => {
                        let mut sessions = service.sessions.lock();
                        let (id, session, resumed) = match resume {
                            Some(id) => match sessions.get(&id) {
                                Some(session) => (id, Arc::clone(session), true),
                                // The quoted session is gone (a restarted
                                // server): issue a fresh one and tell the
                                // client, so it fails — not blindly
                                // replays — requests whose dedup state
                                // was lost.
                                None => {
                                    let id = service.next_session.fetch_add(1, Ordering::SeqCst);
                                    let session = Session::new();
                                    sessions.insert(id, Arc::clone(&session));
                                    (id, session, false)
                                }
                            },
                            None => {
                                let id = service.next_session.fetch_add(1, Ordering::SeqCst);
                                let session = Session::new();
                                sessions.insert(id, Arc::clone(&session));
                                (id, session, false)
                            }
                        };
                        drop(sessions);
                        let welcome = Frame::Welcome {
                            version: PROTOCOL_VERSION,
                            user: handle.user().to_string(),
                            session: id,
                            resumed,
                        };
                        if write_frame(stream, &welcome).is_err() {
                            return None;
                        }
                        return Some((handle, session));
                    }
                    Err(e) => {
                        refuse_connection(stream.try_clone().ok()?, e);
                        return None;
                    }
                }
            }
            Ok(Some(_)) => {
                refuse_connection(
                    stream.try_clone().ok()?,
                    CoreError::Protocol("expected a hello frame to open the connection".into()),
                );
                return None;
            }
            Ok(None) => return None,
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    refuse_connection(stream.try_clone().ok()?, refusal());
                    return None;
                }
            }
            Err(e) => {
                if let Ok(clone) = stream.try_clone() {
                    refuse_connection(clone, e);
                }
                return None;
            }
        }
    }
}

/// What the reader decided to do with one incoming frame id, after
/// consulting the replay cache.
enum Admission {
    /// Never seen: execute it (the id is now marked in flight).
    Fresh,
    /// Already resolved: echo the cached outcome.
    Replay(CachedOutcome),
    /// Currently executing (submitted by a previous connection of this
    /// session, or a duplicate on this one): coalesce instead of
    /// re-executing.
    InFlight,
}

fn admit(session: &Session, id: u64) -> Admission {
    let mut cache = session.replay.lock();
    if let Some(outcome) = cache.done.get(&id) {
        return Admission::Replay(outcome.clone());
    }
    if cache.in_flight.contains(&id) {
        return Admission::InFlight;
    }
    cache.in_flight.insert(id);
    Admission::Fresh
}

fn serve_connection(mut stream: TcpStream, service: Arc<Service>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Some((mut handle, session)) = handshake(&mut stream, &service, &shutdown) else {
        return;
    };
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<Outgoing>(service.config.window);
    let writer = {
        let service = Arc::clone(&service);
        let session = Arc::clone(&session);
        std::thread::spawn(move || writer_loop(write_stream, rx, service, session))
    };

    // The reader: socket frames in, pool submissions out. `refusing`
    // carries the grace deadline once shutdown begins.
    let mut refusing: Option<Instant> = None;
    loop {
        if refusing.is_none() && shutdown.load(Ordering::SeqCst) {
            refusing = Some(Instant::now() + SHUTDOWN_GRACE);
        }
        if let Some(deadline) = refusing {
            if Instant::now() >= deadline {
                break;
            }
        }
        match read_frame(&mut stream, service.config.max_frame) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                // A frame that raced `begin_shutdown` past the check
                // above still gets the typed refusal below — `refusing`
                // is re-checked per frame, and refusals bypass the pool
                // entirely, so a late frame can never observe a
                // half-torn-down executor.
                if refusing.is_none() && shutdown.load(Ordering::SeqCst) {
                    refusing = Some(Instant::now() + SHUTDOWN_GRACE);
                }
                let out = if refusing.is_some() {
                    match frame {
                        Frame::Req { id, .. } => Outgoing::Resp {
                            id,
                            slot: Slot::Done(Err(refusal())),
                            cache: false,
                        },
                        Frame::Batch { id, requests } => Outgoing::BatchResp {
                            id,
                            slots: requests
                                .iter()
                                .map(|_| Slot::Done(Err(refusal())))
                                .collect(),
                            cache: false,
                        },
                        _ => break,
                    }
                } else {
                    match frame {
                        Frame::Req { id, request } => match admit(&session, id) {
                            Admission::Replay(CachedOutcome::Single(outcome)) => {
                                service.counters.deduped.fetch_add(1, Ordering::SeqCst);
                                Outgoing::Resp {
                                    id,
                                    slot: Slot::Done(outcome),
                                    cache: false,
                                }
                            }
                            Admission::Replay(CachedOutcome::Batch(_)) | Admission::InFlight => {
                                service.counters.deduped.fetch_add(1, Ordering::SeqCst);
                                Outgoing::Duplicate { id }
                            }
                            Admission::Fresh if service.overloaded() => {
                                // Shed before executing; un-mark the id so
                                // the client's retry is fresh work again.
                                session.replay.lock().in_flight.remove(&id);
                                service.counters.shed.fetch_add(1, Ordering::SeqCst);
                                Outgoing::Resp {
                                    id,
                                    slot: Slot::Done(Err(service.shed_error())),
                                    cache: false,
                                }
                            }
                            Admission::Fresh => {
                                let slot = if matches!(request, Request::Login(_)) {
                                    // Identity barrier: resolve before
                                    // reading on, and cache immediately so
                                    // even a crash between here and the
                                    // writer dedups a replay.
                                    let outcome = handle.execute(request);
                                    session.finish(
                                        id,
                                        CachedOutcome::Single(outcome.clone()),
                                        service.config.dedup_cache,
                                    );
                                    Slot::Done(outcome)
                                } else {
                                    Slot::Pending {
                                        ticket: handle.submit(request),
                                        since: Instant::now(),
                                    }
                                };
                                let cache = matches!(slot, Slot::Pending { .. });
                                Outgoing::Resp { id, slot, cache }
                            }
                        },
                        Frame::Batch { id, requests } => match admit(&session, id) {
                            Admission::Replay(CachedOutcome::Batch(outcomes)) => {
                                service.counters.deduped.fetch_add(1, Ordering::SeqCst);
                                Outgoing::BatchResp {
                                    id,
                                    slots: outcomes.into_iter().map(Slot::Done).collect(),
                                    cache: false,
                                }
                            }
                            Admission::Replay(CachedOutcome::Single(_)) | Admission::InFlight => {
                                service.counters.deduped.fetch_add(1, Ordering::SeqCst);
                                Outgoing::Duplicate { id }
                            }
                            Admission::Fresh if service.overloaded() => {
                                session.replay.lock().in_flight.remove(&id);
                                service
                                    .counters
                                    .shed
                                    .fetch_add(requests.len() as u64, Ordering::SeqCst);
                                Outgoing::BatchResp {
                                    id,
                                    slots: requests
                                        .iter()
                                        .map(|_| Slot::Done(Err(service.shed_error())))
                                        .collect(),
                                    cache: false,
                                }
                            }
                            Admission::Fresh => {
                                let since = Instant::now();
                                let slots: Vec<Slot> =
                                    if requests.iter().any(|r| matches!(r, Request::Login(_))) {
                                        // Login inside a batch: fall back
                                        // to the handle's own
                                        // barrier-aware batch.
                                        handle.batch(requests).into_iter().map(Slot::Done).collect()
                                    } else {
                                        handle
                                            .submit_batch(requests)
                                            .into_iter()
                                            .map(|ticket| Slot::Pending { ticket, since })
                                            .collect()
                                    };
                                Outgoing::BatchResp {
                                    id,
                                    slots,
                                    cache: true,
                                }
                            }
                        },
                        _ => {
                            let _ = tx.send(Outgoing::Resp {
                                id: 0,
                                slot: Slot::Done(Err(CoreError::Protocol(
                                    "unexpected server-bound frame".into(),
                                ))),
                                cache: false,
                            });
                            break;
                        }
                    }
                };
                if tx.send(out).is_err() {
                    break;
                }
            }
            Err(e) if is_timeout(&e) => {}
            Err(e) => {
                // Malformed frame or broken socket: report (best-effort,
                // after everything already queued) and close.
                let _ = tx.send(Outgoing::Resp {
                    id: 0,
                    slot: Slot::Done(Err(e)),
                    cache: false,
                });
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Resolve outcomes in submission order and stream them back, recording
/// executed outcomes in the session's replay cache. When the socket dies
/// mid-stream the loop keeps *waiting* the remaining tickets — accepted
/// work must finish against the shared instance, and its outcomes must
/// land in the cache for the reconnected client to replay against — and
/// only stops writing.
fn writer_loop(
    mut stream: TcpStream,
    rx: mpsc::Receiver<Outgoing>,
    service: Arc<Service>,
    session: Arc<Session>,
) {
    let deadline = service.config.request_deadline;
    let capacity = service.config.dedup_cache;
    let mut broken = false;
    while let Ok(out) = rx.recv() {
        let frame = match out {
            Outgoing::Resp { id, slot, cache } => {
                let outcome = resolve(slot, deadline, &service);
                if cache {
                    session.finish(id, CachedOutcome::Single(outcome.clone()), capacity);
                }
                Frame::Resp {
                    id,
                    outcome: Box::new(outcome),
                }
            }
            Outgoing::BatchResp { id, slots, cache } => {
                let outcomes: Vec<Result<Response>> = slots
                    .into_iter()
                    .map(|slot| resolve(slot, deadline, &service))
                    .collect();
                if cache {
                    session.finish(id, CachedOutcome::Batch(outcomes.clone()), capacity);
                }
                Frame::BatchResp { id, outcomes }
            }
            Outgoing::Duplicate { id } => match session.await_done(id, deadline) {
                Some(CachedOutcome::Single(outcome)) => Frame::Resp {
                    id,
                    outcome: Box::new(outcome),
                },
                Some(CachedOutcome::Batch(outcomes)) => Frame::BatchResp { id, outcomes },
                None => {
                    service
                        .counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::SeqCst);
                    Frame::Resp {
                        id,
                        outcome: Box::new(Err(CoreError::DeadlineExceeded {
                            elapsed_ms: deadline.as_millis() as u64,
                        })),
                    }
                }
            },
        };
        if !broken && write_frame(&mut stream, &frame).is_err() {
            broken = true;
        }
    }
}

/// Resolve one slot, bounding the wait by the per-request deadline. A
/// ticket that outlives the deadline answers
/// [`CoreError::DeadlineExceeded`]; the execution itself keeps running and
/// its true outcome is unknowable to the client — which is exactly what
/// the error says. The deadline verdict is what gets cached, so a replay
/// of the id reports the same verdict instead of executing twice.
fn resolve(slot: Slot, deadline: Duration, service: &Service) -> Result<Response> {
    match slot {
        Slot::Done(result) => result,
        Slot::Pending { ticket, since } => {
            let remaining = deadline.saturating_sub(since.elapsed());
            match ticket.wait_for(remaining) {
                Some(outcome) => outcome,
                None => {
                    service
                        .counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::SeqCst);
                    Err(CoreError::DeadlineExceeded {
                        elapsed_ms: since.elapsed().as_millis() as u64,
                    })
                }
            }
        }
    }
}
