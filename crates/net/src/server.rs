//! TCP server in front of the async executor.
//!
//! [`NetServer::bind`] owns an [`AsyncExecutor`] over the shared instance
//! and an accept loop; every connection gets one reader thread and one
//! writer thread:
//!
//! * The **reader** performs the handshake ([`Frame::Hello`] →
//!   [`Frame::Welcome`], binding the connection to a user via
//!   [`AsyncExecutor::handle`]), then turns each incoming frame into a
//!   non-blocking submission — [`AsyncHandle::submit`] /
//!   [`AsyncHandle::submit_batch`] — and hands the resulting tickets to
//!   the writer. Requests therefore pipeline: the reader is already
//!   parsing frame *n+1* while the pool executes frame *n*. `Login` is
//!   the one exception: its outcome rebinds the connection identity, so
//!   the reader executes it synchronously (a pipeline barrier, matching
//!   [`AsyncHandle::batch`] semantics) before reading further frames.
//! * The **writer** resolves tickets strictly in submission order and
//!   streams the response frames back, so the wire order equals the
//!   submission order even though execution overlaps.
//!
//! The channel between them is *bounded* ([`ServerConfig::window`]): when
//! a client has that many submissions in flight, the reader stops reading
//! its socket, which shows up at the client as TCP backpressure — a fast
//! writer cannot queue unbounded work in server memory.
//!
//! Disconnects and shutdown drain rather than drop: accepted submissions
//! always execute (the writer waits every ticket even when the socket is
//! gone, and [`AsyncExecutor`]'s own drop drains its queue), while frames
//! arriving after [`NetServer::begin_shutdown`] are refused with a clean
//! [`CoreError::Network`] error during a short grace window instead of a
//! slammed connection.

use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use orpheus_core::{
    AsyncExecutor, AsyncHandle, CoreError, Executor, Request, Response, Result, SharedOrpheusDB,
    Ticket,
};
use parking_lot::Mutex;

use crate::proto::{is_timeout, read_frame, write_frame, Frame, MAX_FRAME, PROTOCOL_VERSION};

/// How often blocked reads wake up to check the shutdown flag.
const POLL: Duration = Duration::from_millis(100);
/// How often the accept loop polls between connection attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How long a connection keeps answering late frames with a clean
/// "shutting down" error before closing.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);
/// How long a fresh connection may take to say hello.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);

/// Tuning knobs for [`NetServer::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Largest frame payload accepted from a client, in bytes.
    pub max_frame: usize,
    /// Per-connection in-flight submission window; beyond it the reader
    /// stops reading the socket (backpressure).
    pub window: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_frame: MAX_FRAME,
            window: 64,
        }
    }
}

/// A listening OrpheusDB service. Dropping it (or calling
/// [`NetServer::shutdown`]) stops accepting, drains every accepted
/// submission, and joins all threads.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Option<Arc<AsyncExecutor>>,
}

impl NetServer {
    /// Bind with default [`ServerConfig`].
    pub fn bind(addr: impl ToSocketAddrs, shared: SharedOrpheusDB) -> Result<NetServer> {
        NetServer::bind_with(addr, shared, ServerConfig::default())
    }

    /// Bind a listener on `addr` (use port 0 for an ephemeral port, then
    /// read the resolved one from [`NetServer::local_addr`]) and start
    /// serving `shared` through a fresh [`AsyncExecutor`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        shared: SharedOrpheusDB,
        config: ServerConfig,
    ) -> Result<NetServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| CoreError::Network(format!("bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CoreError::Network(format!("local_addr failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| CoreError::Network(format!("set_nonblocking failed: {e}")))?;
        let pool = Arc::new(AsyncExecutor::new(shared));
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let pool = Arc::clone(&pool);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || accept_loop(listener, pool, shutdown, connections, config))
        };
        Ok(NetServer {
            addr,
            shutdown,
            accept: Some(accept),
            connections,
            pool: Some(pool),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared instance being served (snapshots, direct reads).
    pub fn shared(&self) -> SharedOrpheusDB {
        self.pool
            .as_ref()
            .expect("pool present until shutdown")
            .shared()
            .clone()
    }

    /// Flip the shutdown flag without joining anything: connections keep
    /// draining accepted work but refuse frames arriving from now on.
    /// Tests use this to observe the refusal window; normal teardown goes
    /// through [`NetServer::shutdown`] or drop.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful stop: refuse new work, drain accepted submissions, join
    /// every thread.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let connections = std::mem::take(&mut *self.connections.lock());
        for connection in connections {
            let _ = connection.join();
        }
        // Dropping the executor drains everything it accepted.
        self.pool.take();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(
    listener: TcpListener,
    pool: Arc<AsyncExecutor>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: ServerConfig,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let pool = Arc::clone(&pool);
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::spawn(move || {
                    serve_connection(stream, pool, shutdown, config);
                });
                connections.lock().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient accept failures (e.g. a connection reset in the
            // backlog) must not kill the listener.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// What the reader hands the writer: either a resolved outcome (barriers,
/// refusals) or a ticket the writer will wait on in order.
enum Slot {
    Done(Result<Response>),
    Pending(Ticket),
}

enum Outgoing {
    Resp { id: u64, slot: Slot },
    BatchResp { id: u64, slots: Vec<Slot> },
}

fn refusal() -> CoreError {
    CoreError::Network("server shutting down; request refused".to_string())
}

/// Send a terminal error on a connection that never completed its
/// handshake, then close it.
fn refuse_connection(mut stream: TcpStream, error: CoreError) {
    let _ = write_frame(
        &mut stream,
        &Frame::Resp {
            id: 0,
            outcome: Box::new(Err(error)),
        },
    );
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handshake: wait for a [`Frame::Hello`], validate it, bind the user.
fn handshake(
    stream: &mut TcpStream,
    pool: &AsyncExecutor,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) -> Option<AsyncHandle> {
    let deadline = Instant::now() + HANDSHAKE_DEADLINE;
    loop {
        match read_frame(stream, config.max_frame) {
            Ok(Some(Frame::Hello { version, user })) => {
                if version != PROTOCOL_VERSION {
                    refuse_connection(
                        stream.try_clone().ok()?,
                        CoreError::Protocol(format!(
                            "protocol version {version} not supported; server speaks {PROTOCOL_VERSION}"
                        )),
                    );
                    return None;
                }
                match pool.handle(&user) {
                    Ok(handle) => {
                        let welcome = Frame::Welcome {
                            version: PROTOCOL_VERSION,
                            user: handle.user().to_string(),
                        };
                        if write_frame(stream, &welcome).is_err() {
                            return None;
                        }
                        return Some(handle);
                    }
                    Err(e) => {
                        refuse_connection(stream.try_clone().ok()?, e);
                        return None;
                    }
                }
            }
            Ok(Some(_)) => {
                refuse_connection(
                    stream.try_clone().ok()?,
                    CoreError::Protocol("expected a hello frame to open the connection".into()),
                );
                return None;
            }
            Ok(None) => return None,
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    refuse_connection(stream.try_clone().ok()?, refusal());
                    return None;
                }
            }
            Err(e) => {
                if let Ok(clone) = stream.try_clone() {
                    refuse_connection(clone, e);
                }
                return None;
            }
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    pool: Arc<AsyncExecutor>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Some(mut handle) = handshake(&mut stream, &pool, &shutdown, &config) else {
        return;
    };
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::sync_channel::<Outgoing>(config.window);
    let writer = std::thread::spawn(move || writer_loop(write_stream, rx));

    // The reader: socket frames in, pool submissions out. `refusing`
    // carries the grace deadline once shutdown begins.
    let mut refusing: Option<Instant> = None;
    loop {
        if refusing.is_none() && shutdown.load(Ordering::SeqCst) {
            refusing = Some(Instant::now() + SHUTDOWN_GRACE);
        }
        if let Some(deadline) = refusing {
            if Instant::now() >= deadline {
                break;
            }
        }
        match read_frame(&mut stream, config.max_frame) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                let out = if refusing.is_some() {
                    match frame {
                        Frame::Req { id, .. } => Outgoing::Resp {
                            id,
                            slot: Slot::Done(Err(refusal())),
                        },
                        Frame::Batch { id, requests } => Outgoing::BatchResp {
                            id,
                            slots: requests
                                .iter()
                                .map(|_| Slot::Done(Err(refusal())))
                                .collect(),
                        },
                        _ => break,
                    }
                } else {
                    match frame {
                        Frame::Req { id, request } => {
                            let slot = if matches!(request, Request::Login(_)) {
                                // Identity barrier: resolve before reading on.
                                Slot::Done(handle.execute(request))
                            } else {
                                Slot::Pending(handle.submit(request))
                            };
                            Outgoing::Resp { id, slot }
                        }
                        Frame::Batch { id, requests } => {
                            let slots = if requests.iter().any(|r| matches!(r, Request::Login(_))) {
                                // Login inside a batch: fall back to the
                                // handle's own barrier-aware batch.
                                handle.batch(requests).into_iter().map(Slot::Done).collect()
                            } else {
                                handle
                                    .submit_batch(requests)
                                    .into_iter()
                                    .map(Slot::Pending)
                                    .collect()
                            };
                            Outgoing::BatchResp { id, slots }
                        }
                        _ => {
                            let _ = tx.send(Outgoing::Resp {
                                id: 0,
                                slot: Slot::Done(Err(CoreError::Protocol(
                                    "unexpected server-bound frame".into(),
                                ))),
                            });
                            break;
                        }
                    }
                };
                if tx.send(out).is_err() {
                    break;
                }
            }
            Err(e) if is_timeout(&e) => {}
            Err(e) => {
                // Malformed frame or broken socket: report (best-effort,
                // after everything already queued) and close.
                let _ = tx.send(Outgoing::Resp {
                    id: 0,
                    slot: Slot::Done(Err(e)),
                });
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Resolve outcomes in submission order and stream them back. When the
/// socket dies mid-stream the loop keeps *waiting* the remaining tickets —
/// accepted work must finish against the shared instance — and only stops
/// writing.
fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Outgoing>) {
    let mut broken = false;
    while let Ok(out) = rx.recv() {
        let frame = match out {
            Outgoing::Resp { id, slot } => Frame::Resp {
                id,
                outcome: Box::new(resolve(slot)),
            },
            Outgoing::BatchResp { id, slots } => Frame::BatchResp {
                id,
                outcomes: slots.into_iter().map(resolve).collect(),
            },
        };
        if !broken && write_frame(&mut stream, &frame).is_err() {
            broken = true;
        }
    }
}

fn resolve(slot: Slot) -> Result<Response> {
    match slot {
        Slot::Done(result) => result,
        Slot::Pending(ticket) => ticket.wait(),
    }
}
