//! # orpheus-net
//!
//! The network layer that turns OrpheusDB into an actual service: a
//! hand-rolled wire protocol, a TCP server in front of the async
//! executor, and a remote client that implements the same [`Executor`]
//! trait every local executor does — so the CLI, the REPL, and whole
//! request corpora run against a server unmodified.
//!
//! Three layers, one per module:
//!
//! * [`codec`] — binary encoding of the full command bus (every
//!   [`Request`]/[`Response`] variant, [`CoreError`] included), written
//!   by hand because the workspace builds offline: explicit tags, length-
//!   prefixed strings, bounds-checked decoding that errors instead of
//!   panicking on hostile bytes.
//! * [`proto`] — the frame layer: `[u32 length][payload]`, a magic +
//!   version handshake that carries the user ("login is connection
//!   setup"), correlation ids, and a max-frame-size guard.
//! * [`server`] / [`client`] — [`NetServer`] pairs one reader and one
//!   writer thread per connection over a bounded in-flight window
//!   (backpressure), pipelining frames into
//!   [`orpheus_core::AsyncExecutor`] submissions while responses return
//!   in submission order; [`RemoteExecutor`] is the connecting side,
//!   with timeouts on every wait so a hung server never blocks a client
//!   forever.
//! * [`chaos`] — a frame-aware flaky proxy that severs connections at
//!   controlled points, used by the resilience tests and the
//!   `chaos_storm` benchmark to prove the reconnect/replay and
//!   load-shedding machinery under real packet loss.
//!
//! The service layer is fault-tolerant end to end: the server issues
//! session ids and keeps a bounded per-session replay cache (retried
//! frames after a lost ACK return their original outcome — at-most-once
//! execution), sheds load with typed retryable errors when its queue or
//! connection limits are hit, and bounds every request with a deadline;
//! the client reconnects with capped exponential backoff and replays
//! in-flight frames. See the `server` and `client` module docs.
//!
//! ```no_run
//! use orpheus_core::{Executor, Request, SharedOrpheusDB};
//! use orpheus_net::{NetServer, RemoteExecutor};
//!
//! let server = NetServer::bind("127.0.0.1:0", SharedOrpheusDB::default())?;
//! let mut client = RemoteExecutor::connect(server.local_addr(), "ada")?;
//! let who = client.execute(Request::Whoami)?;
//! assert_eq!(who.summary(), "ada");
//! server.shutdown();
//! # Ok::<(), orpheus_core::CoreError>(())
//! ```
//!
//! [`Executor`]: orpheus_core::Executor
//! [`Request`]: orpheus_core::Request
//! [`Response`]: orpheus_core::Response
//! [`CoreError`]: orpheus_core::CoreError

pub mod chaos;
pub mod client;
pub mod codec;
pub mod proto;
pub mod server;

pub use chaos::FlakyProxy;
pub use client::{RemoteExecutor, RetryPolicy, RetryStats, DEFAULT_TIMEOUT};
pub use proto::{Frame, MAGIC, MAX_FRAME, PROTOCOL_VERSION};
pub use server::{NetServer, ServerConfig, ServerStats};
