//! The wire encoding, re-exported from [`orpheus_core::codec`].
//!
//! The codec moved down into `orpheus-core` when the write-ahead log
//! ([`orpheus_core::wal`]) started embedding encoded [`Request`]s in its
//! records: one explicit, bounds-checked binary vocabulary now serves
//! both the TCP protocol and the durability log. This module keeps the
//! `orpheus_net::codec::*` paths working unchanged — the frame layer
//! ([`crate::proto`]), client, and server are oblivious to the move.
//!
//! [`Request`]: orpheus_core::Request

pub use orpheus_core::codec::*;
