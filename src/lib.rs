//! # orpheusdb
//!
//! A from-scratch Rust reproduction of **OrpheusDB: Bolt-on Versioning for
//! Relational Databases** (Huang et al., VLDB 2017).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`engine`] (`orpheus-engine`) — the relational substrate: typed
//!   tables, int-array values, SQL dialect, three join algorithms, a page
//!   I/O cost model;
//! * [`core`] (`orpheus-core`) — the versioning middleware: CVDs, the five
//!   data models, checkout/commit/diff, versioned queries, the partition
//!   optimizer integration;
//! * [`partition`] (`orpheus-partition`) — LyreSplit, the AGGLO/KMEANS
//!   baselines, online maintenance and migration planning;
//! * [`mod@bench`] (`orpheus-bench`) — the SCI/CUR versioning benchmark and
//!   the harness regenerating every table and figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use orpheusdb::prelude::*;
//!
//! let mut odb = OrpheusDB::new();
//! let schema = Schema::new(vec![
//!     Column::new("gene", DataType::Text),
//!     Column::new("expression", DataType::Int),
//! ]).with_primary_key(&["gene"]).unwrap();
//! odb.init_cvd("genes", schema, vec![
//!     vec!["brca1".into(), 7.into()],
//!     vec!["tp53".into(), 3.into()],
//! ], None).unwrap();
//!
//! // Check out, edit with plain SQL, commit back.
//! odb.checkout("genes", &[Vid(1)], "work").unwrap();
//! odb.engine.execute("UPDATE work SET expression = 9 WHERE gene = 'tp53'").unwrap();
//! let v2 = odb.commit("work", "bump tp53").unwrap();
//!
//! // Versioned analytics without materializing anything.
//! let r = odb.run("SELECT vid, count(*) FROM CVD genes GROUP BY vid").unwrap();
//! assert_eq!(r.rows.len(), 2);
//! assert_eq!(v2, Vid(2));
//! ```

pub use orpheus_bench as bench;
pub use orpheus_core as core;
pub use orpheus_engine as engine;
pub use orpheus_partition as partition;

/// The most common imports.
pub mod prelude {
    pub use orpheus_core::{
        CoreError, Cvd, ModelKind, OrpheusConfig, OrpheusDB, Rid, Session, SharedOrpheusDB, Vid,
    };
    pub use orpheus_engine::{Column, DataType, Database, Schema, Value};
}
