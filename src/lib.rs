//! # orpheusdb
//!
//! A from-scratch Rust reproduction of **OrpheusDB: Bolt-on Versioning for
//! Relational Databases** (Huang et al., VLDB 2017).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`engine`] (`orpheus-engine`) — the relational substrate: typed
//!   tables, int-array values, SQL dialect, three join algorithms, a page
//!   I/O cost model;
//! * [`core`] (`orpheus-core`) — the versioning middleware: CVDs, the five
//!   data models, checkout/commit/diff, versioned queries, the partition
//!   optimizer integration, and the typed **command bus** every front-end
//!   drives;
//! * [`partition`] (`orpheus-partition`) — LyreSplit, the AGGLO/KMEANS
//!   baselines, online maintenance and migration planning;
//! * [`mod@bench`] (`orpheus-bench`) — the SCI/CUR versioning benchmark and
//!   the harness regenerating every table and figure of the paper;
//! * [`net`] (`orpheus-net`) — the service layer: a length-prefixed wire
//!   protocol over TCP, a [`NetServer`](prelude::NetServer) in front of the
//!   async executor, and a [`RemoteExecutor`](prelude::RemoteExecutor)
//!   client implementing the same `Executor` trait, so everything below
//!   runs against a server unchanged.
//!
//! ## Quickstart: the command bus
//!
//! Every paper command is a typed [`Request`](prelude::Request) with a
//! builder, executed through the [`Executor`](prelude::Executor) trait —
//! by an [`OrpheusDB`](prelude::OrpheusDB) directly, or by a
//! [`Session`](prelude::Session) over a shared instance:
//!
//! ```
//! use orpheusdb::prelude::*;
//!
//! let mut odb = OrpheusDB::new();
//! let schema = Schema::new(vec![
//!     Column::new("gene", DataType::Text),
//!     Column::new("expression", DataType::Int),
//! ]).with_primary_key(&["gene"]).unwrap();
//!
//! odb.dispatch(Init::cvd("genes").schema(schema).rows(vec![
//!     vec!["brca1".into(), 7.into()],
//!     vec!["tp53".into(), 3.into()],
//! ])).unwrap();
//!
//! // Check out, edit with plain SQL, commit back.
//! odb.dispatch(Checkout::of("genes").version(1u64).into_table("work")).unwrap();
//! odb.engine.execute("UPDATE work SET expression = 9 WHERE gene = 'tp53'").unwrap();
//! let v2 = odb.dispatch(Commit::table("work").message("bump tp53"))
//!     .unwrap().version().unwrap();
//! assert_eq!(v2, Vid(2));
//!
//! // Versioned analytics without materializing anything.
//! let r = odb.dispatch(Run::sql("SELECT vid, count(*) FROM CVD genes GROUP BY vid"))
//!     .unwrap().into_rows().unwrap();
//! assert_eq!(r.rows.len(), 2);
//!
//! // Diffs come back as structured data.
//! match odb.dispatch(Diff::of("genes").between(1u64, 2u64)).unwrap() {
//!     Response::Diffed { diff, .. } => {
//!         assert_eq!(diff.only_in_first.len(), 1);
//!         assert_eq!(diff.only_in_second.len(), 1);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```
//!
//! ## Sessions: the multi-user entry point
//!
//! Production deployments share one instance between many users; each
//! user's [`Session`](prelude::Session) executes the same requests under
//! its own identity, with checkout-ownership enforced per session:
//!
//! ```
//! use orpheusdb::prelude::*;
//!
//! let mut odb = OrpheusDB::new();
//! let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
//! odb.dispatch(Init::cvd("data").schema(schema).rows(vec![vec![1.into()]])).unwrap();
//!
//! let shared = SharedOrpheusDB::new(odb);
//! let mut alice = shared.session("alice").unwrap();
//! alice.dispatch(Checkout::of("data").version(1u64).into_table("w")).unwrap();
//! alice.sql("INSERT INTO w VALUES (NULL, 2)").unwrap();
//! let v2 = alice.dispatch(Commit::table("w").message("alice's row"))
//!     .unwrap().version().unwrap();
//! assert_eq!(v2, Vid(2));
//! ```

pub use orpheus_bench as bench;
pub use orpheus_core as core;
pub use orpheus_engine as engine;
pub use orpheus_net as net;
pub use orpheus_partition as partition;

/// The most common imports: the database types, the command bus
/// (`Request`/`Response`, `Executor`, and every command builder), and the
/// engine's schema/value vocabulary.
pub mod prelude {
    pub use orpheus_core::{
        AsyncExecutor, AsyncHandle, Checkout, CheckoutCsv, CommandKind, Commit, CommitCsv,
        ConcurrentExecutor, CoreError, CreateUser, Cvd, Diff, Discard, DropCvd, Executor, Init,
        InitFromCsv, Log, LogEntry, Login, ModelKind, Optimize, OrpheusConfig, OrpheusDB, Request,
        Response, Rid, Run, Session, SharedOrpheusDB, Target, Ticket, VersionDiff, Vid,
    };
    pub use orpheus_engine::{Column, DataType, Database, Schema, Value};
    pub use orpheus_net::{NetServer, RemoteExecutor};
}
