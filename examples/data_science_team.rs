//! A data-science team workflow at benchmark scale (the SCI workload of
//! Section 5.1): hundreds of versions accumulate, checkouts slow down as
//! the data table grows, and the partition optimizer restores
//! near-table-per-version latency at a bounded storage overhead
//! (Figures 12/13 in miniature).
//!
//! The checkout workload runs through the typed command bus via the
//! benchmark harness's [`drive`]/[`checkout_storm`] helpers — the same
//! stream a batching or async executor would be measured with.
//!
//! Run with `cargo run --release --example data_science_team`.

use std::time::Instant;

use orpheusdb::bench::generator::{Workload, WorkloadParams};
use orpheusdb::bench::harness::{checkout_storm, drive};
use orpheusdb::bench::loader::load_workload;
use orpheusdb::prelude::*;

fn avg_checkout_ms(odb: &mut OrpheusDB, versions: &[u64]) -> f64 {
    let stats = drive(odb, checkout_storm("science", versions)).expect("bus workload");
    stats.total_ms / versions.len() as f64
}

fn main() {
    // ~150 versions of an evolving dataset across 15 branches.
    let workload = Workload::generate(WorkloadParams::sci(150, 15, 300));
    println!(
        "generated SCI workload: {} versions, {} distinct records, {} memberships",
        workload.num_versions(),
        workload.num_records,
        workload.num_edges()
    );

    let mut odb = OrpheusDB::new();
    let start = Instant::now();
    load_workload(&mut odb, "science", &workload, ModelKind::SplitByRlist).expect("load");
    println!("loaded in {:.1}ms", start.elapsed().as_secs_f64() * 1e3);

    let samples: Vec<u64> = (1..=10).map(|i| (i * 15) as u64).collect();
    let before = avg_checkout_ms(&mut odb, &samples);
    let storage_before = odb.storage_bytes("science").expect("storage");
    println!(
        "before partitioning: avg checkout {before:.2}ms, storage {:.2}MB",
        storage_before as f64 / 1e6
    );

    // Run the partition optimizer with the paper's γ = 2|R| budget.
    let report = match odb
        .dispatch(Optimize::cvd("science").gamma(2.0).mu(1.5))
        .expect("optimize")
    {
        Response::Optimized { report, .. } => report,
        other => panic!("unexpected response {other:?}"),
    };
    println!(
        "LyreSplit: {} partitions, est. checkout cost {:.0} records (δ = {:.3})",
        report.num_partitions, report.cavg, report.delta
    );

    let after = avg_checkout_ms(&mut odb, &samples);
    let storage_after = odb.partitioned_storage_bytes("science").expect("storage");
    println!(
        "after partitioning:  avg checkout {after:.2}ms, storage {:.2}MB",
        storage_after as f64 / 1e6
    );
    println!(
        "=> {:.1}x faster checkouts for {:.1}x storage",
        before / after.max(1e-9),
        storage_after as f64 / storage_before as f64
    );

    // Work continues: new commits are placed by online maintenance, and
    // drifting too far from LyreSplit's best triggers migration (§4.3).
    let latest = Vid(workload.num_versions() as u64);
    odb.dispatch(Checkout::of("science").version(latest).into_table("cont"))
        .expect("checkout");
    odb.engine
        .execute("UPDATE cont SET a0 = a0 + 1 WHERE a1 < 50")
        .expect("edit");
    let v = odb
        .dispatch(Commit::table("cont").message("post-optimization commit"))
        .expect("commit")
        .version()
        .expect("version");
    let state = odb
        .cvd("science")
        .expect("cvd")
        .partition
        .as_ref()
        .expect("state");
    println!(
        "\ncommitted {v}; online maintenance placed it in partition {} of {} (migrations so far: {})",
        state.assignment[v.index()],
        state.num_partitions,
        state.migrations
    );
}
