//! A tour of the versioned query language (Section 2.2 and the companion
//! demo paper): single-version queries, cross-version joins, whole-CVD
//! aggregates, version selection, schema evolution, and provenance
//! queries over the metadata tables (Figures 4/5) — all issued as typed
//! `Run` requests on the command bus.
//!
//! Run with `cargo run --example versioned_queries`.

use orpheusdb::prelude::*;

fn show(title: &str, r: &orpheusdb::engine::QueryResult) {
    println!("\n-- {title}");
    println!("   [{}]", r.schema.column_names().join(", "));
    for row in &r.rows {
        println!(
            "   {}",
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
}

fn main() {
    let mut odb = OrpheusDB::new();
    let schema = Schema::new(vec![
        Column::new("city", DataType::Text),
        Column::new("aqi", DataType::Int),
    ])
    .with_primary_key(&["city"])
    .expect("schema");
    odb.dispatch(Init::cvd("air").schema(schema).rows(vec![
        vec!["springfield".into(), 40.into()],
        vec!["shelbyville".into(), 55.into()],
        vec!["ogdenville".into(), 30.into()],
    ]))
    .expect("init");

    // A tiny helper: run one versioned query through the bus.
    let query = |odb: &mut OrpheusDB, sql: &str| {
        odb.dispatch(Run::sql(sql))
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
            .into_rows()
            .expect("rows")
    };

    // v2: a sensor recalibration changes two cities.
    odb.dispatch(Checkout::of("air").version(1u64).into_table("w"))
        .expect("checkout");
    odb.engine
        .execute("UPDATE w SET aqi = aqi + 20 WHERE city <> 'ogdenville'")
        .expect("edit");
    odb.dispatch(Commit::table("w").message("recalibration"))
        .expect("commit");

    // v3: schema evolution — a humidity column arrives, and aqi becomes
    // a DOUBLE (single-pool evolution, Section 3.3).
    odb.dispatch(Checkout::of("air").version(2u64).into_table("w"))
        .expect("checkout");
    odb.engine
        .execute("ALTER TABLE w ADD COLUMN humidity INT")
        .expect("alter");
    odb.engine
        .execute("ALTER TABLE w ALTER COLUMN aqi TYPE DOUBLE")
        .expect("alter");
    odb.engine
        .execute("UPDATE w SET humidity = 61 WHERE city = 'springfield'")
        .expect("edit");
    odb.dispatch(Commit::table("w").message("add humidity, widen aqi"))
        .expect("commit");

    // 1. Query one version directly.
    let r = query(
        &mut odb,
        "SELECT city, aqi FROM VERSION 1 OF CVD air ORDER BY city",
    );
    show("version 1 as-of query", &r);

    // 2. Join two versions: which cities changed between v1 and v2?
    let r = query(
        &mut odb,
        "SELECT a.city, a.aqi AS before, b.aqi AS after \
         FROM VERSION 1 OF CVD air AS a, VERSION 2 OF CVD air AS b \
         WHERE a.city = b.city AND a.aqi <> b.aqi ORDER BY a.city",
    );
    show("changed cities v1 -> v2", &r);

    // 3. Whole-CVD aggregate grouped by version.
    let r = query(
        &mut odb,
        "SELECT vid, count(*) AS n, avg(aqi) AS mean FROM CVD air GROUP BY vid ORDER BY vid",
    );
    show("per-version statistics", &r);

    // 4. Version selection: versions where some city exceeds 70 AQI.
    let r = query(
        &mut odb,
        "SELECT vid FROM CVD air WHERE aqi > 70 GROUP BY vid ORDER BY vid",
    );
    show("versions with aqi > 70 somewhere", &r);

    // 5. Provenance through the metadata tables (Figure 4a): plain SQL,
    // no special syntax needed.
    let r = query(
        &mut odb,
        "SELECT vid, msg, num_records FROM air__meta ORDER BY vid",
    );
    show("metadata table (Figure 4a)", &r);

    // 6. The attribute table records schema evolution (Figure 5b/c): the
    // aqi column appears twice, once as INT and once as DOUBLE.
    let r = query(
        &mut odb,
        "SELECT attr_id, attr_name, data_type FROM air__attrs ORDER BY attr_id",
    );
    show("attribute table (Figure 5)", &r);

    // 7. Version-graph shortcuts.
    let anc = odb.cvd("air").expect("cvd").ancestors(Vid(3)).expect("anc");
    println!(
        "\n-- ancestors of v3: {}",
        anc.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (vid, t) = odb.cvd("air").expect("cvd").last_modified().expect("last");
    println!("-- last modification: {vid} at logical time {t}");
}
