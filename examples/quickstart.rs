//! Quickstart: create a CVD, branch, edit, merge, diff, query — all
//! through the typed command bus.
//!
//! Run with `cargo run --example quickstart`.

use orpheusdb::prelude::*;

fn main() {
    let mut odb = OrpheusDB::new();

    // A tiny gene-expression table with a primary key.
    let schema = Schema::new(vec![
        Column::new("gene", DataType::Text),
        Column::new("tissue", DataType::Text),
        Column::new("expression", DataType::Int),
    ])
    .with_primary_key(&["gene", "tissue"])
    .expect("schema");
    let response = odb
        .dispatch(Init::cvd("genes").schema(schema).rows(vec![
            vec!["brca1".into(), "breast".into(), 74.into()],
            vec!["tp53".into(), "lung".into(), 31.into()],
            vec!["egfr".into(), "lung".into(), 55.into()],
        ]))
        .expect("init");
    println!("{}", response.summary());

    // Alice branches from v1 and recalibrates lung measurements.
    odb.dispatch(Checkout::of("genes").version(1u64).into_table("alice_work"))
        .expect("checkout");
    odb.engine
        .execute("UPDATE alice_work SET expression = expression * 2 WHERE tissue = 'lung'")
        .expect("edit");
    let v2 = odb
        .dispatch(Commit::table("alice_work").message("recalibrate lung"))
        .expect("commit")
        .version()
        .expect("version");
    println!("alice committed {v2}");

    // Bob also branches from v1 and adds a record.
    odb.dispatch(Checkout::of("genes").version(1u64).into_table("bob_work"))
        .expect("checkout");
    odb.engine
        .execute("INSERT INTO bob_work VALUES (NULL, 'kras', 'colon', 12)")
        .expect("edit");
    let v3 = odb
        .dispatch(Commit::table("bob_work").message("add kras"))
        .expect("commit")
        .version()
        .expect("version");
    println!("bob committed {v3}");

    // Merge both branches; alice's values win conflicts (listed first).
    odb.dispatch(
        Checkout::of("genes")
            .versions([v2, v3])
            .into_table("merged"),
    )
    .expect("merge checkout");
    let v4 = odb
        .dispatch(Commit::table("merged").message("merge alice + bob"))
        .expect("commit")
        .version()
        .expect("version");
    println!("merged into {v4}");

    // Diff the merge against the original: a structured response, not text.
    match odb
        .dispatch(Diff::of("genes").between(Vid(1), v4))
        .expect("diff")
    {
        Response::Diffed { diff, .. } => println!(
            "diff v1..{v4}: {} record(s) removed, {} record(s) added",
            diff.only_in_first.len(),
            diff.only_in_second.len()
        ),
        other => panic!("unexpected response {other:?}"),
    }

    // Versioned analytics: per-version record counts and averages.
    let r = odb
        .dispatch(Run::sql(
            "SELECT vid, count(*) AS n, avg(expression) AS mean \
             FROM CVD genes GROUP BY vid ORDER BY vid",
        ))
        .expect("query")
        .into_rows()
        .expect("rows");
    println!("\nvid  n  mean(expression)");
    for row in &r.rows {
        println!("{:>3} {:>2}  {}", row[0], row[1], row[2]);
    }

    // Query a single version without materializing it.
    let r = odb
        .dispatch(Run::sql(
            "SELECT gene FROM VERSION 2 OF CVD genes WHERE expression > 60 ORDER BY gene",
        ))
        .expect("query")
        .into_rows()
        .expect("rows");
    println!(
        "\nhighly expressed in v2: {}",
        r.rows
            .iter()
            .map(|row| row[0].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The version graph, via the typed log response.
    match odb.dispatch(Log::of("genes")).expect("log") {
        Response::Log { entries, .. } => {
            println!("\nversion graph:");
            for e in &entries {
                println!(
                    "  {} <- [{}] \"{}\"",
                    e.vid,
                    e.parents
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    e.message
                );
            }
        }
        other => panic!("unexpected response {other:?}"),
    }
}
