//! Quickstart: create a CVD, branch, edit, merge, diff, query.
//!
//! Run with `cargo run --example quickstart`.

use orpheusdb::prelude::*;

fn main() {
    let mut odb = OrpheusDB::new();

    // A tiny gene-expression table with a primary key.
    let schema = Schema::new(vec![
        Column::new("gene", DataType::Text),
        Column::new("tissue", DataType::Text),
        Column::new("expression", DataType::Int),
    ])
    .with_primary_key(&["gene", "tissue"])
    .expect("schema");
    odb.init_cvd(
        "genes",
        schema,
        vec![
            vec!["brca1".into(), "breast".into(), 74.into()],
            vec!["tp53".into(), "lung".into(), 31.into()],
            vec!["egfr".into(), "lung".into(), 55.into()],
        ],
        None, // default model: split-by-rlist
    )
    .expect("init");
    println!("initialized CVD 'genes' at v1");

    // Alice branches from v1 and recalibrates lung measurements.
    odb.checkout("genes", &[Vid(1)], "alice_work").expect("checkout");
    odb.engine
        .execute("UPDATE alice_work SET expression = expression * 2 WHERE tissue = 'lung'")
        .expect("edit");
    let v2 = odb.commit("alice_work", "recalibrate lung").expect("commit");
    println!("alice committed {v2}");

    // Bob also branches from v1 and adds a record.
    odb.checkout("genes", &[Vid(1)], "bob_work").expect("checkout");
    odb.engine
        .execute("INSERT INTO bob_work VALUES (NULL, 'kras', 'colon', 12)")
        .expect("edit");
    let v3 = odb.commit("bob_work", "add kras").expect("commit");
    println!("bob committed {v3}");

    // Merge both branches; alice's values win conflicts (listed first).
    odb.checkout("genes", &[v2, v3], "merged").expect("merge checkout");
    let v4 = odb.commit("merged", "merge alice + bob").expect("commit");
    println!("merged into {v4}");

    // Diff the merge against the original.
    let d = odb.diff("genes", Vid(1), v4).expect("diff");
    println!(
        "diff v1..v4: {} record(s) removed, {} record(s) added",
        d.only_in_first.len(),
        d.only_in_second.len()
    );

    // Versioned analytics: per-version record counts and averages.
    let r = odb
        .run(
            "SELECT vid, count(*) AS n, avg(expression) AS mean \
             FROM CVD genes GROUP BY vid ORDER BY vid",
        )
        .expect("query");
    println!("\nvid  n  mean(expression)");
    for row in &r.rows {
        println!("{:>3} {:>2}  {}", row[0], row[1], row[2]);
    }

    // Query a single version without materializing it.
    let r = odb
        .run("SELECT gene FROM VERSION 2 OF CVD genes WHERE expression > 60 ORDER BY gene")
        .expect("query");
    println!(
        "\nhighly expressed in v2: {}",
        r.rows
            .iter()
            .map(|row| row[0].to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The version graph, via the metadata the middleware maintains.
    let cvd = odb.cvd("genes").expect("cvd");
    println!("\nversion graph:");
    for m in &cvd.versions {
        println!(
            "  {} <- [{}] \"{}\"",
            m.vid,
            m.parents
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            m.message
        );
    }
}
