//! The paper's motivating scenario (Section 1): biologists curating a
//! shared protein-protein interaction dataset — periodically checking out
//! versions, cleaning locally, committing into a branched network of
//! versions, and asking global questions across versions, e.g. "the
//! aggregate count of protein pairs with confidence > 0.9 per version" or
//! "versions with a bulk delete".
//!
//! Each curator works through their own [`Session`] on one shared
//! instance; every command is a typed request on the bus, including the
//! CSV ingest the paper's `init -f` flow uses.
//!
//! Run with `cargo run --example protein_curation`.

use orpheusdb::prelude::*;

fn main() {
    // The STRING-style interaction table of Figure 1 (confidence scaled
    // to integers like the paper's data), ingested exactly as `init
    // string -f string.csv -s string.schema` would: CSV text plus a
    // schema description, inlined into a typed request.
    let csv = "protein1,protein2,neighborhood,cooccurrence,coexpression\n\
               ENSP273047,ENSP261890,0,53,0\n\
               ENSP273047,ENSP235932,0,87,0\n\
               ENSP300413,ENSP274242,426,0,164\n\
               ENSP309334,ENSP346022,0,227,975\n\
               ENSP332973,ENSP300134,0,0,83\n\
               ENSP472847,ENSP365773,225,0,73\n";
    let schema = "protein1:text!pk\nprotein2:text!pk\n\
                  neighborhood:int\ncooccurrence:int\ncoexpression:int\n";

    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let mut admin = shared.session("admin").expect("session");
    let response = admin
        .dispatch(InitFromCsv::cvd("string").csv(csv).schema_text(schema))
        .expect("init");
    println!("{}", response.summary());

    // Curator 1 fixes a coexpression value (working through SQL).
    let mut curator1 = shared.session("curator1").expect("session");
    curator1
        .dispatch(Checkout::of("string").version(1u64).into_table("c1"))
        .expect("checkout");
    curator1
        .sql("UPDATE c1 SET coexpression = 83 WHERE protein2 = 'ENSP261890'")
        .expect("fix");
    let v2 = curator1
        .dispatch(Commit::table("c1").message("fix ENSP261890 coexpression"))
        .expect("commit")
        .version()
        .expect("version");
    println!("curator1 committed {v2}");

    // Curator 2 works from v1 too (a branch), pruning weak interactions —
    // a "bulk delete" version. Note curator2 cannot touch curator1's
    // staged tables; sessions isolate them.
    let mut curator2 = shared.session("curator2").expect("session");
    curator2
        .dispatch(Checkout::of("string").version(1u64).into_table("c2"))
        .expect("checkout");
    curator2
        .sql("DELETE FROM c2 WHERE neighborhood = 0 AND cooccurrence < 100 AND coexpression < 100")
        .expect("prune");
    let v3 = curator2
        .dispatch(Commit::table("c2").message("prune weak interactions"))
        .expect("commit")
        .version()
        .expect("version");
    println!("curator2 committed {v3}");

    // Merge the two branches (curator1's values take precedence).
    curator1
        .dispatch(
            Checkout::of("string")
                .versions([v2, v3])
                .into_table("merged"),
        )
        .expect("merge checkout");
    let v4 = curator1
        .dispatch(Commit::table("merged").message("merge fixes + pruning"))
        .expect("commit")
        .version()
        .expect("version");
    println!("merged into {v4}");

    // Global question 1: per-version counts of high-confidence pairs.
    let out = curator1
        .dispatch(Run::sql(
            "SELECT vid, count(*) AS strong FROM CVD string \
             WHERE coexpression > 70 GROUP BY vid ORDER BY vid",
        ))
        .expect("query")
        .into_rows()
        .expect("rows");
    println!("\nhigh-coexpression pairs per version:");
    for row in &out.rows {
        println!("  v{}: {}", row[0], row[1]);
    }

    // Global question 2: versions with a bulk delete (≥ 2 records removed
    // from their parent), answered from the version graph metadata.
    println!("\nbulk-delete versions:");
    shared.read(|odb| {
        let cvd = odb.cvd("string").expect("cvd");
        for m in &cvd.versions {
            for (p, w) in m.parents.iter().zip(&m.parent_weights) {
                let parent_size = cvd.meta(*p).expect("parent").num_records;
                let deleted = parent_size.saturating_sub(*w);
                if deleted >= 2 {
                    println!("  {} deleted {} records relative to {}", m.vid, deleted, p);
                }
            }
        }
    });

    // Global question 3: which versions still contain a specific record?
    let out = curator2
        .dispatch(Run::sql(
            "SELECT vid FROM CVD string WHERE protein1 = 'ENSP332973' GROUP BY vid ORDER BY vid",
        ))
        .expect("query")
        .into_rows()
        .expect("rows");
    println!(
        "\nversions containing ENSP332973 interactions: {}",
        out.rows
            .iter()
            .map(|r| format!("v{}", r[0]))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // The full history, as the `log` command renders it.
    let log = admin.dispatch(Log::of("string")).expect("log");
    println!("\n{}", log.summary());
}
