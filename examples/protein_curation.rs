//! The paper's motivating scenario (Section 1): biologists curating a
//! shared protein-protein interaction dataset — periodically checking out
//! versions, cleaning locally, committing into a branched network of
//! versions, and asking global questions across versions, e.g. "the
//! aggregate count of protein pairs with confidence > 0.9 per version" or
//! "versions with a bulk delete".
//!
//! Run with `cargo run --example protein_curation`.

use orpheusdb::core::commands::{run_command, MemFiles};
use orpheusdb::prelude::*;

fn main() {
    let mut odb = OrpheusDB::new();
    let mut files = MemFiles::default();

    // The STRING-style interaction table of Figure 1 (confidence scaled
    // to integers like the paper's data).
    files.files.insert(
        "string.csv".into(),
        "protein1,protein2,neighborhood,cooccurrence,coexpression\n\
         ENSP273047,ENSP261890,0,53,0\n\
         ENSP273047,ENSP235932,0,87,0\n\
         ENSP300413,ENSP274242,426,0,164\n\
         ENSP309334,ENSP346022,0,227,975\n\
         ENSP332973,ENSP300134,0,0,83\n\
         ENSP472847,ENSP365773,225,0,73\n"
            .into(),
    );
    files.files.insert(
        "string.schema".into(),
        "protein1:text!pk\nprotein2:text!pk\nneighborhood:int\ncooccurrence:int\ncoexpression:int\n"
            .into(),
    );

    let run = |odb: &mut OrpheusDB, files: &mut MemFiles, cmd: &str| {
        let out = run_command(odb, files, cmd).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        if !out.message.is_empty() {
            println!("$ {cmd}\n{}\n", out.message);
        }
        out
    };

    run(&mut odb, &mut files, "init string -f string.csv -s string.schema");

    // Curator 1 fixes a coexpression value (working through SQL).
    run(&mut odb, &mut files, "create_user curator1");
    run(&mut odb, &mut files, "config curator1");
    run(&mut odb, &mut files, "checkout string -v 1 -t c1");
    odb.engine
        .execute("UPDATE c1 SET coexpression = 83 WHERE protein2 = 'ENSP261890'")
        .expect("fix");
    run(&mut odb, &mut files, "commit -t c1 -m 'fix ENSP261890 coexpression'");

    // Curator 2 works from v1 too (a branch), pruning weak interactions —
    // a "bulk delete" version.
    run(&mut odb, &mut files, "create_user curator2");
    run(&mut odb, &mut files, "config curator2");
    run(&mut odb, &mut files, "checkout string -v 1 -t c2");
    odb.engine
        .execute("DELETE FROM c2 WHERE neighborhood = 0 AND cooccurrence < 100 AND coexpression < 100")
        .expect("prune");
    run(&mut odb, &mut files, "commit -t c2 -m 'prune weak interactions'");

    // Merge the two branches (curator1's values take precedence).
    run(&mut odb, &mut files, "checkout string -v 2 3 -t merged");
    run(&mut odb, &mut files, "commit -t merged -m 'merge fixes + pruning'");

    // Global question 1: per-version counts of high-confidence pairs.
    let out = run(
        &mut odb,
        &mut files,
        "run SELECT vid, count(*) AS strong FROM CVD string \
         WHERE coexpression > 70 GROUP BY vid ORDER BY vid",
    );
    println!("high-coexpression pairs per version:");
    for row in &out.result.expect("rows").rows {
        println!("  v{}: {}", row[0], row[1]);
    }

    // Global question 2: versions with a bulk delete (≥ 2 records removed
    // from their parent), answered from the version graph metadata.
    println!("\nbulk-delete versions:");
    let cvd = odb.cvd("string").expect("cvd");
    for m in &cvd.versions {
        for (p, w) in m.parents.iter().zip(&m.parent_weights) {
            let parent_size = cvd.meta(*p).expect("parent").num_records;
            let deleted = parent_size.saturating_sub(*w);
            if deleted >= 2 {
                println!("  {} deleted {} records relative to {}", m.vid, deleted, p);
            }
        }
    }

    // Global question 3: which versions still contain a specific record?
    let out = run(
        &mut odb,
        &mut files,
        "run SELECT vid FROM CVD string WHERE protein1 = 'ENSP332973' GROUP BY vid ORDER BY vid",
    );
    println!(
        "versions containing ENSP332973 interactions: {}",
        out.result
            .expect("rows")
            .rows
            .iter()
            .map(|r| format!("v{}", r[0]))
            .collect::<Vec<_>>()
            .join(", ")
    );

    run(&mut odb, &mut files, "log string");
}
