//! Collaborative analysis: several data scientists working concurrently on
//! one shared CVD — the deployment scenario of the paper's introduction —
//! with sessions as the entry point: every scientist drives the same typed
//! command bus under their own identity, ownership is enforced between
//! sessions, and a durable snapshot carries the instance across restarts.
//!
//! Run with `cargo run --example collaborative_team`.

use orpheusdb::prelude::*;

fn main() {
    // The shared protein-interaction dataset (Figure 1's running example).
    let mut odb = OrpheusDB::new();
    let schema = Schema::new(vec![
        Column::new("protein1", DataType::Text),
        Column::new("protein2", DataType::Text),
        Column::new("coexpression", DataType::Int),
    ])
    .with_primary_key(&["protein1", "protein2"])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..50)
        .map(|i| {
            vec![
                format!("ENSP{:06}", i).into(),
                format!("ENSP{:06}", i + 1000).into(),
                Value::Int(i % 100),
            ]
        })
        .collect();
    odb.dispatch(Init::cvd("ppi").schema(schema).rows(rows))
        .expect("init");

    // Share the instance; each scientist opens a named session.
    let shared = SharedOrpheusDB::new(odb);

    std::thread::scope(|scope| {
        for scientist in ["alice", "bob", "carol", "dave"] {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut session = shared.session(scientist).expect("session");
                let table = session.private_table("analysis");

                // Everyone branches from v1, applies their own cleaning
                // step, and commits — concurrently, over one bus.
                session
                    .dispatch(Checkout::of("ppi").version(1u64).into_table(&table))
                    .expect("checkout");
                session
                    .sql(&format!(
                        "DELETE FROM {table} WHERE coexpression < {}",
                        scientist.len() * 5 // each scientist's own threshold
                    ))
                    .expect("clean");
                let vid = session
                    .dispatch(Commit::table(&table).message(format!("{scientist}'s cleaning pass")))
                    .expect("commit")
                    .version()
                    .expect("version");
                println!("{scientist:>6} committed {vid}");
            });
        }
    });

    // Ownership is enforced between sessions: eve cannot touch a table that
    // alice checks out.
    let mut alice = shared.session("alice").expect("session");
    let eve = shared.session("eve").expect("session");
    alice
        .dispatch(Checkout::of("ppi").version(1u64).into_table("alice_wip"))
        .expect("checkout");
    let denied = eve.sql("SELECT * FROM alice_wip");
    println!("eve reading alice's checkout: {}", denied.unwrap_err());
    // The bus is no way around the rule either: a `Run` request hits the
    // same guard.
    let mut eve = eve;
    let denied = eve.dispatch(Run::sql("UPDATE alice_wip SET coexpression = 0"));
    println!("eve writing via Run request:  {}", denied.unwrap_err());
    alice
        .dispatch(Discard::table("alice_wip"))
        .expect("discard");

    // Global statistics across everyone's versions, straight from SQL.
    let per_version = alice
        .dispatch(Run::sql(
            "SELECT vid, count(*) FROM CVD ppi GROUP BY vid ORDER BY vid",
        ))
        .expect("versioned query")
        .into_rows()
        .expect("rows");
    println!("\nrecords per version:");
    for row in &per_version.rows {
        println!("  v{} -> {} records", row[0], row[1]);
    }

    // Persist the whole instance and prove the restart roundtrip.
    let path = std::env::temp_dir().join("collaborative_team.orpheus");
    shared.save_to(&path).expect("save");
    let restored = OrpheusDB::load_from(&path).expect("load");
    let cvd = restored.cvd("ppi").expect("cvd");
    println!(
        "\nreloaded snapshot: {} versions, latest = {:?}",
        cvd.num_versions(),
        cvd.latest().expect("versions exist")
    );
    assert_eq!(cvd.num_versions(), 5); // v1 + four concurrent commits
    std::fs::remove_file(&path).ok();
}
