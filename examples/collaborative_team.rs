//! Collaborative analysis: several data scientists working concurrently on
//! one shared CVD — the deployment scenario of the paper's introduction —
//! with the session layer enforcing checkout ownership and a durable
//! snapshot carrying the instance across restarts.
//!
//! Run with `cargo run --example collaborative_team`.

use orpheusdb::prelude::*;

fn main() {
    // The shared protein-interaction dataset (Figure 1's running example).
    let mut odb = OrpheusDB::new();
    let schema = Schema::new(vec![
        Column::new("protein1", DataType::Text),
        Column::new("protein2", DataType::Text),
        Column::new("coexpression", DataType::Int),
    ])
    .with_primary_key(&["protein1", "protein2"])
    .expect("schema");
    let rows: Vec<Vec<Value>> = (0..50)
        .map(|i| {
            vec![
                format!("ENSP{:06}", i).into(),
                format!("ENSP{:06}", i + 1000).into(),
                Value::Int(i % 100),
            ]
        })
        .collect();
    odb.init_cvd("ppi", schema, rows, None).expect("init");

    // Share the instance; each scientist opens a named session.
    let shared = SharedOrpheusDB::new(odb);

    std::thread::scope(|scope| {
        for scientist in ["alice", "bob", "carol", "dave"] {
            let shared = shared.clone();
            scope.spawn(move || {
                let session = shared.session(scientist).expect("session");
                let table = session.private_table("analysis");

                // Everyone branches from v1, applies their own cleaning
                // step, and commits — concurrently.
                session.checkout("ppi", &[Vid(1)], &table).expect("checkout");
                session
                    .execute(&format!(
                        "DELETE FROM {table} WHERE coexpression < {}",
                        scientist.len() * 5 // each scientist's own threshold
                    ))
                    .expect("clean");
                let vid = session
                    .commit(&table, &format!("{scientist}'s cleaning pass"))
                    .expect("commit");
                println!("{scientist:>6} committed {vid}");
            });
        }
    });

    // Ownership is enforced between sessions: eve cannot touch a table that
    // alice checks out.
    let alice = shared.session("alice").expect("session");
    let eve = shared.session("eve").expect("session");
    alice.checkout("ppi", &[Vid(1)], "alice_wip").expect("checkout");
    let denied = eve.execute("SELECT * FROM alice_wip");
    println!("eve reading alice's checkout: {}", denied.unwrap_err());
    alice.discard("alice_wip").expect("discard");

    // Global statistics across everyone's versions, straight from SQL.
    let per_version = alice
        .run("SELECT vid, count(*) FROM CVD ppi GROUP BY vid ORDER BY vid")
        .expect("versioned query");
    println!("\nrecords per version:");
    for row in &per_version.rows {
        println!("  v{} -> {} records", row[0], row[1]);
    }

    // Persist the whole instance and prove the restart roundtrip.
    let path = std::env::temp_dir().join("collaborative_team.orpheus");
    shared.save_to(&path).expect("save");
    let restored = OrpheusDB::load_from(&path).expect("load");
    let cvd = restored.cvd("ppi").expect("cvd");
    println!(
        "\nreloaded snapshot: {} versions, latest = {:?}",
        cvd.num_versions(),
        cvd.latest().expect("versions exist")
    );
    assert_eq!(cvd.num_versions(), 5); // v1 + four concurrent commits
    std::fs::remove_file(&path).ok();
}
