//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace uses: `StdRng` seeded with
//! `seed_from_u64`, `Rng::{gen_range, gen_bool}` over half-open ranges, and
//! `SliceRandom::shuffle`. The generator is SplitMix64 — statistically fine
//! for workload generation and k-means seeding, deterministic per seed
//! (which the benchmark generators rely on), and dependency-free.

use std::ops::Range;

/// Seedable generator constructor (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value sampling (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the spans used here
                // (all far below 2^64).
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl UniformSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice in order");
    }
}
