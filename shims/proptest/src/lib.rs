//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, `Just`, numeric range
//! strategies, character-class string strategies (`"[a-z]{0,8}"`),
//! `collection::vec`, `option::of`, tuple strategies, `prop_oneof!`, and
//! the `proptest!` / `prop_assert*!` macros. Cases are generated from a
//! deterministic per-test, per-case seed so failures are reproducible.
//!
//! Deliberately missing relative to real proptest: shrinking (a failing
//! case reports its inputs via `Debug` but is not minimized) and the full
//! regex strategy language. In place of seed-file persistence, a failing
//! property panics with its case index and a ready-to-paste reproduction
//! command; `ORPHEUS_PROPTEST_CASE=<n>` re-runs exactly that case (the
//! per-test stream is keyed on the test name and case index alone, so the
//! same inputs are regenerated). See `shims/README.md`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// -- rng ---------------------------------------------------------------------

/// Deterministic SplitMix64 stream used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name and case index, so every test gets an
    /// independent, reproducible stream.
    pub fn deterministic(case: u64, test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

// -- config + errors ---------------------------------------------------------

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
    /// Unused here (no shrinking); present so struct-update syntax works.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The case indices a property should run: all of them normally, or the
/// single index named by `ORPHEUS_PROPTEST_CASE` when re-running a
/// reported failure. Out-of-range overrides still run (the stream is
/// defined for every index), so a stale number fails loudly rather than
/// silently passing zero cases.
#[doc(hidden)]
pub fn __cases(configured: u32) -> std::ops::Range<u64> {
    let requested = std::env::var("ORPHEUS_PROPTEST_CASE")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok());
    case_range(requested, configured)
}

fn case_range(requested: Option<u64>, configured: u32) -> std::ops::Range<u64> {
    match requested {
        Some(c) => c..c + 1,
        None => 0..configured as u64,
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// -- the Strategy trait ------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// -- any::<T>() --------------------------------------------------------------

/// Types with a default "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly symmetric; avoids NaN/inf which real proptest
        // also excludes by default.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The default strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// -- ranges ------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// -- string patterns ---------------------------------------------------------

/// `&str` literals act as character-class strategies: `"[a-z]{0,8}"` means
/// 0..=8 chars drawn from the class. Only `[class]{m,n}` patterns are
/// supported (the shapes used in this repository's tests).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below(max - min + 1);
        (0..len).map(|_| chars[rng.below(chars.len())]).collect()
    }
}

/// Parse `[class]{m,n}` into (alphabet, m, n).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let bounds = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match bounds.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = bounds.trim().parse().ok()?;
            (n, n)
        }
    };
    if max < min {
        return None;
    }
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next(); // consume '-'
            if let Some(&hi) = ahead.peek() {
                it = ahead;
                it.next();
                for u in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(u) {
                        chars.push(ch);
                    }
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

// -- combinators -------------------------------------------------------------

/// Object-safe strategy, used to erase the branches of [`Union`].
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between strategies (`prop_oneof!`).
pub struct Union<V> {
    branches: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        Union { branches }
    }

    pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn DynStrategy<V>> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len());
        self.branches[i].generate_dyn(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Range, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with length drawn from `len` (subset of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `Option` strategy: `None` half the time (subset of
    /// `proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// Alias so `prop::collection::vec(...)` style paths also work.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

// -- macros ------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($branch)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in $crate::__cases(config.cases) {
                let mut __rng = $crate::TestRng::deterministic(case, stringify!($name));
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {name} failed at case {case}: {e}\n  \
                         reproduce: ORPHEUS_PROPTEST_CASE={case} cargo test {name}\n  \
                         (no shrinking in this offline shim; the case index regenerates \
                         the exact inputs -- see shims/README.md)",
                        name = stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strategy:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident; mut $name:ident in $strategy:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = TestRng::deterministic(0, "bounds");
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let b = Strategy::generate(&(1u8..=255), &mut rng);
            assert!(b >= 1);
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::deterministic(1, "strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = Strategy::generate(&"[a-zA-Zα-ω]{0,10}", &mut rng);
            assert!(t.chars().count() <= 10);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic(2, "combine");
        let strat = crate::collection::vec((0u8..3, any::<bool>()), 1..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|(x, _)| *x < 3));
        }
        let one = prop_oneof![Just(1i64), 5i64..8, any::<i64>().prop_map(|x| x / 2)];
        for _ in 0..50 {
            let _ = Strategy::generate(&one, &mut rng);
        }
        let opt = crate::option::of(0i64..4);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            match Strategy::generate(&opt, &mut rng) {
                None => saw_none = true,
                Some(x) => {
                    saw_some = true;
                    assert!((0..4).contains(&x));
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic(3, "det");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic(3, "det");
            (0..5).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn case_override_narrows_the_run_to_one_index() {
        assert_eq!(crate::case_range(None, 8), 0..8);
        assert_eq!(crate::case_range(Some(5), 8), 5..6);
        // A stale index past `cases` still runs (and can still fail) rather
        // than silently passing an empty loop.
        assert_eq!(crate::case_range(Some(40), 8), 40..41);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0usize..10, mut v in crate::collection::vec(0i64..5, 0..4)) {
            v.sort_unstable();
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        #[should_panic(expected = "reproduce: ORPHEUS_PROPTEST_CASE=0 cargo test failing_properties_name_their_case")]
        fn failing_properties_name_their_case(x in 0usize..10) {
            prop_assert!(x > 100, "forced failure for x = {x}");
        }
    }
}
