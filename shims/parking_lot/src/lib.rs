//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact subset the workspace uses: non-poisoning [`RwLock`] and
//! [`Mutex`] types plus a [`Condvar`] with parking_lot's `&mut guard`
//! signature. They wrap the `std::sync` primitives and recover from
//! poisoning instead of propagating it, which matches parking_lot's
//! semantics (no poisoning) for the workloads here. The `Mutex`/`Condvar`
//! pair is what `orpheus-core`'s async executor builds its job queues and
//! tickets from, and [`ArcSwap`] is the epoch-swap cell `orpheus-core`'s
//! MVCC snapshot reads publish shard snapshots through.

use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

/// Guard of a [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`]
/// can take the std guard out and put the re-acquired one back through a
/// `&mut` borrow — parking_lot's signature, std's machinery.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`]. As in
/// parking_lot, `wait` takes the guard by `&mut` and the caller keeps
/// using it after the wakeup; spurious wakeups are possible, so always
/// wait in a predicate loop.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wait with a timeout (parking_lot's `wait_for`). Returns whether the
    /// wait timed out; as with [`Condvar::wait`], spurious wakeups are
    /// possible, so re-check the predicate and the remaining time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// An epoch-swap cell: an `Arc<T>` that readers [`load`](ArcSwap::load)
/// without ever blocking on a writer's critical section, and writers
/// replace atomically with [`store`](ArcSwap::store).
///
/// This is the offline stand-in for the `arc-swap` crate's cell of the
/// same name, implemented as a `Mutex<Arc<T>>`: a `load` holds the mutex
/// only long enough to bump the refcount (a few instructions — never
/// across user code), so readers are wait-free for all practical
/// purposes even while a writer is busy preparing the *next* value
/// outside the cell. The protocol it supports:
///
/// 1. readers `load()` the current epoch's value and use it lock-free;
/// 2. a writer builds a fresh `Arc<T>` privately (no reader can see the
///    work in progress);
/// 3. the writer `store()`s the new `Arc`, atomically retiring the old
///    epoch — in-flight readers keep their old `Arc` alive until they
///    drop it, so no value is ever torn or freed early.
///
/// `orpheus-core` publishes each shard's committed database state
/// through one of these, which is what lets checkouts and SELECTs run
/// while a commit holds the shard's write lock.
#[derive(Debug)]
pub struct ArcSwap<T> {
    cell: Mutex<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Create a cell holding `value` as epoch zero.
    pub fn new(value: Arc<T>) -> ArcSwap<T> {
        ArcSwap {
            cell: Mutex::new(value),
        }
    }

    /// Clone out the current epoch's `Arc`. The internal lock is held
    /// only for the refcount bump, never across reader code, so loads
    /// never wait on a writer preparing the next value.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.cell.lock())
    }

    /// Atomically publish `value` as the new epoch. Readers that loaded
    /// the previous epoch keep using it; new loads see `value`.
    pub fn store(&self, value: Arc<T>) {
        *self.cell.lock() = value;
    }

    /// Publish `value` and return the epoch it replaced.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        std::mem::replace(&mut self.cell.lock(), value)
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> ArcSwap<T> {
        ArcSwap::new(Arc::new(T::default()))
    }
}

/// Outcome of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (as opposed to
    /// a notification or a spurious wakeup).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn concurrent_writes_serialize() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let lock = Arc::clone(&lock);
                scope.spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 800);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pair = Arc::clone(&pair);
                scope.spawn(move || {
                    let (m, cv) = &*pair;
                    let mut count = m.lock();
                    *count += 1;
                    cv.notify_all();
                    // The guard stays usable after waits (predicate loop).
                    while *count < 4 {
                        cv.wait(&mut count);
                    }
                });
            }
        });
        assert_eq!(*pair.0.lock(), 4);
    }

    #[test]
    fn wait_for_times_out_and_keeps_the_guard_usable() {
        let pair = (Mutex::new(false), Condvar::new());
        let (m, cv) = &pair;
        let mut done = m.lock();
        let result = cv.wait_for(&mut done, std::time::Duration::from_millis(10));
        assert!(result.timed_out());
        // The guard survived the timed-out wait.
        *done = true;
        drop(done);
        assert!(*m.lock());
    }

    #[test]
    fn arc_swap_load_store_roundtrip() {
        let cell = ArcSwap::new(Arc::new(1u64));
        let before = cell.load();
        cell.store(Arc::new(2));
        // The old epoch stays alive and unchanged for holders...
        assert_eq!(*before, 1);
        // ...while new loads see the new epoch.
        assert_eq!(*cell.load(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn arc_swap_readers_never_see_a_torn_epoch() {
        // Each published epoch is a self-consistent pair (n, 2n); readers
        // racing against the publisher must only ever observe consistent
        // pairs, whichever epoch they land on.
        let cell = Arc::new(ArcSwap::new(Arc::new((0u64, 0u64))));
        std::thread::scope(|scope| {
            let publisher = Arc::clone(&cell);
            scope.spawn(move || {
                for n in 1..=500u64 {
                    publisher.store(Arc::new((n, 2 * n)));
                }
            });
            for _ in 0..4 {
                let reader = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..500 {
                        let epoch = reader.load();
                        assert_eq!(epoch.1, 2 * epoch.0, "torn epoch observed");
                        // Epochs are also monotone for any single reader.
                        assert!(epoch.0 >= last);
                        last = epoch.0;
                    }
                });
            }
        });
        assert_eq!(cell.load().0, 500);
    }

    #[test]
    fn wait_for_returns_early_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|scope| {
            let notifier = Arc::clone(&pair);
            scope.spawn(move || {
                let (m, cv) = &*notifier;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock();
            while !*done {
                let result = cv.wait_for(&mut done, std::time::Duration::from_secs(5));
                assert!(!result.timed_out() || *done);
            }
        });
    }
}
