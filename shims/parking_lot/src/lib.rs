//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact subset the workspace uses: non-poisoning [`RwLock`] and
//! [`Mutex`] types plus a [`Condvar`] with parking_lot's `&mut guard`
//! signature. They wrap the `std::sync` primitives and recover from
//! poisoning instead of propagating it, which matches parking_lot's
//! semantics (no poisoning) for the workloads here. The `Mutex`/`Condvar`
//! pair is what `orpheus-core`'s async executor builds its job queues and
//! tickets from.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

/// Guard of a [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`]
/// can take the std guard out and put the re-acquired one back through a
/// `&mut` borrow — parking_lot's signature, std's machinery.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`]. As in
/// parking_lot, `wait` takes the guard by `&mut` and the caller keeps
/// using it after the wakeup; spurious wakeups are possible, so always
/// wait in a predicate loop.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present outside wait");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wait with a timeout (parking_lot's `wait_for`). Returns whether the
    /// wait timed out; as with [`Condvar::wait`], spurious wakeups are
    /// possible, so re-check the predicate and the remaining time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Outcome of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (as opposed to
    /// a notification or a spurious wakeup).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn concurrent_writes_serialize() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let lock = Arc::clone(&lock);
                scope.spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 800);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pair = Arc::clone(&pair);
                scope.spawn(move || {
                    let (m, cv) = &*pair;
                    let mut count = m.lock();
                    *count += 1;
                    cv.notify_all();
                    // The guard stays usable after waits (predicate loop).
                    while *count < 4 {
                        cv.wait(&mut count);
                    }
                });
            }
        });
        assert_eq!(*pair.0.lock(), 4);
    }

    #[test]
    fn wait_for_times_out_and_keeps_the_guard_usable() {
        let pair = (Mutex::new(false), Condvar::new());
        let (m, cv) = &pair;
        let mut done = m.lock();
        let result = cv.wait_for(&mut done, std::time::Duration::from_millis(10));
        assert!(result.timed_out());
        // The guard survived the timed-out wait.
        *done = true;
        drop(done);
        assert!(*m.lock());
    }

    #[test]
    fn wait_for_returns_early_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|scope| {
            let notifier = Arc::clone(&pair);
            scope.spawn(move || {
                let (m, cv) = &*notifier;
                *m.lock() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut done = m.lock();
            while !*done {
                let result = cv.wait_for(&mut done, std::time::Duration::from_secs(5));
                assert!(!result.timed_out() || *done);
            }
        });
    }
}
