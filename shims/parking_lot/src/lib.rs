//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact subset the workspace uses: a non-poisoning [`RwLock`] with
//! `read`/`write`/`into_inner`. It wraps `std::sync::RwLock` and recovers
//! from poisoning instead of propagating it, which matches parking_lot's
//! semantics (no poisoning) for the workloads here.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn concurrent_writes_serialize() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let lock = Arc::clone(&lock);
                scope.spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 800);
    }
}
