//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the bench sources compiling and runnable without network access:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! and `Bencher::iter`. Instead of criterion's statistical sampling, each
//! closure is timed over a small fixed number of iterations and the mean
//! is printed — enough to eyeball regressions; not a statistics engine.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from discarding a value (as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Criterion's sample count; here it caps the iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size.min(10),
            elapsed_ms: 0.0,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: {:.3} ms/iter",
            self.name,
            id.0,
            bencher.elapsed_ms / bencher.iters as f64
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    elapsed_ms: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    }

    /// Benchmark with caller-measured timing: `f` receives the iteration
    /// count and returns the total duration of the timed region only.
    pub fn iter_custom<F: FnMut(u64) -> std::time::Duration>(&mut self, mut f: F) {
        self.elapsed_ms = f(self.iters as u64).as_secs_f64() * 1e3;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 3, "{calls}");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("serialize", 40).0, "serialize/40");
        assert_eq!(BenchmarkId::from_parameter("tpv").0, "tpv");
    }
}
